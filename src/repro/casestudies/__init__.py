"""``repro.casestudies`` — one module per Fig. 12 row of the paper.

Each module exposes ``build()`` (assemble + run Isla + package specs) and
``verify(case)`` (run the Islaris proof automation).
"""

from . import (
    binsearch_arm,
    binsearch_riscv,
    hvc,
    memcpy_arm,
    memcpy_ppc,
    memcpy_riscv,
    pkvm,
    rbit,
    sign_ppc,
    uart,
    unaligned,
)

__all__ = [
    "binsearch_arm", "binsearch_riscv", "hvc", "memcpy_arm", "memcpy_ppc",
    "memcpy_riscv", "pkvm", "rbit", "sign_ppc", "uart", "unaligned",
]
