"""Case study: installing and using an exception vector (§2.6, Fig. 9).

The hand-written program::

    0x80000 _start:              ; *** initialisation at EL2 ***
        mov x0, #0xa0000
        msr vbar_el2, x0         ; install exception vector
        mov x0, #0x80000000
        msr hcr_el2, x0          ; hypervisor config: AArch64 at EL1
        mov x0, #0x3c4
        msr spsr_el2, x0         ; EL1 config (SP_EL0, no interrupts)
        mov x0, #0x90000
        msr elr_el2, x0          ; EL1 start address
        eret                     ; "exception return" into EL1
    0x90000 enter_el1:           ; *** calling the vector from EL1 ***
        mov x0, xzr
        hvc #0                   ; hypervisor call
        b .                      ; hang forever
    0xa0400 vector+0x400:        ; *** sync exception from lower EL ***
        mov x0, #42
        eret

The verified property is the paper's: when execution reaches the hang loop
(0x90008), ``x0`` contains 42.  The proof walks the whole EL2→EL1→EL2→EL1
round trip through the authoritative exception-entry/-return semantics,
interacting with VBAR_EL2 / HCR_EL2 / SPSR_EL2 / ELR_EL2 / ESR_EL2 and the
banked PSTATE.

Per the paper (§2.8), both ``eret`` instructions need instruction-specific
constraints (SPSR_EL2 = 0x3c4, HCR_EL2.RW = 1); the resulting ``assume-reg``
events become proof obligations discharged by the preceding ``msr`` writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.arm import ArmModel, encode as A
from ..arch.arm.abi import cnvz_regs, daif_regs
from ..frontend import FrontendResult, ProgramImage, generate_instruction_map
from ..isla import Assumptions
from ..logic import Pred, PredBuilder, Proof, ProofEngine
from ..smt import builder as B

START = 0x80000
ENTER_EL1 = 0x90000
VECTOR = 0xA0000
HANDLER = VECTOR + 0x400  # synchronous, lower EL, AArch64
HANG = ENTER_EL1 + 8

SPSR_VALUE = 0x3C4  # DAIF masked, AArch64 EL1t (SP_EL0)
HCR_VALUE = 0x8000_0000  # HCR_EL2.RW = 1


@dataclass
class HvcCase:
    image: ProgramImage
    frontend: FrontendResult
    specs: dict[int, Pred]

    @property
    def asm_line_count(self) -> int:
        return len(self.image.opcodes)


def build_image() -> ProgramImage:
    image = ProgramImage()
    image.place(
        START,
        [
            A.mov_imm(0, VECTOR),     # mov x0, #0xa0000
            A.msr("VBAR_EL2", 0),
            A.mov_imm(0, HCR_VALUE),  # mov x0, #0x80000000
            A.msr("HCR_EL2", 0),
            A.mov_imm(0, SPSR_VALUE),
            A.msr("SPSR_EL2", 0),
            A.mov_imm(0, ENTER_EL1),
            A.msr("ELR_EL2", 0),
            A.eret(),
        ],
        label="_start",
    )
    image.place(
        ENTER_EL1,
        [
            A.mov_reg(0, A.XZR),      # mov x0, xzr
            A.hvc(0),
            A.b(0),                   # b . (hang)
        ],
        label="enter_el1",
    )
    image.place(
        HANDLER,
        [
            A.mov_imm(0, 42),
            A.eret(),
        ],
        label="el2_sync_lower_a64",
    )
    return image


def build_assumptions() -> tuple[Assumptions, dict[int, Assumptions]]:
    """Default EL2 constraints plus the per-instruction constraints of §2.8."""
    el2 = Assumptions().pin("PSTATE.EL", 2, 2).pin("PSTATE.SP", 1, 1)
    el1 = Assumptions().pin("PSTATE.EL", 1, 2).pin("PSTATE.SP", 0, 1)
    eret_extra = (
        Assumptions()
        .pin("PSTATE.EL", 2, 2)
        .pin("PSTATE.SP", 1, 1)
        .pin("SPSR_EL2", SPSR_VALUE, 64)
        .pin("HCR_EL2", HCR_VALUE, 64)
    )
    per_address = {
        START + 32: eret_extra,       # first eret
        ENTER_EL1: el1,               # mov x0, xzr at EL1
        ENTER_EL1 + 4: el1,           # hvc at EL1
        ENTER_EL1 + 8: el1,           # b . at EL1
        HANDLER + 4: eret_extra,      # handler eret
    }
    return el2, per_address


def build_specs() -> dict[int, Pred]:
    entry = (
        PredBuilder()
        .reg_any("R0")
        .reg_col("sys", {"PSTATE.EL": 2, "PSTATE.SP": 1})
        .reg_col("CNVZ_regs", cnvz_regs())
        .reg_col("DAIF_regs", daif_regs())
        .reg_any(
            "VBAR_EL2", "HCR_EL2", "SPSR_EL2", "ELR_EL2", "ESR_EL2",
        )
        .build()
    )
    # The target property: at the hang loop, x0 = 42 (at EL1).
    hang = (
        PredBuilder()
        .reg("R0", B.bv(42, 64))
        .reg_col("sys", {"PSTATE.EL": 1, "PSTATE.SP": 0})
        .reg_col("CNVZ_regs", cnvz_regs())
        .reg_col("DAIF_regs", daif_regs())
        .reg_any(
            "VBAR_EL2", "HCR_EL2", "SPSR_EL2", "ELR_EL2", "ESR_EL2",
        )
        .build()
    )
    return {START: entry, HANG: hang}


def build() -> HvcCase:
    image = build_image()
    default, per_address = build_assumptions()
    frontend = generate_instruction_map(ArmModel(), image, default, per_address)
    return HvcCase(image, frontend, build_specs())


def verify(case: HvcCase) -> Proof:
    from ..arch.arm.regs import PC

    return ProofEngine(case.frontend.traces, case.specs, PC).verify_all()
