"""Case study: memcpy on RISC-V (§2.7, third column of Fig. 7).

The Clang -O2 output::

    memcpy: beqz a2, .L2
    .L1:    lb   a3, 0(a1)
            sb   a3, 0(a0)
            addi a2, a2, -1
            addi a0, a0, 1
            addi a1, a1, 1
            bnez a2, .L1
    .L2:    ret

Unlike the Arm version this variant *advances the pointers* and counts
``a2`` down, so the loop invariant is phrased over the moved pointers: after
``m`` iterations ``a0 = d + m``, ``a1 = s + m``, ``a2 = n - m``, and the
first ``m`` destination bytes equal the source.

The point of the case study (and of §2.7) is that the specification uses
exactly the same assertion language and the same proof automation as the
Armv8-A one — only the register names and calling convention differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.riscv import RiscvModel, encode as RV
from ..arch.riscv.model import PC
from ..frontend import FrontendResult, ProgramImage, generate_instruction_map
from ..isla import Assumptions
from ..logic import Pred, PredBuilder, Proof, ProofEngine
from ..smt import builder as B
from ..smt.terms import Term

BASE = 0x8000_0000


@dataclass
class MemcpyRiscv:
    n: int
    image: ProgramImage
    frontend: FrontendResult
    entry: int
    loop: int
    ret_addr: int
    specs: dict[int, Pred]

    @property
    def asm_line_count(self) -> int:
        return len(self.image.opcodes)


def build_image(base: int = BASE) -> ProgramImage:
    image = ProgramImage()
    image.place(
        base,
        [
            RV.beqz("a2", 28),          # beqz a2, .L2
            RV.lb("a3", "a1", 0),       # .L1: lb a3, 0(a1)
            RV.sb("a3", "a0", 0),       # sb a3, 0(a0)
            RV.addi("a2", "a2", -1),    # addi a2, a2, -1
            RV.addi("a0", "a0", 1),     # addi a0, a0, 1
            RV.addi("a1", "a1", 1),     # addi a1, a1, 1
            RV.bnez("a2", -20),         # bnez a2, .L1
            RV.ret(),                   # .L2: ret
        ],
        label="memcpy",
    )
    image.labels[".L1"] = base + 4
    image.labels[".L2"] = base + 28
    return image


def _post(d: Term, s: Term, bs: list[Term]) -> Pred:
    return (
        PredBuilder()
        .mem_array(s, bs)
        .mem_array(d, bs)
        .reg_any("x10", "x11", "x12", "x13", "x1")
        .build()
    )


def build_specs(n: int, base: int = BASE) -> tuple[dict[int, Pred], dict[str, object]]:
    d = B.bv_var("d", 64)
    s = B.bv_var("s", 64)
    r = B.bv_var("r", 64)
    bs = [B.bv_var(f"Bs{i}", 8) for i in range(n)]
    bd = [B.bv_var(f"Bd{i}", 8) for i in range(n)]
    post = _post(d, s, bs)

    # RISC-V LP64 calling convention: a0=x10 d, a1=x11 s, a2=x12 n, ra=x1.
    entry = (
        PredBuilder()
        .exists(d, s, r, *bs, *bd)
        .reg("x10", d)
        .reg("x11", s)
        .reg("x12", B.bv(n, 64))
        .reg_any("x13")
        .reg("x1", r)
        .mem_array(s, bs)
        .mem_array(d, bd)
        .instr_pre(r, post)
        .pure(B.eq(B.extract(0, 0, r), B.bv(0, 1)))  # aligned return address
        .build()
    )

    specs: dict[int, Pred] = {base: entry}
    if n > 0:
        # The loop advances a0/a1 and counts a2 down, so the invariant's
        # primary existentials are the *current* register values p, q, k;
        # the array bases and the iteration count are derived:
        #     m = n - k,   d = p - m,   s = q - m,   1 <= k <= n.
        # Unification then binds p, q, k directly from the registers and
        # every other pattern is closed — the deterministic (Lithium-style)
        # evar discipline of §4.3.
        p = B.bv_var("p", 64)
        q = B.bv_var("q", 64)
        k = B.bv_var("k", 64)
        nn = B.bv(n, 64)
        m_expr = B.bvsub(nn, k)
        d_expr = B.bvsub(p, m_expr)
        s_expr = B.bvsub(q, m_expr)
        current = [B.bv_var(f"D{i}", 8) for i in range(n)]
        copied = [
            B.implies(B.bvult(B.bv(i, 64), m_expr), B.eq(current[i], bs[i]))
            for i in range(n)
        ]
        invariant = (
            PredBuilder()
            .exists(p, q, k, r, *bs, *current)
            .reg("x10", p)
            .reg("x11", q)
            .reg("x12", k)
            .reg_any("x13")
            .reg("x1", r)
            .mem_array(s_expr, bs)
            .mem_array(d_expr, current)
            .instr_pre(r, _post(d_expr, s_expr, bs))
            .pure(
                B.bvult(B.bv(0, 64), k),
                B.bvule(k, nn),
                B.eq(B.extract(0, 0, r), B.bv(0, 1)),
                *copied,
            )
            .build()
        )
        specs[base + 4] = invariant
    return specs, {"d": d, "s": s, "r": r, "bs": bs, "bd": bd, "post": post}


def build(n: int = 4, base: int = BASE) -> MemcpyRiscv:
    image = build_image(base)
    frontend = generate_instruction_map(RiscvModel(), image, Assumptions())
    specs, _ = build_specs(n, base)
    return MemcpyRiscv(
        n=n,
        image=image,
        frontend=frontend,
        entry=base,
        loop=base + 4,
        ret_addr=base + 28,
        specs=specs,
    )


def verify(case: MemcpyRiscv) -> Proof:
    engine = ProofEngine(case.frontend.traces, case.specs, PC)
    return engine.verify_all()
