"""Case study: binary search on RISC-V (§6, "RISC-V: Binary search and
memcpy").

The same parametric-comparison binary search as
:mod:`repro.casestudies.binsearch_arm`, compiled for RV64::

    ; a0=arr a1=n a2=key a3=cmp ra=return
    bsearch:  mv   s1, zero        ; lo = 0
              mv   s2, a1          ; hi = n
              mv   s3, a0          ; arr
              mv   s4, a2          ; key
              mv   s5, a3          ; cmp
              mv   s6, ra          ; saved return address
    .loop:    beq  s1, s2, .notfound
              add  s7, s1, s2
              srli s7, s7, 1       ; mid
              slli t0, s7, 3
              add  t0, s3, t0
              ld   a0, 0(t0)       ; arr[mid]
              mv   a1, s4
              jalr ra, s5, 0       ; cmp(arr[mid], key)
    .ret:     beqz a0, .found
              blt  a0, zero, .less
              mv   s2, s7          ; hi = mid
              j    .loop
    .less:    addi s1, s7, 1       ; lo = mid + 1
              j    .loop
    .found:   mv   a0, s7
              j    .out
    .notfound: li  a0, -1
    .out:     mv   ra, s6
              ret

Demonstrates §2.7's claim concretely: the specification below differs from
the Arm one only in register names, the calling convention, and the
return-address alignment facts (``jalr`` clears bit 0) — the assertion
language and the proof automation are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.riscv import RiscvModel, encode as RV
from ..arch.riscv.model import PC
from ..frontend import FrontendResult, ProgramImage, generate_instruction_map
from ..isla import Assumptions
from ..logic import Pred, PredBuilder, Proof, ProofEngine
from ..smt import builder as B

BASE = 0x8000_0000

LOOP_OFF = 6 * 4
RET_OFF = 14 * 4
LESS_OFF = 18 * 4
FOUND_OFF = 20 * 4
NOTFOUND_OFF = 22 * 4
OUT_OFF = 23 * 4

# callee-saved registers used for the frame (ABI names -> x-register)
S1, S2, S3, S4, S5, S6, S7 = "s1", "s2", "s3", "s4", "s5", "s6", "s7"
_X = {"s1": "x9", "s2": "x18", "s3": "x19", "s4": "x20", "s5": "x21",
      "s6": "x22", "s7": "x23"}


@dataclass
class BinsearchRiscv:
    n: int
    image: ProgramImage
    frontend: FrontendResult
    specs: dict[int, Pred]
    entry: int

    @property
    def asm_line_count(self) -> int:
        return len(self.image.opcodes)


def build_image(base: int = BASE) -> ProgramImage:
    image = ProgramImage()
    code = [
        RV.mv(S1, "zero"),                      # 0 lo = 0
        RV.mv(S2, "a1"),                        # 1 hi = n
        RV.mv(S3, "a0"),                        # 2 arr
        RV.mv(S4, "a2"),                        # 3 key
        RV.mv(S5, "a3"),                        # 4 cmp
        RV.mv(S6, "ra"),                        # 5
        # .loop:
        RV.beq(S1, S2, NOTFOUND_OFF - 6 * 4),   # 6
        RV.add(S7, S1, S2),                     # 7
        RV.srli(S7, S7, 1),                     # 8 mid
        RV.slli("t0", S7, 3),                   # 9
        RV.add("t0", S3, "t0"),                 # 10
        RV.ld("a0", "t0", 0),                   # 11
        RV.mv("a1", S4),                        # 12
        RV.jalr("ra", S5, 0),                   # 13
        # .ret:
        RV.beqz("a0", FOUND_OFF - 14 * 4),      # 14
        RV.blt("a0", "zero", LESS_OFF - 15 * 4),  # 15
        RV.mv(S2, S7),                          # 16 hi = mid
        RV.j(LOOP_OFF - 17 * 4),                # 17
        # .less:
        RV.addi(S1, S7, 1),                     # 18 lo = mid + 1
        RV.j(LOOP_OFF - 19 * 4),                # 19
        # .found:
        RV.mv("a0", S7),                        # 20
        RV.j(OUT_OFF - 21 * 4),                 # 21
        # .notfound:
        RV.li("a0", -1),                        # 22
        # .out:
        RV.mv("ra", S6),                        # 23
        RV.ret(),                               # 24
    ]
    image.place(base, code, label="bsearch")
    image.labels[".loop"] = base + LOOP_OFF
    image.labels[".ret"] = base + RET_OFF
    return image


def build_specs(n: int, base: int = BASE) -> dict[int, Pred]:
    arr = B.bv_var("arr", 64)
    key = B.bv_var("key", 64)
    f = B.bv_var("f", 64)
    r = B.bv_var("ret", 64)
    lo = B.bv_var("lo", 64)
    hi = B.bv_var("hi", 64)
    mid = B.bv_var("mid", 64)
    elems = [B.bv_var(f"E{i}", 64) for i in range(n)]
    nn = B.bv(n, 64)
    aligned = [
        B.eq(B.extract(0, 0, r), B.bv(0, 1)),
        B.eq(B.extract(0, 0, f), B.bv(0, 1)),
    ]

    post = (
        PredBuilder()
        .reg_any("x10", "x11", "x1", "x5")
        .regs({_X[s]: None for s in (S1, S2, S3, S4, S5, S6, S7)})
        .mem_array(arr, elems, elem_bytes=8)
        .build()
    )

    def frame(pb: PredBuilder) -> PredBuilder:
        return (
            pb.reg(_X[S3], arr)
            .reg(_X[S4], key)
            .reg(_X[S5], f)
            .reg(_X[S6], r)
            .mem_array(arr, elems, elem_bytes=8)
            .instr_pre(r, post)
        )

    loop_inv = (
        frame(
            PredBuilder()
            .exists(lo, hi)
            .reg(_X[S1], lo)
            .reg(_X[S2], hi)
            .reg_any(_X[S7], "x10", "x11", "x1", "x5")
        )
        .pure(B.bvule(lo, hi), B.bvule(hi, nn), *aligned)
        .build()
    )

    ret_inv = (
        frame(
            PredBuilder()
            .exists(lo, hi, mid)
            .reg(_X[S1], lo)
            .reg(_X[S2], hi)
            .reg(_X[S7], mid)
            .reg_any("x10", "x11", "x1", "x5")
        )
        .pure(
            B.bvule(lo, mid), B.bvult(mid, hi), B.bvule(hi, nn), *aligned
        )
        .build()
    )

    cmp_contract = (
        frame(
            PredBuilder()
            .exists(lo, hi, mid)
            .reg(_X[S1], lo)
            .reg(_X[S2], hi)
            .reg(_X[S7], mid)
            .reg_any("x10", "x11", "x5")
            .reg("x1", B.bv(base + RET_OFF, 64))
        )
        .pure(
            B.bvule(lo, mid), B.bvult(mid, hi), B.bvule(hi, nn), *aligned
        )
        .build()
    )

    entry = (
        PredBuilder()
        .reg("x10", arr)
        .reg("x11", nn)
        .reg("x12", key)
        .reg("x13", f)
        .reg("x1", r)
        .reg_any("x5", *(_X[s] for s in (S1, S2, S3, S4, S5, S6, S7)))
        .mem_array(arr, elems, elem_bytes=8)
        .instr_pre(r, post)
        .instr_pre(f, cmp_contract)
        .pure(*aligned)
        .build()
    )

    f_contract = entry.assertions[-1]
    loop_inv = Pred(loop_inv.exists, loop_inv.assertions + (f_contract,), loop_inv.pure)
    ret_inv = Pred(ret_inv.exists, ret_inv.assertions + (f_contract,), ret_inv.pure)

    return {base: entry, base + LOOP_OFF: loop_inv, base + RET_OFF: ret_inv}


def build(n: int = 4, base: int = BASE) -> BinsearchRiscv:
    image = build_image(base)
    frontend = generate_instruction_map(RiscvModel(), image, Assumptions())
    return BinsearchRiscv(n, image, frontend, build_specs(n, base), base)


def verify(case: BinsearchRiscv) -> Proof:
    return ProofEngine(case.frontend.traces, case.specs, PC).verify_all()
