"""Case study: a condition-register compare/branch chain on OpenPOWER.

The compiled sign function, deliberately using a non-zero CR field::

    sign:   cmpdi cr7, r3, 0
            blt   cr7, .Lneg
            beq   cr7, .Lzero
            li    r3, 1
            blr
    .Lneg:  li    r3, -1
            blr
    .Lzero: li    r3, 0
            blr

What this exercises that memcpy does not: one ``cmpdi`` writes a *field*
of the condition register (LT/GT/EQ/SO packed into the 4-bit CR7), and two
subsequent conditional branches test different bits of that same field —
so the proof has to track the packed CR semantics across a branch chain
with three distinct exits, all returning through the same ``blr``.  The
specification states the result extensionally: r3 = sign(v), written as an
if-then-else over the signed comparison, discharged per-path by the SMT
side-condition solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.ppc import PpcModel, encode as P
from ..arch.ppc.model import PC
from ..frontend import FrontendResult, ProgramImage, generate_instruction_map
from ..isla import Assumptions
from ..logic import Pred, PredBuilder, Proof, ProofEngine
from ..smt import builder as B

BASE = 0x1000_0000


@dataclass
class SignPpc:
    image: ProgramImage
    frontend: FrontendResult
    entry: int
    specs: dict[int, Pred]

    @property
    def asm_line_count(self) -> int:
        return len(self.image.opcodes)


def build_image(base: int = BASE) -> ProgramImage:
    image = ProgramImage()
    image.place(
        base,
        [
            P.cmpdi(7, "r3", 0),   # cmpdi cr7, r3, 0
            P.blt(7, 16),          # blt cr7, .Lneg
            P.beq(7, 20),          # beq cr7, .Lzero
            P.li("r3", 1),         # li r3, 1
            P.blr(),               # blr
            P.li("r3", -1),        # .Lneg: li r3, -1
            P.blr(),               # blr
            P.li("r3", 0),         # .Lzero: li r3, 0
            P.blr(),               # blr
        ],
        label="sign",
    )
    image.labels[".Lneg"] = base + 20
    image.labels[".Lzero"] = base + 28
    return image


def build_specs(base: int = BASE) -> dict[int, Pred]:
    v = B.bv_var("v", 64)
    r = B.bv_var("r", 64)
    zero = B.bv(0, 64)
    expected = B.ite(
        B.bvslt(v, zero),
        B.bv((1 << 64) - 1, 64),  # -1
        B.ite(B.eq(v, zero), zero, B.bv(1, 64)),
    )
    post = (
        PredBuilder()
        .reg("r3", expected)
        .reg_any("CR7", "XER", "LR")
        .build()
    )
    entry = (
        PredBuilder()
        .exists(v, r)
        .reg("r3", v)
        .reg_any("CR7", "XER")
        .reg("LR", r)
        .instr_pre(r, post)
        .pure(B.eq(B.extract(1, 0, r), B.bv(0, 2)))
        .build()
    )
    return {base: entry}


def build(base: int = BASE) -> SignPpc:
    image = build_image(base)
    frontend = generate_instruction_map(PpcModel(), image, Assumptions())
    return SignPpc(
        image=image, frontend=frontend, entry=base, specs=build_specs(base)
    )


def verify(case: SignPpc) -> Proof:
    engine = ProofEngine(case.frontend.traces, case.specs, PC)
    return engine.verify_all()
