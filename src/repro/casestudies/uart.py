"""Case study: memory-mapped IO — a UART putc (§6).

The compiled C function (Fig. in §6)::

    void uart1_putc(char c) {
      while (!(*LSR & LSR_TX_EMPTY)) { asm volatile("nop"); }
      *IO = (u32)c;
    }

assembled as::

    uart1_putc: mov  x1, #LSR
    .Lpoll:     ldr  w2, [x1]          ; MMIO read of the line-status reg
                tst  w2, #0x20         ; LSR_TX_EMPTY
                b.eq .Lpoll            ; not ready: poll again
                nop
                mov  x3, #IO
                str  w0, [x3]          ; MMIO write of the character
                ret

The verified specification is the paper's ``srec``/``scons`` process::

    srec(R. ∃b. scons(R(LSR, b), b[5] ? scons(W(IO, c), s) : R))

i.e. the only externally visible behaviour is: read LSR; if bit 5 was set,
write exactly ``c`` to IO and stop polling, otherwise read LSR again.  The
polling loop gets a block specification whose spec-state component is the
recursive spec itself (resolved through the ``SChoice`` by the branch facts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.arm import ArmModel, encode as A
from ..arch.arm.abi import cnvz_regs, sys_regs
from ..frontend import FrontendResult, ProgramImage, generate_instruction_map
from ..isla import Assumptions
from ..logic import Pred, PredBuilder, Proof, ProofEngine
from ..logic.spec import LabelSpec, SChoice, SRead, SRec, SStop, SWrite
from ..smt import builder as B
from ..smt.terms import Term

BASE = 0x40_0000
LSR_ADDR = 0x9054  # line status register (mini-UART style layout)
IO_ADDR = 0x9040  # transmit holding register
LSR_TX_EMPTY_BIT = 5


@dataclass
class UartCase:
    image: ProgramImage
    frontend: FrontendResult
    specs: dict[int, Pred]
    label_spec: LabelSpec

    @property
    def asm_line_count(self) -> int:
        return len(self.image.opcodes)


def build_image(base: int = BASE) -> ProgramImage:
    image = ProgramImage()
    image.place(
        base,
        [
            A.mov_imm(1, LSR_ADDR),        # mov x1, #LSR
            A.ldr32_imm(2, 1),             # .Lpoll: ldr w2, [x1]
            A.tst_imm(2, 1 << LSR_TX_EMPTY_BIT, sf=0),
            A.b_cond("eq", -8),            # b.eq .Lpoll
            A.nop(),
            A.mov_imm(3, IO_ADDR),         # mov x3, #IO
            A.str32_imm(0, 3),             # str w0, [x3]
            A.ret(),
        ],
        label="uart1_putc",
    )
    image.labels[".Lpoll"] = base + 4
    return image


def uart_label_spec(c: Term) -> LabelSpec:
    """The §6 specification: poll LSR until TX-empty, then write ``c``."""
    lsr = B.bv(LSR_ADDR, 64)
    io = B.bv(IO_ADDR, 64)
    value = B.extract(31, 0, c)

    def body(loop: SRec) -> LabelSpec:
        return SRead(
            lsr,
            4,
            lambda b: SChoice(
                B.eq(B.extract(LSR_TX_EMPTY_BIT, LSR_TX_EMPTY_BIT, b), B.bv(1, 1)),
                SWrite(io, 4, value, SStop()),
                loop,
            ),
        )

    return SRec(body)


def build_specs(base: int = BASE) -> tuple[dict[int, Pred], LabelSpec, dict]:
    c = B.bv_var("c", 64)
    r = B.bv_var("r", 64)
    spec = uart_label_spec(c)

    post = (
        PredBuilder()
        .reg_any("R0", "R1", "R2", "R3", "R30")
        .reg_col("sys_regs", sys_regs(2, 1, sctlr=0))
        .reg_col("CNVZ_regs", cnvz_regs())
        .mmio(LSR_ADDR, 4)
        .mmio(IO_ADDR, 4)
        .spec(SStop())
        .build()
    )
    # c and r stay *free* (meta-universal) rather than existential: the
    # label-spec object captures them in closures, which fresh instantiation
    # could not rename.
    entry = (
        PredBuilder()
        .reg("R0", c)
        .reg_any("R1", "R2", "R3")
        .reg("R30", r)
        .reg_col("sys_regs", sys_regs(2, 1, sctlr=0))
        .reg_col("CNVZ_regs", cnvz_regs())
        .mmio(LSR_ADDR, 4)
        .mmio(IO_ADDR, 4)
        .spec(spec)
        .instr_pre(r, post)
        .build()
    )
    poll = (
        PredBuilder()
        .reg("R0", c)
        .reg("R1", B.bv(LSR_ADDR, 64))
        .reg_any("R2", "R3")
        .reg("R30", r)
        .reg_col("sys_regs", sys_regs(2, 1, sctlr=0))
        .reg_col("CNVZ_regs", cnvz_regs())
        .mmio(LSR_ADDR, 4)
        .mmio(IO_ADDR, 4)
        .spec(spec)
        .instr_pre(r, post)
        .build()
    )
    return {base: entry, base + 4: poll}, spec, {"c": c, "r": r, "post": post}


def build(base: int = BASE) -> UartCase:
    image = build_image(base)
    assumptions = (
        Assumptions()
        .pin("PSTATE.EL", 2, 2)
        .pin("PSTATE.SP", 1, 1)
        .pin("SCTLR_EL2", 0, 64)  # alignment checking off
    )
    frontend = generate_instruction_map(ArmModel(), image, assumptions)
    specs, label_spec, _ = build_specs(base)
    return UartCase(image, frontend, specs, label_spec)


def verify(case: UartCase) -> Proof:
    from ..arch.arm.regs import PC

    return ProofEngine(case.frontend.traces, case.specs, PC).verify_all()
