"""Content-hash key derivation for the on-disk caches.

The governing rule: a key must cover *every* input the cached computation
depends on, and nothing it does not.  Over-approximating (hashing a little
too much source) only costs cold reruns; under-approximating would serve
stale results, so when in doubt a module goes into the fingerprint.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect

from ..smt.smtlib import term_to_sexpr
from ..smt.terms import Term

#: Bump on any change to key derivation, the trace s-expression grammar, the
#: proof/solver semantics, or the stored value layout.  Old cache directories
#: become unreachable (versioned invalidation).
CACHE_FORMAT_VERSION = 1

#: Modules whose source participates in every trace key: the symbolic
#: executor and everything it evaluates through.  A change to any of these
#: can change the generated trace, so it must invalidate cached traces.
_SEMANTIC_MODULES = (
    "repro.sail.model",
    "repro.sail.primitives",
    "repro.sail.iface",
    "repro.isla.executor",
    "repro.isla.footprint",
    "repro.isla.parametric",
    "repro.isla.assumptions",
    "repro.smt.builder",
    "repro.smt.rewriter",
    "repro.smt.terms",
    "repro.itl.events",
    "repro.itl.trace",
)


def _module_source(name: str) -> str:
    try:
        module = importlib.import_module(name)
        return inspect.getsource(module)
    except (ImportError, OSError, TypeError):
        # Source unavailable (frozen build): fall back to the module name
        # alone.  Weaker invalidation, still a stable key.
        return f"<no-source:{name}>"


_model_fingerprints: dict[type, str] = {}


def model_fingerprint(model) -> str:
    """Hash of the ISA model's defining source plus the semantic core.

    Covers the model class's module, its register-file sibling module (the
    conventional ``regs`` neighbour), every base-class module, and the
    executor/SMT/ITL modules a trace's content flows through.
    """
    cls = type(model)
    cached = _model_fingerprints.get(cls)
    if cached is not None:
        return cached
    names: list[str] = []
    for base in cls.__mro__:
        if base.__module__.startswith("repro"):
            names.append(base.__module__)
    head = cls.__module__.rsplit(".", 1)[0]
    names.append(f"{head}.regs")
    names.extend(_SEMANTIC_MODULES)
    digest = hashlib.sha256()
    digest.update(f"{cls.__module__}.{cls.__qualname__}".encode())
    for name in sorted(set(names)):
        digest.update(name.encode())
        digest.update(_module_source(name).encode())
    fingerprint = digest.hexdigest()
    _model_fingerprints[cls] = fingerprint
    return fingerprint


def _var_signature(term: Term) -> str:
    return "".join(
        f"|{v.name}:{v.sort!r}"
        for v in sorted(term.free_vars(), key=lambda v: (v.name, repr(v.sort)))
    )


def opcode_signature(opcode: int | Term, width: int = 32) -> str:
    """A stable textual identity for an opcode (concrete or symbolic)."""
    if isinstance(opcode, int):
        return f"#{opcode:0{width // 4}x}"
    if opcode.is_value():
        return f"#{opcode.value:0{opcode.width // 4}x}"
    return term_to_sexpr(opcode) + _var_signature(opcode)


def assumptions_fingerprint(model, assumptions) -> str:
    """A stable textual identity for an :class:`~repro.isla.Assumptions`.

    Pinned registers serialise directly.  Constraint *predicates* are
    Python callables; their identity is taken extensionally, by applying
    each to a probe variable of the register's width and printing the
    resulting term — two predicates producing the same constraint term get
    the same key, which is exactly the equivalence the executor sees.
    """
    from ..smt import builder as B
    from ..smt.sorts import bv_sort

    if assumptions is None:
        return "none"
    # Pin-only fingerprints are model-independent, so they memoize on the
    # object (the hot path: family keys recompute this per served opcode).
    # The length token catches callers that grow the dicts directly instead
    # of through ``pin``/``constrain`` (which also invalidate).
    token = (len(assumptions.pinned), len(assumptions.constrained))
    cached = getattr(assumptions, "_fingerprint_cache", None)
    if cached is not None and cached[0] == token:
        return cached[1]
    parts: list[str] = []
    for reg in sorted(assumptions.pinned, key=str):
        value = assumptions.pinned[reg]
        parts.append(f"pin {reg} {term_to_sexpr(value)}{_var_signature(value)}")
    for reg in sorted(assumptions.constrained, key=str):
        width = model.regfile.width_of(reg)
        probe = B.var("?probe", bv_sort(width))
        applied = assumptions.constrained[reg](probe)
        parts.append(
            f"constrain {reg} {term_to_sexpr(applied)}{_var_signature(applied)}"
        )
    out = "\n".join(parts)
    if not assumptions.constrained:  # constraint probes depend on the model
        assumptions._fingerprint_cache = (token, out)
    return out


def trace_key(model, opcode, assumptions, name_prefix: str = "v") -> str:
    """Cache key for one Isla run: (model source, opcode, assumptions)."""
    payload = "\n".join(
        (
            "trace-v1",
            model_fingerprint(model),
            opcode_signature(opcode, model.instr_bytes * 8),
            assumptions_fingerprint(model, assumptions),
            f"prefix={name_prefix}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# -- footprint-coarsened trace keys ------------------------------------------
#
# A trace depends on the assumptions only through the registers the run
# actually read (``ReadReg``/``AssumeReg``, *pre*-simplification): pinned or
# constrained registers outside that read set are never consulted by the
# executor, so two assumption sets agreeing on the read set generate the
# identical trace.  The coarse key therefore hashes the assumptions
# *restricted to the read set* — plus the read set itself, so entries
# recorded under different read sets (the set can depend on the assumptions,
# via pruning) can never be confused.


def footprint_index_key(model, opcode, name_prefix: str = "v") -> str:
    """Key of the on-disk read-set index entry for one (model, opcode)."""
    payload = "\n".join(
        (
            "fp-index-v1",
            model_fingerprint(model),
            opcode_signature(opcode, model.instr_bytes * 8),
            f"prefix={name_prefix}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def restrict_assumptions(assumptions, read_regs):
    """Assumptions restricted to the given registers (never mutates)."""
    from ..isla.assumptions import Assumptions

    assumptions = assumptions or Assumptions()
    regs = set(read_regs)
    return Assumptions(
        {r: v for r, v in assumptions.pinned.items() if r in regs},
        {r: p for r, p in assumptions.constrained.items() if r in regs},
    )


def coarse_trace_key(
    model, opcode, assumptions, read_regs, name_prefix: str = "v"
) -> str:
    """Cache key for one Isla run under assumption-set coarsening.

    ``read_regs`` is the pre-simplification register read set of the run
    that produced (or is looking up) the trace; the assumptions are
    restricted to it before fingerprinting.
    """
    restricted = restrict_assumptions(assumptions, read_regs)
    payload = "\n".join(
        (
            "trace-coarse-v1",
            model_fingerprint(model),
            opcode_signature(opcode, model.instr_bytes * 8),
            "readset=" + ",".join(sorted(str(r) for r in read_regs)),
            assumptions_fingerprint(model, restricted),
            f"prefix={name_prefix}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# -- parametric family keys --------------------------------------------------


def family_trace_key(
    model,
    arch: str,
    arm: str,
    field_summary: str,
    assumptions,
    name_prefix: str = "v",
) -> str:
    """Cache key for one parametric instruction-family execution.

    ``field_summary`` is the profile's canonical rendering of the arm's bit
    fields: concrete values for structural fields, equality-class labels for
    register operands, ``?`` for free immediates (see
    :meth:`repro.isla.parametric.ParametricEngine._family_info`).  Two
    opcodes share a family exactly when they share the arm, the structural
    bits, and the register aliasing pattern.
    """
    payload = "\n".join(
        (
            "family-v1",
            model_fingerprint(model),
            f"{arch}/{arm}",
            field_summary,
            assumptions_fingerprint(model, assumptions),
            f"prefix={name_prefix}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# -- SMT query keys ---------------------------------------------------------
#
# Terms are interned and immortal, so memoising their digests by identity
# is sound and makes repeated queries over shared assertion prefixes cheap.

_term_digests: dict[int, str] = {}


def _term_digest(term: Term) -> str:
    digest = _term_digests.get(id(term))
    if digest is None:
        digest = hashlib.sha256(
            (term_to_sexpr(term) + _var_signature(term)).encode()
        ).hexdigest()
        _term_digests[id(term)] = digest
    return digest


def smt_query_key(goal) -> str:
    """Cache key for a solver ``check``: the asserted term *set*.

    Order-independent (matching the in-memory frozenset key) and
    sort-aware: a term's digest covers its free variables' sorts, so
    textually identical sexprs over differently-sorted variables cannot
    collide.
    """
    digest = hashlib.sha256(b"smt-v1")
    for td in sorted({_term_digest(t) for t in goal}):
        digest.update(td.encode())
    return digest.hexdigest()
