"""On-disk, content-addressed persistence for the verification pipeline.

Two stores, one invalidation scheme:

- the **trace store** memoises Isla symbolic execution: key = content hash
  of (mini-Sail model source, opcode bits, assumption set, naming prefix),
  value = the printed ITL trace plus execution metrics;
- the **SMT store** memoises solver ``check`` verdicts: key = content hash
  of the asserted term set (sexprs plus free-variable sort signatures),
  value = ``sat``/``unsat`` (never ``unknown`` — a verdict that depends on
  a resource budget must not outlive the run that set the budget).

Both live under a ``v<CACHE_FORMAT_VERSION>`` directory root; bumping the
version (on any change to the key derivation, the trace grammar, or solver
semantics) orphans every old entry at once — versioned invalidation rather
than per-entry migration.  Because the model *source* is hashed into every
trace key, editing the ISA model or any module of the semantic core also
invalidates exactly the entries it could affect.

The cache is an optimisation, never an oracle: entries only memoise results
that are deterministic functions of their key, a corrupt entry reads as a
miss, and lookups are bypassed entirely while a fault injector is active
(injected faults must perturb real computations, not replay memoised ones).
"""

from .keys import (
    CACHE_FORMAT_VERSION,
    assumptions_fingerprint,
    model_fingerprint,
    opcode_signature,
    smt_query_key,
    trace_key,
)
from .store import CacheStats, DiskCache

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DiskCache",
    "assumptions_fingerprint",
    "model_fingerprint",
    "opcode_signature",
    "smt_query_key",
    "trace_key",
]
