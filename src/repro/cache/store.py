"""The on-disk cache: a trace store and an SMT verdict store.

Layout (under the user-supplied root)::

    <root>/v<FORMAT>/traces/<k[:2]>/<k>.itl   one file per Isla result
    <root>/v<FORMAT>/smt/verdicts.jsonl       append-only check verdicts

Trace files carry a one-line JSON header (metrics plus the sort signature
of *external* free variables — symbolic opcode bits and the like — that the
trace mentions but never declares), followed by the printed ITL trace.
Writes are atomic (temp file + ``os.replace``), so a crashed writer never
leaves a half entry; a corrupt or truncated entry simply reads as a miss.

The SMT store is an append-only JSONL so concurrent workers can record
verdicts without coordination: each line is a self-contained
``{"k": key, "r": verdict}`` record, duplicate lines are idempotent
(the verdict is a deterministic function of the key), and a torn final
tail is truncated off the file on load.

Concurrency discipline (daemon workers + CLI runs sharing one directory):
trace entries are written to a temp file and atomically renamed, so a
reader can never observe a half entry; JSONL appends go through
:func:`_append_exact`, which takes an advisory ``flock`` on the log file
(where available) and loops over short ``write``\\ s — two processes
appending concurrently can therefore never interleave bytes *within* a
record, only order whole records.  Losing the lock race costs latency,
never correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX only; the fallback below keeps non-POSIX hosts working.
    import fcntl
except ImportError:  # pragma: no cover - exercised only on non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..smt.sorts import sort_from_text, sort_to_text
from .keys import CACHE_FORMAT_VERSION


def _append_exact(path: Path, payload: bytes) -> bool:
    """Append ``payload`` to ``path`` without interleaving with other writers.

    Opens in ``O_APPEND``, takes an exclusive advisory lock on the file
    itself (no separate lockfile to leak), and loops until every byte is
    written — a short write mid-payload would otherwise let a concurrent
    appender land *inside* our record.  Returns ``False`` on any OS error:
    append-only stores treat a lost write as a warm-start loss, never a
    failure of the run.
    """
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    except OSError:
        return False
    try:
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                pass  # lock unsupported (NFS?): O_APPEND is the fallback
        view = memoryview(payload)
        while view:
            try:
                written = os.write(fd, view)
            except InterruptedError:
                continue
            view = view[written:]
        return True
    except OSError:
        return False
    finally:
        try:
            os.close(fd)  # releases the flock too
        except OSError:
            pass


def _fsync_dir(directory: Path) -> None:
    """Make a just-completed rename in ``directory`` durable.  Best-effort:
    a filesystem that cannot fsync a directory still gets the atomicity."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`DiskCache` handle."""

    trace_hits: int = 0
    trace_misses: int = 0
    trace_writes: int = 0
    #: Hits served through a footprint-coarsened key (subset of trace_hits).
    trace_coarse_hits: int = 0
    #: Writes of coarse-key aliases (not counted in trace_writes: aliases
    #: are an index detail, one logical trace is still one write).
    trace_coarse_writes: int = 0
    smt_hits: int = 0
    smt_misses: int = 0
    smt_records: int = 0
    smt_loaded: int = 0
    #: Bytes cut off the verdict log's corrupt tail on open (a crashed
    #: appender's torn final records).
    smt_truncated_bytes: int = 0
    corrupt_entries: int = 0
    #: Entries that parsed but failed the well-formedness check (subset of
    #: corrupt_entries); each is evicted on sight.
    wellformed_rejects: int = 0
    fp_index_writes: int = 0
    #: Parametric family-trace entries (see ``repro.isla.parametric``).
    family_hits: int = 0
    family_misses: int = 0
    family_writes: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)

    def merge(self, other: "CacheStats | dict") -> None:
        items = other.items() if isinstance(other, dict) else other.__dict__.items()
        for key, value in items:
            setattr(self, key, getattr(self, key, 0) + value)


# Historical aliases for the shared sort-text helpers (kept: the worker
# payload codecs import them under these names).
_sort_text = sort_to_text
_sort_from_text = sort_from_text


@dataclass
class DiskCache:
    """A handle on one on-disk cache directory.

    Cheap to construct; creates the versioned layout on first use and loads
    the SMT verdict log eagerly (it is the hot store — consulted on every
    solver miss — so it must be a dict lookup, not file IO).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._base = self.root / f"v{CACHE_FORMAT_VERSION}"
        self._traces = self._base / "traces"
        self._families = self._base / "families"
        self._smt_path = self._base / "smt" / "verdicts.jsonl"
        self._traces.mkdir(parents=True, exist_ok=True)
        self._smt_path.parent.mkdir(parents=True, exist_ok=True)
        self._fp_path = self._base / "traces" / "footprints.jsonl"
        self._smt: dict[str, str] = {}
        self._smt_pending: list[str] = []
        self._fp: dict[str, list[str]] | None = None  # lazy
        # One handle may be shared by every job thread of the daemon: the
        # in-memory views and pending buffers need mutual exclusion even
        # though the on-disk appends are self-synchronising.
        import threading

        self._lock = threading.RLock()
        self._load_smt()

    # -- trace store --------------------------------------------------------

    def _trace_path(self, key: str) -> Path:
        return self._traces / key[:2] / f"{key}.itl"

    def _family_path(self, key: str) -> Path:
        return self._families / key[:2] / f"{key}.itl"

    def _read_entry(self, path: Path):
        """Parse one self-delimiting trace entry.

        Returns ``("miss", None)`` when the file is absent, ``("corrupt",
        None)`` for any malformed entry (torn write, hand-edited file,
        stale format), or ``("ok", (trace, meta))``.
        """
        from ..itl.parser import parse_trace

        try:
            text = path.read_text()
        except OSError:
            return "miss", None
        try:
            header, _, body = text.partition("\n")
            meta = json.loads(header)
            if meta.get("end") != len(text):
                raise ValueError("truncated trace entry")
            from ..smt import builder as B

            env = {
                name: B.var(name, _sort_from_text(sort_text))
                for name, sort_text in meta.get("extern", [])
            }
            trace = parse_trace(body, env=env)
        except Exception:
            return "corrupt", None
        return "ok", (trace, meta)

    def _write_entry(self, path: Path, trace, meta: dict) -> bool:
        """Atomically persist one trace entry; ``False`` on OS failure."""
        from ..itl.printer import trace_to_sexpr

        body = trace_to_sexpr(trace)
        extern = sorted(
            (v.name, _sort_text(v.sort)) for v in _undeclared_vars(trace)
        )
        meta = dict(meta, extern=extern)
        # Self-delimiting: the header records the total byte length so a
        # truncated file is detected without trusting the parser.
        placeholder = dict(meta, end=0)
        while True:
            header = json.dumps(placeholder, sort_keys=True)
            total = len(header) + 1 + len(body)
            if placeholder["end"] == total:
                break
            placeholder["end"] = total
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(header)
                handle.write("\n")
                handle.write(body)
                # Durability, not just atomicity: the data must be on disk
                # *before* the rename publishes the name, and the rename
                # itself must survive a power cut — otherwise a crash can
                # leave a published entry with unwritten bytes (exactly the
                # corruption the length check would then mis-diagnose as a
                # plain miss, silently losing warm state).
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False  # a full disk must not fail the run
        return True

    def load_trace(self, key: str, coarse: bool = False):
        """Return ``(trace, meta)`` for a cached Isla result, or ``None``.

        ``meta`` carries the stored execution metrics (``paths``,
        ``model_calls``, ``model_steps``, ``solver_checks``).  An entry
        that parses but fails the well-formedness checker is treated
        exactly like a torn write: counted, *evicted*, and reported as a
        miss — a cache must never be able to feed the proof pipeline an
        ill-formed trace (hand-edited file, version-skewed grammar, bit
        rot past the length check).
        """
        path = self._trace_path(key)
        status, hit = self._read_entry(path)
        if status == "miss":
            self.stats.trace_misses += 1
            return None
        if status == "corrupt":
            self.stats.corrupt_entries += 1
            self.stats.trace_misses += 1
            return None
        trace, meta = hit
        from ..analysis.wellformed import is_wellformed

        if not is_wellformed(trace):
            self.stats.wellformed_rejects += 1
            self.stats.corrupt_entries += 1
            self.stats.trace_misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.trace_hits += 1
        if coarse:
            self.stats.trace_coarse_hits += 1
        return trace, meta

    def store_trace(self, key: str, trace, meta: dict, coarse: bool = False) -> None:
        """Persist a *complete* Isla result atomically.

        ``meta`` must already carry the metrics; the external-variable
        signature is computed here from the trace itself.
        """
        if not self._write_entry(self._trace_path(key), trace, meta):
            return
        if coarse:
            self.stats.trace_coarse_writes += 1
        else:
            self.stats.trace_writes += 1

    # -- parametric family store --------------------------------------------
    #
    # Same entry format as the trace store, in a sibling ``families/`` tree:
    # the stored trace is a *raw* (pre-simplification) parametric tree whose
    # free operand variables (``?f_imm12`` and friends) ride in the extern
    # signature, and the meta carries the family's instantiation contract
    # (placeholder register bases, fixed registers, operand dependence).
    # The well-formedness checker is not consulted on load: it judges
    # finalised traces, and a family is instantiated — then simplified and
    # checked — before anything downstream sees it.  A corrupt entry is a
    # miss; the family simply rebuilds.

    def load_family(self, key: str):
        """Return ``(raw_trace, meta)`` for a cached family, or ``None``."""
        status, hit = self._read_entry(self._family_path(key))
        if status == "ok":
            self.stats.family_hits += 1
            return hit
        if status == "corrupt":
            self.stats.corrupt_entries += 1
        self.stats.family_misses += 1
        return None

    def store_family(self, key: str, trace, meta: dict) -> None:
        """Persist one parametric family entry atomically."""
        if self._write_entry(self._family_path(key), trace, meta):
            self.stats.family_writes += 1

    # -- footprint (read-set) index -----------------------------------------
    #
    # Maps ``footprint_index_key(model, opcode, prefix)`` to the register
    # read set of a completed run, enabling coarse trace lookups: a reader
    # restricts its assumptions to the recorded read set and probes the
    # coarse key.  Append-only JSONL with last-record-wins, same torn-line
    # tolerance as the SMT store.

    def _load_fp(self) -> dict[str, list[str]]:
        with self._lock:
            if self._fp is None:
                self._fp = {}
                try:
                    text = self._fp_path.read_text()
                except OSError:
                    return self._fp
                for line in text.splitlines():
                    try:
                        record = json.loads(line)
                        self._fp[record["k"]] = list(record["regs"])
                    except (ValueError, KeyError, TypeError):
                        self.stats.corrupt_entries += 1
            return self._fp

    def load_footprint(self, key: str) -> list[str] | None:
        """The recorded register read set for an index key, or ``None``."""
        return self._load_fp().get(key)

    def store_footprint(self, key: str, regs) -> None:
        """Record the read set of a completed run (idempotent)."""
        regs = sorted(str(r) for r in regs)
        with self._lock:
            index = self._load_fp()
            if index.get(key) == regs:
                return
            index[key] = regs
        line = json.dumps({"k": key, "regs": regs}, sort_keys=True) + "\n"
        if not _append_exact(self._fp_path, line.encode()):
            return  # losing the index only costs coarse hits
        self.stats.fp_index_writes += 1

    # -- SMT verdict store --------------------------------------------------

    def _load_smt(self) -> None:
        """Load the verdict log; truncate its corrupt tail in place.

        Records mid-file that fail to parse are skipped (they cost one
        warm verdict each), but a *trailing* run of bad bytes — a torn
        final append, a dangling line with no newline — is cut off the
        file under the same ``flock`` the appenders take, so the log
        stops accumulating garbage that every subsequent open would
        re-skip and every subsequent append would bury mid-file where it
        can no longer be distinguished from real corruption.
        """
        try:
            fd = os.open(self._smt_path, os.O_RDWR)
        except OSError:
            return
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:
                    pass
            chunks = []
            while True:
                chunk = os.read(fd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
            data = b"".join(chunks)
            valid_end = 0  # byte offset just past the last valid record
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                if newline == -1:
                    # Dangling final line, no terminator: a torn write,
                    # whatever its bytes happen to parse as.
                    self.stats.corrupt_entries += 1
                    break
                try:
                    record = json.loads(data[offset:newline])
                    self._smt[record["k"]] = record["r"]
                except (ValueError, KeyError, TypeError):
                    self.stats.corrupt_entries += 1
                else:
                    valid_end = newline + 1
                offset = newline + 1
            if valid_end < len(data):
                self.stats.smt_truncated_bytes = len(data) - valid_end
                try:
                    os.ftruncate(fd, valid_end)
                    os.fsync(fd)
                except OSError:
                    pass
        finally:
            os.close(fd)
        self.stats.smt_loaded = len(self._smt)

    def smt_lookup(self, key: str) -> str | None:
        verdict = self._smt.get(key)
        if verdict is None:
            self.stats.smt_misses += 1
        else:
            self.stats.smt_hits += 1
        return verdict

    def smt_record(self, key: str, verdict: str) -> None:
        if verdict not in ("sat", "unsat"):
            raise ValueError(f"only sat/unsat verdicts persist, got {verdict!r}")
        with self._lock:
            if self._smt.get(key) == verdict:
                return
            self._smt[key] = verdict
            self._smt_pending.append(
                json.dumps({"k": key, "r": verdict}, sort_keys=True)
            )
            self.stats.smt_records += 1
            full = len(self._smt_pending) >= 256
        if full:
            self.flush()

    def flush(self) -> None:
        """Append pending SMT verdicts (one locked, uninterleaved write).

        The handle lock is held across the append: two of this process's
        threads flushing concurrently must not both write the same pending
        lines (on-disk duplicates would be harmless, but clearing the
        buffer twice could drop records queued in between).
        """
        with self._lock:
            if not self._smt_pending:
                return
            payload = "".join(line + "\n" for line in self._smt_pending)
            if not _append_exact(self._smt_path, payload.encode()):
                return  # dropped verdicts are only a warm-start loss
            self._smt_pending.clear()

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "DiskCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _undeclared_vars(trace):
    """Free variables a trace mentions but never declares or defines.

    These are *external* symbols (symbolic opcode bits, device-chosen
    values threaded across assumptions) whose sorts must be recorded next
    to the trace so the parser can rebind them on load.
    """
    from ..itl import events as E

    declared: set = set()
    extern: set = set()

    def walk(node) -> None:
        for event in node.events:
            bound = ()
            if isinstance(event, (E.DeclareConst, E.DefineConst)):
                declared.add(event.var)
            if isinstance(event, E.DefineConst):
                bound = event.expr.free_vars()
            elif isinstance(event, (E.ReadReg, E.WriteReg, E.AssumeReg)):
                bound = event.value.free_vars()
            elif isinstance(event, (E.ReadMem, E.WriteMem)):
                bound = event.addr.free_vars() | event.data.free_vars()
            elif isinstance(event, (E.Assert, E.Assume)):
                bound = event.expr.free_vars()
            for v in bound:
                if v not in declared:
                    extern.add(v)
        for sub in node.cases or ():
            walk(sub)

    walk(trace)
    return extern
