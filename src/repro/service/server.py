"""The verification daemon: an asyncio front end over resident state.

The service owns exactly one of each warm resource — a
:class:`~repro.parallel.scheduler.WorkerPool`, an optional
:class:`~repro.cache.DiskCache` (installed process-wide as the solver's
persistent check store, as ``tools/verify`` does per run), and a
:class:`~repro.service.batcher.TraceBatcher` — and any number of
:class:`~repro.service.runner.JobRunner` threads executing jobs against
them.  The asyncio layer is deliberately thin: parse a request, touch the
(thread-safe) job table/queue, serialise JSON.  All heavy work happens in
runner threads and worker processes; the event loop never blocks on a
solver.

HTTP surface (all JSON unless noted)::

    GET  /healthz                 liveness + uptime
    POST /jobs                    submit {case, kwargs?, priority?,
                                          deadline_s?, conflicts?} -> 202
    GET  /jobs                    job summaries
    GET  /jobs/<id>               one summary
    GET  /jobs/<id>/report        full result incl. certificate (409 if
                                  not finished)
    GET  /jobs/<id>/events        ?since=N&wait=S  long-poll progress
    GET  /jobs/<id>/stream        NDJSON event stream until terminal
    POST /jobs/<id>/cancel        cancel queued (flag running) jobs
    GET  /metrics                 Prometheus text exposition
    GET  /metrics.json            raw telemetry snapshot
    POST /shutdown                graceful drain; {"mode": "abort"} also
                                  drains in-flight blocks to ``unknown``

Transport: local TCP (default loopback) or a Unix domain socket.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse

from .protocol import JobRecord, SubmitRequest
from .queue import AdmissionError, JobQueue
from .telemetry import Telemetry


class VerificationService:
    """Resident daemon state + its asyncio HTTP front end."""

    def __init__(
        self,
        cache_dir: str | None = None,
        pool_jobs: int = 2,
        block_jobs: int = 2,
        runners: int = 2,
        max_queue: int = 64,
        service_spec=None,
        batch_window_s: float = 0.01,
        telemetry: Telemetry | None = None,
        shard_id: str | None = None,
    ) -> None:
        from ..cache import DiskCache
        from ..parallel.scheduler import WorkerPool
        from .batcher import TraceBatcher
        from .runner import JobRunner

        self.telemetry = telemetry or Telemetry()
        #: Optional fleet identity: reported on /healthz so a supervisor's
        #: heartbeat can confirm it reached the shard it meant to.
        self.shard_id = shard_id
        self.cache = DiskCache(cache_dir) if cache_dir else None
        self.pool = WorkerPool(pool_jobs)
        self.batcher = TraceBatcher(
            pool=self.pool,
            cache=self.cache,
            window_s=batch_window_s,
            telemetry=self.telemetry,
        )
        self.block_jobs = block_jobs
        self.queue = JobQueue(
            max_depth=max_queue, service_spec=service_spec, shares=max(1, runners)
        )
        self.jobs: dict[str, JobRecord] = {}
        self._jobs_lock = threading.Lock()
        self._runners = [
            JobRunner(self, name=f"runner-{i}") for i in range(max(1, runners))
        ]
        self._started = False
        self._previous_store = None
        self._shutdown_event: asyncio.Event | None = None
        self._shutdown_mode = "drain"
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        from ..smt.solver import install_persistent_check_store

        self._previous_store = install_persistent_check_store(self.cache)
        for runner in self._runners:
            runner.start()
        self._started = True
        self.telemetry.log(
            "service-started",
            runners=len(self._runners),
            pool_jobs=self.pool.jobs,
            cache=str(self.cache.root) if self.cache else None,
        )

    def stop(self, abort: bool = False) -> None:
        """Drain and release everything.

        ``abort=False`` (the default) finishes running jobs completely;
        ``abort=True`` additionally requests the cooperative shutdown
        event, so in-flight jobs finish only their current blocks and
        report the rest ``unknown`` — the SIGTERM path.
        """
        if not self._started:
            return
        from ..resilience import request_shutdown, reset_shutdown
        from ..smt.solver import install_persistent_check_store

        self.queue.drain()
        if abort:
            request_shutdown()
        for runner in self._runners:
            runner.stop()
        for runner in self._runners:
            runner.join(timeout=60)
        self.batcher.close()
        self.pool.close()
        if self.cache is not None:
            self.cache.flush()
        install_persistent_check_store(self._previous_store)
        if abort:
            reset_shutdown()
        self._started = False
        self.telemetry.log("service-stopped", abort=abort)

    # -- job table -------------------------------------------------------------

    def submit(self, request: SubmitRequest) -> JobRecord:
        from .. import casestudies

        if request.case.startswith("cosim:"):
            from ..cosim.archs import COSIM_ARCHS

            arch_name = request.case.split(":", 1)[1]
            if arch_name not in COSIM_ARCHS:
                raise AdmissionError(f"unknown case study {request.case!r}")
        elif getattr(casestudies, request.case, None) is None or (
            request.case not in casestudies.__all__
        ):
            raise AdmissionError(f"unknown case study {request.case!r}")
        job = JobRecord(request)
        with self._jobs_lock:
            self.jobs[job.id] = job
        try:
            self.queue.submit(job)
        except AdmissionError:
            with self._jobs_lock:
                del self.jobs[job.id]
            self.telemetry.inc("jobs_rejected")
            raise
        self.telemetry.inc("jobs_submitted")
        self.telemetry.gauge("queue_depth", self.queue.depth)
        self.telemetry.log(
            "job-submitted",
            job=job.id,
            case=request.case,
            priority=request.priority,
        )
        return job

    def job(self, job_id: str) -> JobRecord | None:
        with self._jobs_lock:
            return self.jobs.get(job_id)

    def job_snapshots(self) -> list[dict]:
        with self._jobs_lock:
            records = list(self.jobs.values())
        return [record.snapshot() for record in records]

    # -- asyncio front end -----------------------------------------------------

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        ready=None,
    ) -> None:
        """Run the HTTP front end until :meth:`request_stop` fires.

        ``ready`` is an optional callback invoked with the bound address
        (``(host, port)`` tuple or the socket path) once listening.
        """
        self.start()
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if socket_path is not None:
            server = await asyncio.start_unix_server(self._handle, path=socket_path)
            bound: object = socket_path
        else:
            server = await asyncio.start_server(self._handle, host=host, port=port)
            bound = server.sockets[0].getsockname()[:2]
        self.bound = bound
        if ready is not None:
            ready(bound)
        self.telemetry.log("service-listening", address=str(bound))
        async with server:
            await self._shutdown_event.wait()
            server.close()
            await server.wait_closed()
        if self._shutdown_mode == "crash":
            # Simulated crash (chaos harness, in-process shards): the
            # listener is gone and runner threads are told to stop, but
            # nothing drains, flushes, or reports — queued and in-flight
            # jobs are simply lost, exactly as a SIGKILL would lose them.
            # In-flight connections are about to be cancelled mid-read by
            # the loop teardown; that is the point, so keep it quiet.
            asyncio.get_running_loop().set_exception_handler(
                lambda _loop, _ctx: None
            )
            for runner in self._runners:
                runner.stop()
            self.telemetry.log("service-crashed")
            return
        await asyncio.to_thread(self.stop, self._shutdown_mode == "abort")

    def request_stop(self, mode: str = "drain") -> None:
        """Trigger the serve() loop to exit (thread/signal-handler safe).

        ``mode`` is ``"drain"`` (finish everything), ``"abort"`` (finish
        current blocks only), or ``"crash"`` (abandon everything on the
        floor — the chaos harness's stand-in for SIGKILL when the shard
        shares the test process).
        """
        self._shutdown_mode = mode
        if self._shutdown_event is None:
            return
        # An asyncio.Event set from a foreign thread does not wake the
        # selector; without the threadsafe hop the serve loop only notices
        # on its next unrelated I/O — which never comes once heartbeats
        # stop.  Fall back to a direct set when called from the loop itself
        # (the /shutdown route) or after the loop is gone.
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._shutdown_event.set)
                return
            except RuntimeError:
                pass
        self._shutdown_event.set()

    def refresh_gauges(self) -> None:
        """Re-derive observability gauges from resident state.

        Called on every /metrics render so static-analysis rejections are
        visible even between jobs: the full :class:`CacheStats` snapshot
        (including ``wellformed_rejects`` and ``corrupt_entries`` — the
        ill-formed-entry evictions) becomes ``disk_*`` gauges, and the
        process-global ISA-spec validator counters become ``isaspec_*``.
        """
        from ..analysis.isaspec import isaspec_stats

        if self.cache is not None:
            for key, value in self.cache.stats.snapshot().items():
                self.telemetry.gauge(f"disk_{key}", value)
        for key, value in isaspec_stats().items():
            self.telemetry.gauge(f"isaspec_{key}", value)

    # -- request plumbing ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _version = (
                    request_line.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                await self._respond(writer, 400, {"error": "bad request line"})
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(length)
            parsed = urllib.parse.urlsplit(target)
            query = dict(urllib.parse.parse_qsl(parsed.query))
            await self._route(writer, method, parsed.path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, writer, status: int, payload, content_type: str = "application/json"
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        if content_type == "application/json":
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        else:
            body = payload if isinstance(payload, bytes) else payload.encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _route(self, writer, method, path, query, body) -> None:
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET" and parts == ["healthz"]:
                with self._jobs_lock:
                    inflight = sum(
                        1 for j in self.jobs.values() if j.state == "running"
                    )
                await self._respond(
                    writer, 200,
                    {"ok": True, "uptime_s": self.telemetry.snapshot()["uptime_s"],
                     "queue_depth": self.queue.depth,
                     "inflight": inflight,
                     "shard": self.shard_id},
                )
            elif method == "POST" and parts == ["jobs"]:
                await self._submit(writer, body)
            elif method == "GET" and parts == ["jobs"]:
                await self._respond(writer, 200, {"jobs": self.job_snapshots()})
            elif len(parts) >= 2 and parts[0] == "jobs":
                await self._job_route(writer, method, parts[1], parts[2:], query)
            elif method == "GET" and parts == ["metrics"]:
                self.refresh_gauges()
                await self._respond(
                    writer, 200, self.telemetry.render_prometheus(),
                    content_type="text/plain; version=0.0.4",
                )
            elif method == "GET" and parts == ["metrics.json"]:
                self.refresh_gauges()
                await self._respond(writer, 200, self.telemetry.snapshot())
            elif method == "POST" and parts == ["shutdown"]:
                mode = "drain"
                if body:
                    try:
                        mode = json.loads(body.decode() or "{}").get("mode", "drain")
                    except json.JSONDecodeError:
                        mode = "drain"
                await self._respond(writer, 200, {"draining": True, "mode": mode})
                self.request_stop(mode)
            else:
                await self._respond(writer, 404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            self.telemetry.inc("http_errors")
            self.telemetry.log("http-error", path=path, error=str(exc))
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except (ConnectionError, OSError):
                pass

    async def _submit(self, writer, body: bytes) -> None:
        try:
            request = SubmitRequest.from_json(json.loads(body.decode() or "{}"))
        except (ValueError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        try:
            job = self.submit(request)
        except AdmissionError as exc:
            status = 404 if "unknown case" in exc.reason else 429
            await self._respond(writer, status, {"error": exc.reason})
            return
        await self._respond(writer, 202, job.snapshot())

    async def _job_route(self, writer, method, job_id, rest, query) -> None:
        job = self.job(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if method == "GET" and not rest:
            await self._respond(writer, 200, job.snapshot())
        elif method == "GET" and rest == ["report"]:
            if job.state == "done":
                await self._respond(writer, 200, job.result)
            elif job.terminal:
                await self._respond(
                    writer, 409, {"error": job.error or job.state,
                                  "state": job.state},
                )
            else:
                await self._respond(
                    writer, 409, {"error": "not finished", "state": job.state}
                )
        elif method == "GET" and rest == ["events"]:
            since = int(query.get("since", 0) or 0)
            wait_s = min(30.0, float(query.get("wait", 0) or 0))
            deadline = asyncio.get_event_loop().time() + wait_s
            events = job.events_since(since)
            while not events and not job.terminal:
                if asyncio.get_event_loop().time() >= deadline:
                    break
                await asyncio.sleep(0.05)
                events = job.events_since(since)
            await self._respond(
                writer, 200,
                {"state": job.state,
                 "events": [e.to_json() for e in events]},
            )
        elif method == "GET" and rest == ["stream"]:
            await self._stream(writer, job)
        elif method == "POST" and rest == ["cancel"]:
            was_queued = self.queue.cancel(job)
            if was_queued:
                self.telemetry.inc("jobs_cancelled")
            await self._respond(
                writer, 200,
                {"cancelled": was_queued, "state": job.state,
                 "note": None if was_queued
                 else "running jobs drain; queued jobs cancel immediately"},
            )
        else:
            await self._respond(writer, 405, {"error": "unsupported"})

    async def _stream(self, writer, job: JobRecord) -> None:
        """NDJSON per-block progress until the job is terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        seq = 0
        while True:
            for event in job.events_since(seq):
                seq = event.seq + 1
                writer.write((json.dumps(event.to_json(), sort_keys=True) + "\n").encode())
            await writer.drain()
            if job.terminal and seq >= job.num_events:
                return
            await asyncio.sleep(0.05)
