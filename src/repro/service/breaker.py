"""Per-shard circuit breakers for the verification fleet.

A breaker sits between the fleet router and one backend shard and keeps a
flapping or dead shard from absorbing traffic that will only time out.
Classic three-state machine:

- **closed** — traffic flows; consecutive failures are counted and a run
  of ``failure_threshold`` of them trips the breaker;
- **open** — all traffic is refused locally (the router fails over to the
  next shard on the hash ring) until a cooldown elapses;
- **half-open** — after the cooldown, a bounded number of *probe*
  requests are let through; one success closes the breaker and resets its
  state, one failure re-opens it.

Re-opening doubles the cooldown (capped), so a shard that flaps on every
probe backs off exponentially instead of being hammered at a fixed
cadence — the same bounded-exponential shape as the budget ladder and the
supervisor's restart backoff.  A success resets the cooldown to its base.

The ``clock`` hook exists so tests drive transitions deterministically;
production uses ``time.monotonic``.  All methods are thread-safe: the
router's dispatcher threads share one breaker per shard.
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """One shard's admission valve on the router side."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.base_cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self.half_open_probes = max(1, half_open_probes)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._cooldown_s = cooldown_s
        self._opened_at: float | None = None
        self._probes_inflight = 0
        #: Lifetime transition counters, surfaced through /metrics.
        self.times_opened = 0
        self.times_closed = 0

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def _tick(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if self._state == OPEN and self._opened_at is not None:
            if self.clock() - self._opened_at >= self._cooldown_s:
                self._state = HALF_OPEN
                self._probes_inflight = 0

    def _trip(self) -> None:
        """Transition to open (lock held); each re-open doubles the cooldown."""
        if self._state == OPEN:
            return
        if self._state == HALF_OPEN or self.times_opened:
            self._cooldown_s = min(self.max_cooldown_s, self._cooldown_s * 2)
        self._state = OPEN
        self._opened_at = self.clock()
        self._failures = 0
        self.times_opened += 1

    # -- the router-facing API ------------------------------------------------

    def allow(self) -> bool:
        """May one request be sent to this shard right now?

        In half-open state, at most ``half_open_probes`` concurrent probes
        are admitted; callers that get ``True`` must report the outcome
        via :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_inflight >= self.half_open_probes:
                return False
            self._probes_inflight += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._tick()
            if self._state == HALF_OPEN:
                self.times_closed += 1
                self._cooldown_s = self.base_cooldown_s
            self._state = CLOSED
            self._failures = 0
            self._probes_inflight = 0

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            if self._state == HALF_OPEN:
                self._trip()
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def force_open(self) -> None:
        """Trip immediately (the supervisor declared the shard dead)."""
        with self._lock:
            self._trip()

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            self._tick()
            return {
                "state": self._state,
                "failures": self._failures,
                "cooldown_s": self._cooldown_s,
                "times_opened": self.times_opened,
                "times_closed": self.times_closed,
            }
