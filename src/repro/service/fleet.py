"""The fleet router: consistent-hash placement over supervised shards.

This is the front door of the sharded verification fleet.  One
:class:`FleetRouter` owns:

- a :class:`~repro.service.supervisor.ShardSupervisor` (started and
  stopped with the router) whose shards do all actual verification;
- a :class:`HashRing` mapping jobs to shards by their **footprint-group
  token** (:func:`repro.analysis.footprint.shard_token`), so structurally
  similar cases land on the same shard and hit its warm trace/SMT caches.
  The token needs a built case, which the router never has at submit time
  — shards report it in every result (``shard_key``) and the router
  *learns* the affinity, falling back to the request's content hash until
  it does;
- one :class:`~repro.service.breaker.CircuitBreaker` per shard, tripped
  by dispatch failures and forced open the moment the supervisor declares
  a shard dead;
- an optional crash-safe :class:`~repro.service.journal.JobJournal`:
  every job is journaled *before* its 202 and every completion is
  journaled *with* its result, so a router restart resubmits unfinished
  jobs (``journal_replayed``) and serves already-finished ones from the
  journal without re-running them (``journal_dedup``) — dedup is by
  request content hash, which is sound because verification is
  deterministic: same request, same certificate, bit for bit.

Placement is at-least-once, completion is exactly-once-per-content-hash:
a shard that dies mid-job loses it (the poll sees the connection die or a
404 from the restarted shard's empty job table) and the router requeues
it elsewhere; the journal's first ``done`` record for a hash wins and
every later submit of that hash is served from it.

Like the single daemon, the asyncio HTTP front end is deliberately thin;
dispatch and polling run on plain threads.  The router exposes the same
job surface as a shard (``/jobs``, ``/jobs/<id>``, ``.../report``,
``.../events``) so :class:`~repro.service.client.ServiceClient` — and
therefore ``tools/submit`` — works against a fleet unchanged, plus
``GET /fleet`` for shard/breaker/journal introspection.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import threading
import time
from dataclasses import dataclass, field

from . import journal as journal_mod
from .breaker import CircuitBreaker
from .client import ServiceError, ServiceTimeout, ServiceUnavailable
from .journal import JobJournal
from .protocol import JobRecord, SubmitRequest
from .queue import AdmissionError
from .telemetry import Telemetry


def job_content_hash(case: str, kwargs: dict | None = None) -> str:
    """The canonical identity of a verification request.

    Priority, deadlines, and budgets are deliberately excluded: they
    change *how* a job runs, not *what* it proves, and dedup must treat
    two submissions of the same proof obligation as one.
    """
    body = json.dumps(
        {"case": case, "kwargs": kwargs or {}}, sort_keys=True
    ).encode()
    return hashlib.sha256(body).hexdigest()


class HashRing:
    """Consistent hashing with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a key routes to
    the first point at or after its own hash.  ``preference`` returns
    *all* shards in ring order from that point — the router's failover
    order — so when a shard is down or open-circuited its keys spill to
    the next shard deterministically instead of rehashing the world.
    """

    def __init__(self, shard_ids: list[str], replicas: int = 64) -> None:
        if not shard_ids:
            raise ValueError("HashRing needs at least one shard")
        self.shard_ids = list(shard_ids)
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for shard_id in self.shard_ids:
            for replica in range(replicas):
                points.append((self._hash(f"{shard_id}#{replica}"), shard_id))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode()).digest()[:8], "big"
        )

    def shard_for(self, key: str) -> str:
        return self.preference(key)[0]

    def preference(self, key: str) -> list[str]:
        """Every shard, in ring-walk order from the key's hash point."""
        start = bisect.bisect_left(self._hashes, self._hash(key))
        order: list[str] = []
        seen: set[str] = set()
        for index in range(len(self._points)):
            _h, shard_id = self._points[(start + index) % len(self._points)]
            if shard_id not in seen:
                seen.add(shard_id)
                order.append(shard_id)
            if len(order) == len(self.shard_ids):
                break
        return order


_fleet_ids = itertools.count(1)


def _fresh_fleet_id() -> str:
    return f"fleet-{next(_fleet_ids):06d}"


@dataclass
class FleetJob(JobRecord):
    """A router-side job: a :class:`JobRecord` plus placement state."""

    id: str = field(default_factory=_fresh_fleet_id)
    content_hash: str = ""
    shard: str | None = None
    attempts: int = 0
    replayed: bool = False

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap.update(
            shard=self.shard,
            attempts=self.attempts,
            hash=self.content_hash,
            replayed=self.replayed,
        )
        return snap


class _JobLost(Exception):
    """The placed shard died or forgot the job; it must be requeued."""


class FleetRouter:
    """Route jobs across supervised shards with journal-backed recovery."""

    def __init__(
        self,
        supervisor,
        journal_path=None,
        telemetry: Telemetry | None = None,
        dispatchers: int | None = None,
        max_queue: int = 256,
        job_timeout_s: float = 600.0,
        poll_s: float = 0.05,
        requeue_delay_s: float = 0.1,
        ring_replicas: int = 64,
        breaker_kwargs: dict | None = None,
        client_kwargs: dict | None = None,
    ) -> None:
        self.supervisor = supervisor
        self.telemetry = telemetry or Telemetry()
        self.journal_path = journal_path
        self.journal: JobJournal | None = None
        self.max_queue = max_queue
        self.job_timeout_s = job_timeout_s
        self.poll_s = poll_s
        self.requeue_delay_s = requeue_delay_s
        self.ring = HashRing(supervisor.shard_ids, replicas=ring_replicas)
        self.breakers = {
            shard_id: CircuitBreaker(**(breaker_kwargs or {}))
            for shard_id in supervisor.shard_ids
        }
        #: Per-request client settings for shard dispatch/polling; short
        #: connect timeouts keep a dead shard from stalling a dispatcher.
        self.client_kwargs = {
            "timeout": 30.0,
            "connect_timeout": 2.0,
            **(client_kwargs or {}),
        }
        supervisor.on_down = self._on_shard_down
        supervisor.on_up = self._on_shard_up
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: (ready_at, tiebreak, job) — a tiny delay heap, kept sorted.
        self._queue: list[tuple[float, int, FleetJob]] = []
        self._tiebreak = itertools.count()
        self.jobs: dict[str, FleetJob] = {}
        self._live_by_hash: dict[str, FleetJob] = {}
        self._completed: dict[str, dict] = {}  # hash -> full result
        self._affinity: dict[str, str] = {}  # content hash -> shard token
        self._dispatchers: list[threading.Thread] = []
        self._dispatcher_count = (
            dispatchers
            if dispatchers is not None
            else 2 * len(supervisor.shard_ids)
        )
        self._stop = threading.Event()
        self._started = False
        self._shutdown_event = None
        self._shutdown_mode = "drain"
        self._serve_loop = None

    # -- shard health callbacks (supervisor monitor thread) -------------------

    def _on_shard_down(self, shard_id: str) -> None:
        self.breakers[shard_id].force_open()
        self.telemetry.log("fleet-shard-down", shard=shard_id)

    def _on_shard_up(self, shard_id: str) -> None:
        # A freshly restarted shard gets a clean breaker: the supervisor
        # just health-checked it, which is a better signal than waiting
        # out a cooldown tuned for silent failures.
        self.breakers[shard_id].record_success()
        self.telemetry.log("fleet-shard-up", shard=shard_id)
        with self._ready:
            self._ready.notify_all()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        if self.journal_path is not None:
            self.journal = JobJournal(self.journal_path)
        self.supervisor.start()
        self._stop.clear()
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"fleet-dispatch-{i}",
                daemon=True,
            )
            for i in range(max(1, self._dispatcher_count))
        ]
        for thread in self._dispatchers:
            thread.start()
        self._started = True
        self.telemetry.log(
            "fleet-started",
            shards=len(self.supervisor.shard_ids),
            dispatchers=len(self._dispatchers),
            journal=str(self.journal_path) if self.journal_path else None,
        )
        self._replay_journal()

    def stop(self) -> None:
        if not self._started:
            return
        self._stop.set()
        with self._ready:
            self._ready.notify_all()
        for thread in self._dispatchers:
            thread.join(timeout=30)
        self.supervisor.stop()
        if self.journal is not None:
            self.journal.close()
        self._started = False
        self.telemetry.log("fleet-stopped")

    # -- journal replay --------------------------------------------------------

    def _replay_journal(self) -> None:
        if self.journal is None:
            return
        replay = self.journal.replay()
        for record in replay.completed.values():
            content = record["hash"]
            if content not in self._completed:
                self._completed[content] = record["result"]
        for job_id, record in replay.pending.items():
            request = SubmitRequest(
                case=record["case"],
                kwargs=dict(record.get("kwargs") or {}),
                priority=record.get("priority", "batch"),
            )
            job = FleetJob(
                request=request,
                id=job_id,
                content_hash=record["hash"],
                replayed=True,
            )
            self.telemetry.inc("journal_replayed")
            with self._lock:
                self.jobs[job.id] = job
            result = self._completed.get(job.content_hash)
            if result is not None:
                # A twin already ran to completion: serve the journaled
                # result instead of executing again, and journal the
                # terminal record so the *next* replay skips this job too.
                self._finish_done(job, result, from_journal=True)
                continue
            with self._lock:
                self._live_by_hash.setdefault(job.content_hash, job)
            job.add_event("replayed")
            self._enqueue(job)
        if replay.pending or replay.completed:
            self.telemetry.log(
                "journal-replayed",
                pending=len(replay.pending),
                completed=len(replay.completed),
                truncated_bytes=self.journal.stats.truncated_bytes,
            )

    # -- submission ------------------------------------------------------------

    def submit(self, request: SubmitRequest) -> FleetJob:
        from .. import casestudies

        if request.case.startswith("cosim:"):
            from ..cosim.archs import COSIM_ARCHS

            arch_name = request.case.split(":", 1)[1]
            if arch_name not in COSIM_ARCHS:
                raise AdmissionError(f"unknown case study {request.case!r}")
        elif getattr(casestudies, request.case, None) is None or (
            request.case not in casestudies.__all__
        ):
            raise AdmissionError(f"unknown case study {request.case!r}")
        content = job_content_hash(request.case, request.kwargs)
        with self._lock:
            result = self._completed.get(content)
            if result is None:
                live = self._live_by_hash.get(content)
                if live is not None:
                    # Single-flight: same proof obligation already in
                    # flight — the caller shares its job record.
                    self.telemetry.inc("fleet_dedup_hits")
                    return live
            queued = sum(
                1 for _t, _n, j in self._queue if j.state == "queued"
            )
            if result is None and queued >= self.max_queue:
                self.telemetry.inc("jobs_rejected")
                raise AdmissionError(f"fleet queue full ({self.max_queue} jobs)")
        job = FleetJob(request=request, content_hash=content)
        if result is not None:
            # Finished in a previous router life (or earlier this one and
            # evicted from live tracking): serve straight from the journal.
            with self._lock:
                self.jobs[job.id] = job
            self.telemetry.inc("fleet_dedup_hits")
            self._finish_done(job, result, from_journal=True)
            return job
        if self.journal is not None:
            self.journal.append(
                journal_mod.ACCEPT,
                job=job.id,
                hash=content,
                case=request.case,
                kwargs=dict(request.kwargs),
                priority=request.priority,
            )
        with self._lock:
            self.jobs[job.id] = job
            self._live_by_hash[content] = job
        self.telemetry.inc("fleet_jobs_submitted")
        self.telemetry.log(
            "fleet-job-submitted", job=job.id, case=request.case, hash=content
        )
        self._enqueue(job)
        return job

    def job(self, job_id: str) -> FleetJob | None:
        with self._lock:
            return self.jobs.get(job_id)

    def job_snapshots(self) -> list[dict]:
        with self._lock:
            records = list(self.jobs.values())
        return [record.snapshot() for record in records]

    def cancel(self, job: FleetJob) -> bool:
        """Cancel a job that has not been placed yet; placed jobs only get
        the request flag (their shard drains them)."""
        with self._lock:
            job.cancel_requested = True
            cancellable = job.state == "queued" and job.shard is None
        if cancellable:
            self._finish_terminal(job, journal_mod.CANCELLED, "cancelled")
        return cancellable

    # -- the dispatch queue ----------------------------------------------------

    def _enqueue(self, job: FleetJob, delay_s: float = 0.0) -> None:
        with self._ready:
            bisect.insort(
                self._queue,
                (time.monotonic() + delay_s, next(self._tiebreak), job),
            )
            self._ready.notify()

    def _next_job(self) -> FleetJob | None:
        with self._ready:
            while not self._stop.is_set():
                now = time.monotonic()
                if self._queue and self._queue[0][0] <= now:
                    _ready_at, _n, job = self._queue.pop(0)
                    return job
                wait = 0.2
                if self._queue:
                    wait = min(wait, self._queue[0][0] - now)
                self._ready.wait(timeout=max(0.01, wait))
            return None

    def _dispatch_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                self._dispatch(job)
            except Exception as exc:  # noqa: BLE001 — dispatcher survives
                self.telemetry.inc("fleet_dispatch_errors")
                self.telemetry.log(
                    "fleet-dispatch-error", job=job.id, error=str(exc)
                )
                self._requeue(job, f"dispatcher error: {exc}")

    # -- placement -------------------------------------------------------------

    def _routing_key(self, job: FleetJob) -> str:
        # Learned footprint-group token when a completed twin taught us
        # one; the content hash otherwise.  Both are stable, so placement
        # is deterministic either way — the token just adds cache
        # affinity across *different* cases with equal footprint shape.
        with self._lock:
            return self._affinity.get(job.content_hash, job.content_hash)

    def _candidates(self, job: FleetJob) -> list[str]:
        preference = self.ring.preference(self._routing_key(job))
        return [
            shard_id
            for shard_id in preference
            if self.supervisor.is_up(shard_id)
            and self.breakers[shard_id].allow()
        ]

    def _dispatch(self, job: FleetJob) -> None:
        if job.cancel_requested and job.state == "queued":
            self._finish_terminal(job, journal_mod.CANCELLED, "cancelled")
            return
        if job.terminal:
            return
        candidates = self._candidates(job)
        if not candidates:
            self._requeue(job, "no healthy shard")
            return
        request = job.request
        placed = None
        for index, shard_id in enumerate(candidates):
            client = self.supervisor.handle(shard_id).make_client(
                **self.client_kwargs
            )
            try:
                remote = client.submit(
                    request.case,
                    kwargs=dict(request.kwargs) or None,
                    priority=request.priority,
                    deadline_s=request.deadline_s,
                    conflicts=request.conflicts,
                )
            except (ServiceTimeout, ServiceUnavailable) as exc:
                self.breakers[shard_id].record_failure()
                self.telemetry.inc("fleet_submit_failures")
                self.telemetry.log(
                    "fleet-submit-failed",
                    job=job.id, shard=shard_id, error=str(exc),
                )
                continue
            except ServiceError as exc:
                if exc.status == 429:
                    # Shard admission refused (its queue or pool is
                    # full): a healthy signal, try the next shard.
                    self.telemetry.inc("fleet_submit_overflow")
                    continue
                self._finish_terminal(job, journal_mod.FAILED, exc.reason)
                return
            placed = (shard_id, remote["id"], client)
            if index:
                self.telemetry.inc("fleet_failovers")
            break
        if placed is None:
            self._requeue(job, "every candidate shard refused")
            return
        shard_id, remote_id, client = placed
        with self._lock:
            job.shard = shard_id
            job.attempts += 1
        job.add_event("placed", shard=shard_id, remote=remote_id)
        self.telemetry.log(
            "fleet-job-placed", job=job.id, shard=shard_id, remote=remote_id
        )
        try:
            result = self._watch(job, shard_id, remote_id, client)
        except _JobLost as lost:
            self.breakers[shard_id].record_failure()
            self.telemetry.inc("fleet_jobs_lost")
            self.telemetry.log(
                "fleet-job-lost", job=job.id, shard=shard_id, reason=str(lost)
            )
            with self._lock:
                job.shard = None
            self._requeue(job, str(lost))
            return
        except _RemoteFailure as failure:
            self.breakers[shard_id].record_success()  # the shard answered
            self._finish_terminal(job, journal_mod.FAILED, str(failure))
            return
        except _RouterStopping:
            return  # journal still holds the accept; replay resumes it
        self.breakers[shard_id].record_success()
        self._learn_affinity(job, result)
        self.supervisor.absorb(result.get("budget"))
        self._finish_done(job, result)

    def _watch(self, job, shard_id: str, remote_id: str, client) -> dict:
        """Poll the placed job to completion; raises :class:`_JobLost` when
        the shard dies or forgets it."""
        misses = 0
        while True:
            if self._stop.is_set():
                raise _RouterStopping()
            if (
                self.job_timeout_s is not None
                and time.time() - job.created > self.job_timeout_s
            ):
                raise _RemoteFailure(
                    f"job exceeded fleet timeout ({self.job_timeout_s}s)"
                )
            try:
                status = client.status(remote_id)
            except (ServiceTimeout, ServiceUnavailable) as exc:
                # Subclass order matters: these ARE ServiceErrors, but they
                # mean "can't reach the shard", not "the shard said no".
                misses += 1
                if misses >= 3 or not self.supervisor.is_up(shard_id):
                    raise _JobLost(f"shard unreachable: {exc}") from exc
                time.sleep(self.poll_s)
                continue
            except ServiceError as exc:
                if exc.status == 404:
                    # The shard restarted with an empty job table.
                    raise _JobLost("shard restarted; job table empty") from exc
                raise _RemoteFailure(exc.reason) from exc
            misses = 0
            state = status["state"]
            if state == "done":
                try:
                    return client.report(remote_id)
                except (ServiceTimeout, ServiceUnavailable) as exc:
                    raise _JobLost(f"shard unreachable: {exc}") from exc
                except ServiceError as exc:
                    if exc.status == 404:
                        raise _JobLost(
                            "shard restarted before report fetch"
                        ) from exc
                    raise _RemoteFailure(exc.reason) from exc
            if state in ("failed", "cancelled"):
                raise _RemoteFailure(status.get("error") or f"job {state}")
            time.sleep(self.poll_s)

    def _requeue(self, job: FleetJob, reason: str) -> None:
        if job.terminal:
            return
        age = time.time() - job.created
        if self.job_timeout_s is not None and age > self.job_timeout_s:
            self._finish_terminal(
                job, journal_mod.FAILED,
                f"undeliverable after {age:.1f}s: {reason}",
            )
            return
        self.telemetry.inc("fleet_jobs_requeued")
        job.add_event("requeued", reason=reason)
        self._enqueue(job, delay_s=self.requeue_delay_s)

    # -- completion ------------------------------------------------------------

    def _learn_affinity(self, job: FleetJob, result: dict) -> None:
        token = result.get("shard_key")
        if token:
            with self._lock:
                self._affinity[job.content_hash] = token

    def _finish_done(
        self, job: FleetJob, result: dict, from_journal: bool = False
    ) -> None:
        if self.journal is not None and not from_journal:
            self.journal.append(
                journal_mod.DONE,
                job=job.id,
                hash=job.content_hash,
                result=result,
            )
        elif self.journal is not None:
            # Served from a journaled twin: record the terminal state (by
            # reference, not a second result copy) so replay is quiet.
            self.journal.append(
                journal_mod.DONE, job=job.id, hash=job.content_hash
            )
            self.telemetry.inc("journal_dedup")
        with self._lock:
            self._completed.setdefault(job.content_hash, result)
            if self._live_by_hash.get(job.content_hash) is job:
                del self._live_by_hash[job.content_hash]
        job.mark_done(result)
        self.telemetry.inc("fleet_jobs_completed")
        self.telemetry.observe_latency(job.latency_s or 0.0)
        self.telemetry.log(
            "fleet-job-done",
            job=job.id,
            shard=job.shard,
            outcome=result.get("outcome"),
            from_journal=from_journal,
        )

    def _finish_terminal(self, job: FleetJob, kind: str, reason: str) -> None:
        if self.journal is not None:
            self.journal.append(
                kind, job=job.id, hash=job.content_hash, error=reason
            )
        with self._lock:
            if self._live_by_hash.get(job.content_hash) is job:
                del self._live_by_hash[job.content_hash]
        if kind == journal_mod.CANCELLED:
            job.mark_cancelled(reason)
            self.telemetry.inc("fleet_jobs_cancelled")
        else:
            job.mark_failed(reason)
            self.telemetry.inc("fleet_jobs_failed")
        self.telemetry.log(
            "fleet-job-terminal", job=job.id, kind=kind, reason=reason
        )

    # -- introspection ---------------------------------------------------------

    def fleet_snapshot(self) -> dict:
        shards = []
        for slot_snap in self.supervisor.snapshot():
            shard_id = slot_snap["shard"]
            slot_snap["breaker"] = self.breakers[shard_id].snapshot()
            shards.append(slot_snap)
        with self._lock:
            queued = sum(1 for _t, _n, j in self._queue if not j.terminal)
            states: dict[str, int] = {}
            for record in self.jobs.values():
                states[record.state] = states.get(record.state, 0) + 1
            affinity = len(self._affinity)
            completed = len(self._completed)
        return {
            "shards": shards,
            "queued": queued,
            "jobs": states,
            "affinity_entries": affinity,
            "completed_hashes": completed,
            "pool_remaining": self.supervisor.pool_remaining(),
            "journal": (
                self.journal.stats.snapshot()
                if self.journal is not None
                else None
            ),
        }

    # -- asyncio HTTP front end ------------------------------------------------

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        ready=None,
    ) -> None:
        import asyncio

        self.start()
        self._serve_loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle, path=socket_path
            )
            bound: object = socket_path
        else:
            server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
            bound = server.sockets[0].getsockname()[:2]
        self.bound = bound
        if ready is not None:
            ready(bound)
        self.telemetry.log("fleet-listening", address=str(bound))
        async with server:
            await self._shutdown_event.wait()
            server.close()
            await server.wait_closed()
        await asyncio.to_thread(self.stop)

    def request_stop(self, mode: str = "drain") -> None:
        self._shutdown_mode = mode
        if self._shutdown_event is None:
            return
        # Same foreign-thread hazard as VerificationService.request_stop:
        # a bare Event.set() does not wake the selector.
        loop = self._serve_loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._shutdown_event.set)
                return
            except RuntimeError:
                pass
        self._shutdown_event.set()

    async def _handle(self, reader, writer) -> None:
        import asyncio
        import urllib.parse

        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _version = (
                    request_line.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                await self._respond(writer, 400, {"error": "bad request line"})
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(length)
            parsed = urllib.parse.urlsplit(target)
            query = dict(urllib.parse.parse_qsl(parsed.query))
            await self._route(writer, method, parsed.path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, writer, status: int, payload,
        content_type: str = "application/json",
    ) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        if content_type == "application/json":
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        else:
            body = payload if isinstance(payload, bytes) else payload.encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    async def _route(self, writer, method, path, query, body) -> None:
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET" and parts == ["healthz"]:
                up = sum(
                    1 for s in self.supervisor.snapshot() if s["state"] == "up"
                )
                await self._respond(
                    writer, 200,
                    {"ok": up > 0, "role": "fleet",
                     "shards_up": up,
                     "shards": len(self.supervisor.shard_ids),
                     "uptime_s": self.telemetry.snapshot()["uptime_s"]},
                )
            elif method == "POST" and parts == ["jobs"]:
                await self._submit_http(writer, body)
            elif method == "GET" and parts == ["jobs"]:
                await self._respond(writer, 200, {"jobs": self.job_snapshots()})
            elif len(parts) >= 2 and parts[0] == "jobs":
                await self._job_route(writer, method, parts[1], parts[2:], query)
            elif method == "GET" and parts == ["fleet"]:
                await self._respond(writer, 200, self.fleet_snapshot())
            elif method == "GET" and parts == ["metrics"]:
                await self._respond(
                    writer, 200, self.telemetry.render_prometheus(),
                    content_type="text/plain; version=0.0.4",
                )
            elif method == "GET" and parts == ["metrics.json"]:
                await self._respond(writer, 200, self.telemetry.snapshot())
            elif method == "POST" and parts == ["shutdown"]:
                await self._respond(writer, 200, {"draining": True})
                self.request_stop()
            else:
                await self._respond(writer, 404, {"error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            self.telemetry.inc("http_errors")
            self.telemetry.log("fleet-http-error", path=path, error=str(exc))
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except (ConnectionError, OSError):
                pass

    async def _submit_http(self, writer, body: bytes) -> None:
        try:
            request = SubmitRequest.from_json(json.loads(body.decode() or "{}"))
        except (ValueError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        try:
            job = self.submit(request)
        except AdmissionError as exc:
            status = 404 if "unknown case" in exc.reason else 429
            await self._respond(writer, status, {"error": exc.reason})
            return
        await self._respond(writer, 202, job.snapshot())

    async def _job_route(self, writer, method, job_id, rest, query) -> None:
        import asyncio

        job = self.job(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if method == "GET" and not rest:
            await self._respond(writer, 200, job.snapshot())
        elif method == "GET" and rest == ["report"]:
            if job.state == "done":
                await self._respond(writer, 200, job.result)
            else:
                await self._respond(
                    writer, 409,
                    {"error": job.error or "not finished", "state": job.state},
                )
        elif method == "GET" and rest == ["events"]:
            since = int(query.get("since", 0) or 0)
            wait_s = min(30.0, float(query.get("wait", 0) or 0))
            deadline = asyncio.get_event_loop().time() + wait_s
            events = job.events_since(since)
            while not events and not job.terminal:
                if asyncio.get_event_loop().time() >= deadline:
                    break
                await asyncio.sleep(0.05)
                events = job.events_since(since)
            await self._respond(
                writer, 200,
                {"state": job.state,
                 "events": [e.to_json() for e in events]},
            )
        elif method == "POST" and rest == ["cancel"]:
            cancelled = self.cancel(job)
            await self._respond(
                writer, 200,
                {"cancelled": cancelled, "state": job.state,
                 "note": None if cancelled
                 else "placed jobs drain on their shard"},
            )
        else:
            await self._respond(writer, 405, {"error": "unsupported"})


class _RemoteFailure(Exception):
    """The shard answered and the job is terminally failed there."""


class _RouterStopping(Exception):
    """The router is shutting down mid-watch; the journal resumes the job."""
