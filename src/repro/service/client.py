"""Thin client for the verification daemon.

Speaks the daemon's JSON-over-HTTP protocol over local TCP or a Unix
domain socket using only the standard library.  Every method maps to one
endpoint; :meth:`ServiceClient.run` composes submit + wait into the shape
CLI tools want.
"""

from __future__ import annotations

import http.client
import json
import socket
import time


class ServiceError(Exception):
    """A daemon-side refusal or failure, with the HTTP status attached."""

    def __init__(self, status: int, reason: str) -> None:
        self.status = status
        self.reason = reason
        super().__init__(f"[{status}] {reason}")


class _UnixHTTPConnection(http.client.HTTPConnection):
    """http.client over an AF_UNIX socket path."""

    def __init__(self, socket_path: str, timeout: float | None = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """One daemon address; connections are per-request (the daemon closes
    after each response)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        socket_path: str | None = None,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(self, method: str, path: str, payload: dict | None = None):
        conn = self._connection()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if "json" in content_type:
                data = json.loads(raw.decode() or "{}")
            else:
                data = raw.decode()
            if response.status >= 400:
                reason = (
                    data.get("error", response.reason)
                    if isinstance(data, dict)
                    else response.reason
                )
                raise ServiceError(response.status, reason)
            return response.status, data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def submit(
        self,
        case: str,
        kwargs: dict | None = None,
        priority: str = "batch",
        deadline_s: float | None = None,
        conflicts: int | None = None,
    ) -> dict:
        payload: dict = {"case": case, "priority": priority}
        if kwargs:
            payload["kwargs"] = kwargs
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if conflicts is not None:
            payload["conflicts"] = conflicts
        return self._request("POST", "/jobs", payload)[1]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")[1]["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")[1]

    def report(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/report")[1]

    def events(self, job_id: str, since: int = 0, wait_s: float = 0.0) -> dict:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait_s}"
        )[1]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")[1]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics.json")[1]

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")[1]

    def shutdown(self, mode: str = "drain") -> dict:
        return self._request("POST", "/shutdown", {"mode": mode})[1]

    # -- composed flows -------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_s: float = 0.1,
        on_event=None,
    ) -> dict:
        """Block until the job is terminal; returns the final job summary.

        ``on_event`` (if given) is called with each
        :class:`~repro.service.protocol.JobEvent` JSON dict as it arrives.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seq = 0
        while True:
            batch = self.events(job_id, since=seq, wait_s=min(5.0, poll_s * 50))
            for event in batch["events"]:
                seq = event["seq"] + 1
                if on_event is not None:
                    on_event(event)
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {status['state']}")
            time.sleep(poll_s)

    def run(
        self,
        case: str,
        kwargs: dict | None = None,
        priority: str = "batch",
        timeout: float | None = None,
        on_event=None,
    ) -> dict:
        """Submit a case, wait for it, and return the full report.

        Raises :class:`ServiceError` if the job failed or was cancelled.
        """
        job = self.submit(case, kwargs=kwargs, priority=priority)
        final = self.wait(job["id"], timeout=timeout, on_event=on_event)
        if final["state"] != "done":
            raise ServiceError(
                409, final.get("error") or f"job ended {final['state']}"
            )
        return self.report(job["id"])
