"""Thin client for the verification daemon and fleet.

Speaks the daemon's JSON-over-HTTP protocol over local TCP or a Unix
domain socket using only the standard library.  Every method maps to one
endpoint; :meth:`ServiceClient.run` composes submit + wait into the shape
CLI tools want.

Failure handling is typed and bounded:

- **timeouts** — connections and reads both carry socket timeouts (a hung
  daemon can no longer block a client forever) and surface as
  :class:`ServiceTimeout`, never as a raw ``socket.timeout``;
- **refusals** — connection refused/reset surfaces as
  :class:`ServiceUnavailable` (both are :class:`ServiceError` subclasses,
  so existing ``except ServiceError`` call sites keep working);
- **retries** — ``retries > 0`` retries failed requests with jittered
  exponential backoff.  Reads of non-idempotent requests (a ``POST``
  whose bytes may already have reached the daemon) are *not* retried —
  only connect-phase failures and idempotent ``GET``\\ s are, so a retry
  can never double-submit a job;
- **deadlines** — a per-request ``deadline_s`` bounds the whole attempt
  loop (backoff sleeps included) against one wall clock.

:class:`FailoverClient` layers hedged failover on top: given several
shard clients and a health predicate (the fleet router wires in its
circuit breakers), a request that cannot be served by one shard moves to
the next healthy one instead of failing.

The ``service.conn`` fault-injection site lives here: with an active
:class:`~repro.resilience.faults.FaultInjector` the client can be made to
drop or half-close connections deterministically, which is how the chaos
harness exercises every retry/failover path.
"""

from __future__ import annotations

import http.client
import random
import socket
import time

import json

from ..resilience import fault_at


class ServiceError(Exception):
    """A daemon-side refusal or failure, with the HTTP status attached."""

    def __init__(self, status: int, reason: str) -> None:
        self.status = status
        self.reason = reason
        super().__init__(f"[{status}] {reason}")


class ServiceTimeout(ServiceError):
    """A connect or read deadline expired talking to the daemon.

    ``phase`` is ``"connect"`` (no request bytes reached the daemon — safe
    to retry anything) or ``"read"`` (the request may have been received —
    only idempotent requests may retry).
    """

    def __init__(self, reason: str, phase: str = "read") -> None:
        self.phase = phase
        super().__init__(504, reason)


class ServiceUnavailable(ServiceError):
    """The daemon could not be reached (refused, reset, gone)."""

    def __init__(self, reason: str, phase: str = "connect") -> None:
        self.phase = phase
        super().__init__(503, reason)


class _TCPConnection(http.client.HTTPConnection):
    """HTTPConnection with split connect/read timeouts."""

    def __init__(
        self, host: str, port: int, connect_timeout: float | None,
        read_timeout: float | None,
    ) -> None:
        super().__init__(host, port, timeout=connect_timeout)
        self._read_timeout = read_timeout

    def connect(self) -> None:
        super().connect()
        self.sock.settimeout(self._read_timeout)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """http.client over an AF_UNIX socket path."""

    def __init__(
        self, socket_path: str, connect_timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> None:
        super().__init__("localhost", timeout=connect_timeout)
        self._socket_path = socket_path
        self._read_timeout = read_timeout

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        sock.settimeout(self._read_timeout)
        self.sock = sock


#: Methods whose read-phase failures are safe to retry.
_IDEMPOTENT = frozenset({"GET", "HEAD"})


class ServiceClient:
    """One daemon address; connections are per-request (the daemon closes
    after each response)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        socket_path: str | None = None,
        timeout: float = 600.0,
        connect_timeout: float = 5.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        jitter: float = 0.5,
        retry_seed: int | None = None,
        deadline_s: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter = min(1.0, max(0.0, jitter))
        self.deadline_s = deadline_s
        self._rng = random.Random(retry_seed)

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    def _connection(self, read_timeout: float) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(
                self.socket_path,
                connect_timeout=self.connect_timeout,
                read_timeout=read_timeout,
            )
        return _TCPConnection(
            self.host, self.port,
            connect_timeout=self.connect_timeout,
            read_timeout=read_timeout,
        )

    # -- one attempt ----------------------------------------------------------

    def _attempt(self, method: str, path: str, payload: dict | None,
                 read_timeout: float):
        fault = fault_at("service.conn")
        if fault == "drop":
            raise ServiceUnavailable("injected connection drop")
        if fault == "halfclose":
            raise ServiceTimeout("injected half-closed connection")
        conn = self._connection(read_timeout)
        try:
            try:
                conn.connect()
            except socket.timeout as exc:
                raise ServiceTimeout(
                    f"connect to {self.address} timed out", phase="connect"
                ) from exc
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                raise ServiceUnavailable(
                    f"cannot reach {self.address}: {exc}"
                ) from exc
            try:
                body = None
                headers = {}
                if payload is not None:
                    body = json.dumps(payload).encode()
                    headers["Content-Type"] = "application/json"
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except socket.timeout as exc:
                raise ServiceTimeout(
                    f"{method} {path} to {self.address} timed out"
                ) from exc
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailable(
                    f"connection to {self.address} lost: {exc}", phase="read"
                ) from exc
            content_type = response.getheader("Content-Type", "")
            if "json" in content_type:
                data = json.loads(raw.decode() or "{}")
            else:
                data = raw.decode()
            if response.status >= 400:
                reason = (
                    data.get("error", response.reason)
                    if isinstance(data, dict)
                    else response.reason
                )
                raise ServiceError(response.status, reason)
            return response.status, data
        finally:
            conn.close()

    # -- the retry loop -------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        return delay * (1.0 - self.jitter * self._rng.random())

    def _request(self, method: str, path: str, payload: dict | None = None,
                 deadline_s: float | None = None):
        budget = deadline_s if deadline_s is not None else self.deadline_s
        deadline = None if budget is None else time.monotonic() + budget
        attempt = 0
        while True:
            read_timeout = self.timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceTimeout(
                        f"deadline exhausted before {method} {path}",
                        phase="connect",
                    )
                read_timeout = min(read_timeout, remaining)
            try:
                return self._attempt(method, path, payload, read_timeout)
            except (ServiceTimeout, ServiceUnavailable) as exc:
                retryable = exc.phase == "connect" or method in _IDEMPOTENT
                if not retryable or attempt >= self.retries:
                    raise
                delay = self._backoff(attempt)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= delay:
                        raise
                time.sleep(delay)
                attempt += 1

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def submit(
        self,
        case: str,
        kwargs: dict | None = None,
        priority: str = "batch",
        deadline_s: float | None = None,
        conflicts: int | None = None,
    ) -> dict:
        payload: dict = {"case": case, "priority": priority}
        if kwargs:
            payload["kwargs"] = kwargs
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if conflicts is not None:
            payload["conflicts"] = conflicts
        return self._request("POST", "/jobs", payload)[1]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")[1]["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")[1]

    def report(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/report")[1]

    def events(self, job_id: str, since: int = 0, wait_s: float = 0.0) -> dict:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait_s}"
        )[1]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")[1]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics.json")[1]

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")[1]

    def fleet(self) -> dict:
        return self._request("GET", "/fleet")[1]

    def shutdown(self, mode: str = "drain") -> dict:
        return self._request("POST", "/shutdown", {"mode": mode})[1]

    # -- composed flows -------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_s: float = 0.1,
        on_event=None,
    ) -> dict:
        """Block until the job is terminal; returns the final job summary.

        ``on_event`` (if given) is called with each
        :class:`~repro.service.protocol.JobEvent` JSON dict as it arrives.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seq = 0
        while True:
            batch = self.events(job_id, since=seq, wait_s=min(5.0, poll_s * 50))
            for event in batch["events"]:
                seq = event["seq"] + 1
                if on_event is not None:
                    on_event(event)
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {status['state']}")
            time.sleep(poll_s)

    def run(
        self,
        case: str,
        kwargs: dict | None = None,
        priority: str = "batch",
        timeout: float | None = None,
        on_event=None,
    ) -> dict:
        """Submit a case, wait for it, and return the full report.

        Raises :class:`ServiceError` if the job failed or was cancelled.
        """
        job = self.submit(case, kwargs=kwargs, priority=priority)
        final = self.wait(job["id"], timeout=timeout, on_event=on_event)
        if final["state"] != "done":
            raise ServiceError(
                409, final.get("error") or f"job ended {final['state']}"
            )
        return self.report(job["id"])


class FailoverClient:
    """Hedged failover over several shard clients.

    ``clients`` maps shard id -> :class:`ServiceClient`; ``health`` is an
    optional predicate (shard id -> bool) consulted *before* each attempt,
    so shards the router reports open-circuited are skipped outright
    instead of timed out against.  Candidates are tried in the given
    preference order (for the fleet router: ring order from the job's
    hash point); the first success wins and its shard id is returned.
    """

    def __init__(self, clients: dict[str, ServiceClient], health=None) -> None:
        if not clients:
            raise ValueError("FailoverClient needs at least one client")
        self.clients = dict(clients)
        self.health = health

    def candidates(self, preference=None) -> list[str]:
        order = [s for s in (preference or self.clients) if s in self.clients]
        if self.health is None:
            return order
        healthy = [s for s in order if self.health(s)]
        # Every shard unhealthy: fall back to trying them all anyway —
        # refusing outright would turn a transient blip into a lost job.
        return healthy or order

    def submit(self, case: str, preference=None, **kwargs):
        """Submit to the first healthy shard; returns ``(shard_id, job)``."""
        last_error: Exception | None = None
        for shard_id in self.candidates(preference):
            try:
                return shard_id, self.clients[shard_id].submit(case, **kwargs)
            except (ServiceTimeout, ServiceUnavailable) as exc:
                last_error = exc
        raise last_error if last_error is not None else ServiceUnavailable(
            "no shard accepted the submission"
        )
