"""Shard lifecycle: spawn, heartbeat, restart with backoff, reabsorb.

A :class:`ShardSupervisor` owns N backend verification daemons ("shards")
behind the fleet router.  Each shard slot holds one live
:class:`ShardHandle` — either a :class:`ProcessShard` (a real
``tools/serve`` subprocess on a Unix socket, SIGKILL-able) or a
:class:`LocalShard` (an in-thread daemon used by tests and the chaos
suite, "killed" by abandoning its state without draining).  The
supervisor's monitor thread probes every shard's ``/healthz`` on a fixed
cadence; ``miss_limit`` consecutive failed heartbeats declare the shard
dead, after which it is restarted with bounded exponential backoff
(``backoff_base_s * 2^attempts``, capped) — the same shape as the budget
ladder and the client's retry backoff.  A shard that then stays up for
``stable_reset_s`` gets its backoff reset; a flapping one climbs the
ladder instead of hot-looping.

Budget reabsorption: the supervisor owns the fleet-wide budget pool (one
:class:`~repro.resilience.budget.Budget` over the service spec) and hands
each shard slot a *partition* of the spec (``spec.partition(n)[i]``).
The pool drains only by **absorbed actual consumption** — the router
feeds each completed job's budget snapshot into :meth:`absorb` — never by
the handed-out partitions, so a dead shard's unconsumed share returns to
the pool *exactly*: remaining = allowance − Σ(absorbed), an identity the
tests assert rather than log.  This is the PR 1/PR 5 absorb arithmetic
lifted one level up.

The ``service.heartbeat`` fault site is consulted inside the monitor
loop: an injected ``delay`` makes that probe count as a miss, which is
how the chaos harness drives spurious-death/restart paths
deterministically.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from ..resilience import Budget, BudgetSpec, fault_at
from .client import ServiceClient, ServiceError

UP = "up"
DOWN = "down"


class ShardHandle:
    """One live backend daemon: address, lifecycle, client factory."""

    shard_id: str

    def start(self, timeout_s: float = 30.0) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        """Abrupt death: no drain, no flush, in-flight jobs lost."""
        raise NotImplementedError

    def make_client(self, **kwargs) -> ServiceClient:
        raise NotImplementedError

    @property
    def pid(self) -> int | None:
        return None


class LocalShard(ShardHandle):
    """An in-process shard: a :class:`VerificationService` on a thread.

    Used by tests and the in-process chaos harness, where spawning real
    subprocesses per seed would dominate the run.  ``kill()`` simulates a
    crash faithfully from the fleet's point of view: the listener closes
    immediately, nothing drains or reports, and the restarted shard has
    an empty job table — every in-flight job is lost exactly as under
    SIGKILL.  (What it cannot simulate is losing the *process*: solver
    state is process-global, so in-process shards share the persistent
    check store.  The production path is :class:`ProcessShard`.)
    """

    def __init__(
        self,
        shard_id: str,
        pool_jobs: int = 1,
        block_jobs: int = 1,
        runners: int = 1,
        cache_dir: str | None = None,
        budget_spec: BudgetSpec | None = None,
        telemetry=None,
    ) -> None:
        self.shard_id = shard_id
        self._config = dict(
            pool_jobs=pool_jobs,
            block_jobs=block_jobs,
            runners=runners,
            cache_dir=cache_dir,
            service_spec=budget_spec,
            telemetry=telemetry,
        )
        self.service = None
        self._thread: threading.Thread | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self, timeout_s: float = 30.0) -> None:
        import asyncio

        from .server import VerificationService

        self.service = VerificationService(
            shard_id=self.shard_id, **self._config
        )
        bound: dict = {}
        ready = threading.Event()

        def on_ready(addr) -> None:
            bound["addr"] = addr
            ready.set()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                self.service.serve(port=0, ready=on_ready)
            ),
            name=f"{self.shard_id}-loop",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError(f"{self.shard_id} never bound its socket")
        self.host, self.port = bound["addr"]

    def stop(self) -> None:
        if self.service is not None:
            self.service.request_stop("drain")
        if self._thread is not None:
            self._thread.join(timeout=30)

    def kill(self) -> None:
        if self.service is not None:
            self.service.request_stop("crash")
        if self._thread is not None:
            self._thread.join(timeout=5)

    def make_client(self, **kwargs) -> ServiceClient:
        return ServiceClient(host=self.host, port=self.port, **kwargs)


class ProcessShard(ShardHandle):
    """A real ``tools/serve`` subprocess on a Unix domain socket.

    The production shard: its death is a process death (``kill()`` sends
    SIGKILL), its warm state lives in its per-shard cache directory so a
    restart under the same slot comes back warm, and its logs land next
    to its socket in the run directory.
    """

    def __init__(
        self,
        shard_id: str,
        run_dir: str,
        cache_dir: str | None = None,
        pool_jobs: int = 1,
        block_jobs: int = 1,
        runners: int = 1,
        budget_spec: BudgetSpec | None = None,
        generation: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.run_dir = run_dir
        self.cache_dir = cache_dir
        self.pool_jobs = pool_jobs
        self.block_jobs = block_jobs
        self.runners = runners
        self.budget_spec = budget_spec
        self.generation = generation
        self.socket_path = os.path.join(
            run_dir, f"{shard_id}-g{generation}.sock"
        )
        self._proc: subprocess.Popen | None = None

    def start(self, timeout_s: float = 30.0) -> None:
        os.makedirs(self.run_dir, exist_ok=True)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        argv = [
            sys.executable, "-m", "repro.tools.serve",
            "--socket", self.socket_path,
            "--jobs", str(self.pool_jobs),
            "--block-jobs", str(self.block_jobs),
            "--runners", str(self.runners),
            "--shard-id", self.shard_id,
        ]
        if self.cache_dir:
            argv += ["--cache-dir", self.cache_dir]
        if self.budget_spec is not None:
            if self.budget_spec.deadline_s is not None:
                argv += ["--deadline", str(self.budget_spec.deadline_s)]
            if self.budget_spec.conflict_allowance is not None:
                argv += ["--conflicts", str(self.budget_spec.conflict_allowance)]
        log_path = os.path.join(
            self.run_dir, f"{self.shard_id}-g{self.generation}.log"
        )
        self._log = open(log_path, "ab")
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            argv, stdout=self._log, stderr=self._log, env=env
        )
        client = self.make_client(
            timeout=2.0, connect_timeout=1.0
        )
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                if client.healthz().get("ok"):
                    return
            except (ServiceError, OSError):
                pass
            if self._proc.poll() is not None:
                raise RuntimeError(
                    f"{self.shard_id} exited {self._proc.returncode} at startup"
                )
            if time.monotonic() >= deadline:
                raise RuntimeError(f"{self.shard_id} never became healthy")
            time.sleep(0.05)

    def stop(self) -> None:
        if self._proc is None:
            return
        if self._proc.poll() is None:
            try:
                self.make_client(timeout=5.0, connect_timeout=1.0).shutdown()
            except (ServiceError, OSError):
                pass
            try:
                self._proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait(timeout=10)
        self._log.close()

    def kill(self) -> None:
        if self._proc is not None and self._proc.poll() is None:
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.wait(timeout=10)

    def make_client(self, **kwargs) -> ServiceClient:
        return ServiceClient(socket_path=self.socket_path, **kwargs)

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None


@dataclass
class ShardSlot:
    """Supervisor-side state of one shard position."""

    index: int
    shard_id: str
    handle: ShardHandle
    budget_spec: BudgetSpec | None
    state: str = UP
    misses: int = 0
    restart_attempts: int = 0
    next_restart_at: float = 0.0
    became_up_at: float = 0.0
    generation: int = 0

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.state,
            "misses": self.misses,
            "restarts": self.restart_attempts,
            "generation": self.generation,
            "pid": self.handle.pid,
        }


class ShardSupervisor:
    """Spawn N shards, watch their heartbeats, restart the dead ones."""

    def __init__(
        self,
        factory,
        shards: int,
        service_spec: BudgetSpec | None = None,
        heartbeat_s: float = 0.15,
        heartbeat_timeout_s: float = 1.0,
        miss_limit: int = 2,
        backoff_base_s: float = 0.2,
        backoff_cap_s: float = 5.0,
        stable_reset_s: float = 10.0,
        telemetry=None,
        clock=time.monotonic,
        on_up=None,
        on_down=None,
    ) -> None:
        """``factory(slot_index, shard_id, generation, budget_spec)`` must
        return an *unstarted* :class:`ShardHandle`; it is called again with
        a bumped generation for every restart."""
        if shards < 1:
            raise ValueError("need at least one shard")
        self.factory = factory
        self.service_spec = service_spec
        self.pool = Budget(service_spec) if service_spec is not None else None
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.miss_limit = max(1, miss_limit)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.stable_reset_s = stable_reset_s
        self.telemetry = telemetry
        self.clock = clock
        self.on_up = on_up
        self.on_down = on_down
        partitions = (
            service_spec.partition(shards)
            if service_spec is not None
            else [None] * shards
        )
        self._lock = threading.Lock()
        self.slots = [
            ShardSlot(
                index=i,
                shard_id=f"shard-{i}",
                handle=factory(i, f"shard-{i}", 0, partitions[i]),
                budget_spec=partitions[i],
            )
            for i in range(shards)
        ]
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for slot in self.slots:
            slot.handle.start()
            slot.state = UP
            slot.became_up_at = self.clock()
        self._stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor", daemon=True
        )
        self._monitor.start()
        self._inc("shards_started", len(self.slots))

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=30)
        for slot in self.slots:
            try:
                slot.handle.stop()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass

    # -- views ----------------------------------------------------------------

    @property
    def shard_ids(self) -> list[str]:
        return [slot.shard_id for slot in self.slots]

    def slot(self, shard_id: str) -> ShardSlot:
        for candidate in self.slots:
            if candidate.shard_id == shard_id:
                return candidate
        raise KeyError(shard_id)

    def is_up(self, shard_id: str) -> bool:
        with self._lock:
            return self.slot(shard_id).state == UP

    def handle(self, shard_id: str) -> ShardHandle:
        with self._lock:
            return self.slot(shard_id).handle

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [slot.snapshot() for slot in self.slots]

    # -- budget pool ----------------------------------------------------------

    def absorb(self, snapshot: dict | None) -> None:
        """Fold one completed job's actual consumption into the pool."""
        if snapshot and self.pool is not None:
            self.pool.absorb(snapshot)

    def pool_remaining(self) -> int | None:
        """allowance − Σ(absorbed): exact, by the absorb arithmetic —
        handed-out shard partitions never drain it, so a dead shard's
        unconsumed share is restored by construction."""
        if self.pool is None:
            return None
        return self.pool.remaining_conflicts()

    # -- chaos hooks ----------------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """Abruptly kill one shard (the chaos harness's SIGKILL)."""
        handle = self.handle(shard_id)
        self._inc("shard_kills")
        self._log("shard-killed", shard=shard_id)
        handle.kill()

    # -- the monitor ----------------------------------------------------------

    def restart_bound_s(self, attempts: int) -> float:
        """The worst-case delay from death to restart *attempt*: the miss
        window plus the backoff rung (tests assert recovery within this
        bound plus startup time)."""
        backoff = min(self.backoff_cap_s, self.backoff_base_s * (2 ** attempts))
        return (self.miss_limit + 1) * (
            self.heartbeat_s + self.heartbeat_timeout_s
        ) + backoff

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            for slot in self.slots:
                try:
                    if slot.state == UP:
                        self._heartbeat(slot)
                    elif self.clock() >= slot.next_restart_at:
                        self._restart(slot)
                except Exception as exc:  # noqa: BLE001 — monitor survives
                    self._log(
                        "supervisor-error", shard=slot.shard_id, error=str(exc)
                    )

    def _heartbeat(self, slot: ShardSlot) -> None:
        delayed = fault_at("service.heartbeat") == "delay"
        healthy = False
        if delayed:
            self._inc("heartbeats_delayed")
        else:
            client = slot.handle.make_client(
                timeout=self.heartbeat_timeout_s,
                connect_timeout=self.heartbeat_timeout_s,
            )
            try:
                healthy = bool(client.healthz().get("ok"))
            except (ServiceError, OSError):
                healthy = False
        with self._lock:
            if healthy:
                slot.misses = 0
                if (
                    slot.restart_attempts
                    and self.clock() - slot.became_up_at >= self.stable_reset_s
                ):
                    slot.restart_attempts = 0
                return
            slot.misses += 1
            if slot.misses < self.miss_limit:
                return
            slot.state = DOWN
            slot.misses = 0
            backoff = min(
                self.backoff_cap_s,
                self.backoff_base_s * (2 ** slot.restart_attempts),
            )
            slot.next_restart_at = self.clock() + backoff
        self._inc("shard_deaths")
        self._log("shard-down", shard=slot.shard_id, backoff_s=backoff)
        try:
            slot.handle.kill()  # reap a half-dead process; no-op if gone
        except Exception:  # noqa: BLE001
            pass
        if self.on_down is not None:
            self.on_down(slot.shard_id)

    def _restart(self, slot: ShardSlot) -> None:
        # Generations advance per *attempt*, not per success, so a failed
        # replacement never reuses its predecessor's socket path or log.
        with self._lock:
            slot.generation += 1
            generation = slot.generation
        try:
            handle = self.factory(
                slot.index, slot.shard_id, generation, slot.budget_spec
            )
            handle.start()
        except Exception as exc:  # noqa: BLE001 — climb the backoff ladder
            with self._lock:
                slot.restart_attempts += 1
                backoff = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** slot.restart_attempts),
                )
                slot.next_restart_at = self.clock() + backoff
            self._inc("shard_restart_failures")
            self._log(
                "shard-restart-failed", shard=slot.shard_id, error=str(exc)
            )
            return
        with self._lock:
            slot.handle = handle
            slot.state = UP
            slot.misses = 0
            slot.restart_attempts += 1
            slot.became_up_at = self.clock()
        self._inc("shard_restarts")
        self._log("shard-restarted", shard=slot.shard_id, generation=generation)
        if self.on_up is not None:
            self.on_up(slot.shard_id)

    # -- telemetry ------------------------------------------------------------

    def _inc(self, name: str, value: float = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.inc(name, value)

    def _log(self, event: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.log(event, **fields)
