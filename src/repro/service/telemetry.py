"""Service telemetry: counters, gauges, latency percentiles, JSON logs.

One :class:`Telemetry` instance per daemon.  Counters are monotonic and
cheap (a dict behind a lock — the daemon's request rates are far below
anything needing sharded atomics); latencies go into a bounded reservoir
from which p50/p95/p99 are computed on demand.  The ``/metrics`` endpoint
renders either Prometheus text exposition or the raw JSON snapshot.

Structured logs are newline-delimited JSON written through
:meth:`Telemetry.log`; every record carries a wall-clock timestamp and an
``event`` name, so ``jq`` is the whole log toolchain.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class Telemetry:
    """Thread-safe counters + latency reservoir + structured logger."""

    #: Reservoir cap: enough for stable tail percentiles at service scale,
    #: small enough to never matter for memory.
    RESERVOIR = 4096

    def __init__(self, log_stream=None, service: str = "repro.service") -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._latencies: list[float] = []
        self._latencies_by_priority: dict[str, list[float]] = {}
        self._started = time.time()
        self._log_stream = log_stream
        self._service = service

    # -- counters and gauges -------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def merge(self, prefix: str, stats: dict) -> None:
        """Fold a per-run stats dict into prefixed counters
        (``solver_stats``'s ``checks`` becomes ``solver_checks`` ...)."""
        with self._lock:
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    name = f"{prefix}_{key}"
                    self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def absorb_counters(self, counters: dict, prefix: str = "") -> None:
        """Fold another telemetry snapshot's counters into this one.

        The fleet router uses this to aggregate shard-reported counters
        (prefixed so ``jobs_completed`` on a shard becomes
        ``shard_jobs_completed`` fleet-side) without ever double-counting
        its own.
        """
        with self._lock:
            for key, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    name = f"{prefix}{key}"
                    self._counters[name] = self._counters.get(name, 0) + value

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._observe(self._latencies, seconds)

    def observe_queue_latency(self, seconds: float, priority: str) -> None:
        """Record end-to-end (submit→done) latency for one priority class.

        Kept separate from :meth:`observe_latency` — the global reservoir
        tracks pure *run* time, while the per-priority reservoirs track
        queue + run time, which is the metric that exposes starvation.
        """
        with self._lock:
            reservoir = self._latencies_by_priority.setdefault(priority, [])
            self._observe(reservoir, seconds)

    def _observe(self, reservoir: list[float], seconds: float) -> None:
        reservoir.append(seconds)
        if len(reservoir) > self.RESERVOIR:
            # Drop the oldest half: keeps the reservoir recent-biased
            # without per-observation randomness.
            del reservoir[: self.RESERVOIR // 2]

    # -- views ---------------------------------------------------------------

    @staticmethod
    def _percentile(sorted_values: list[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(
            len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
        )
        return sorted_values[index]

    @classmethod
    def _latency_block(cls, latencies: list[float]) -> dict:
        latencies = sorted(latencies)
        return {
            "count": len(latencies),
            "p50_s": cls._percentile(latencies, 0.50),
            "p95_s": cls._percentile(latencies, 0.95),
            "p99_s": cls._percentile(latencies, 0.99),
            "max_s": latencies[-1] if latencies else 0.0,
        }

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_s": round(time.time() - self._started, 3),
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "latency": self._latency_block(self._latencies),
                "latency_by_priority": {
                    priority: self._latency_block(reservoir)
                    for priority, reservoir in sorted(
                        self._latencies_by_priority.items()
                    )
                },
            }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters, gauges, latency summary)."""
        snap = self.snapshot()
        lines: list[str] = []

        def emit(name: str, value: float, kind: str) -> None:
            metric = "repro_service_" + name
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {value}")

        emit("uptime_seconds", snap["uptime_s"], "gauge")
        for name, value in snap["counters"].items():
            emit(name + "_total", value, "counter")
        for name, value in snap["gauges"].items():
            emit(name, value, "gauge")
        lat = snap["latency"]
        emit("job_latency_seconds_count", lat["count"], "counter")
        for q in ("p50", "p95", "p99"):
            lines.append(
                "# TYPE repro_service_job_latency_seconds gauge"
                if q == "p50"
                else "# (quantile series)"
            )
            lines.append(
                f'repro_service_job_latency_seconds{{quantile="{q[1:]}"}} '
                f"{lat[q + '_s']}"
            )
        return "\n".join(lines) + "\n"

    # -- structured logging --------------------------------------------------

    def log(self, event: str, **fields) -> None:
        stream = self._log_stream
        if stream is None:
            return
        record = {"ts": time.time(), "service": self._service, "event": event}
        record.update(fields)
        try:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a dead log sink must never take the service down


def stderr_telemetry() -> Telemetry:
    """A telemetry instance logging structured JSON to stderr."""
    return Telemetry(log_stream=sys.stderr)
