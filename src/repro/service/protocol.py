"""The service wire protocol: jobs, states, events, results.

Everything here is plain JSON-able data — the same discipline as the
worker payloads in :mod:`repro.parallel.scheduler`: nothing term- or
model-shaped crosses the socket.  A verification *result* is the full
governed report (outcome lattice verdicts, statistics) plus the proof
certificate exactly as :meth:`repro.logic.proof.Proof.to_json` prints it,
so a client can byte-compare a daemon run against a serial CLI run.

Job lifecycle::

    queued ──> running ──> done
       │           └─────> failed          (infrastructure error)
       └─────────────────> cancelled       (before it started)

``done`` covers every *governed* outcome — a ``done`` job's report may
still say ``unknown`` or ``failed`` on the outcome lattice.  The job-state
``failed`` is reserved for infrastructure problems (the runner itself
crashed); governance guarantees those are rare.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED_STATE = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED_STATE, CANCELLED)

#: Priority classes, best first.  The queue is strict-priority with FIFO
#: within a class; admission control may reject ``bulk`` first under load.
PRIORITIES = ("interactive", "batch", "bulk")

_ids = itertools.count(1)


def _fresh_job_id() -> str:
    return f"job-{next(_ids):06d}"


@dataclass(frozen=True)
class SubmitRequest:
    """A verification request: one case study build + governed verify.

    ``deadline_s``/``conflicts`` tighten (never widen) the per-job budget
    the server derives from its service-wide pool.
    """

    case: str
    kwargs: dict = field(default_factory=dict)
    priority: str = "batch"
    deadline_s: float | None = None
    conflicts: int | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "kwargs": dict(self.kwargs),
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "conflicts": self.conflicts,
        }

    @staticmethod
    def from_json(payload: dict) -> "SubmitRequest":
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        case = payload.get("case")
        if not isinstance(case, str) or not case:
            raise ValueError("'case' must be a non-empty string")
        kwargs = payload.get("kwargs") or {}
        if not isinstance(kwargs, dict):
            raise ValueError("'kwargs' must be an object")
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        conflicts = payload.get("conflicts")
        if conflicts is not None:
            conflicts = int(conflicts)
        return SubmitRequest(
            case=case,
            kwargs=dict(kwargs),
            priority=payload.get("priority", "batch"),
            deadline_s=deadline_s,
            conflicts=conflicts,
        )


@dataclass(frozen=True)
class JobEvent:
    """One progress event; ``seq`` is dense per job, so clients resume
    streams with ``?since=<last seq>`` and never miss or repeat one."""

    seq: int
    ts: float
    kind: str  # queued | started | build-done | block-done | done | failed | cancelled
    data: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind, "data": self.data}


@dataclass
class JobRecord:
    """Server-side state of one job (thread-safe where it must be).

    Runner threads append events and flip states while the asyncio front
    end reads snapshots; every mutation goes through the record's lock.
    """

    request: SubmitRequest
    id: str = field(default_factory=_fresh_job_id)
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    result: dict | None = None
    cancel_requested: bool = False

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[JobEvent] = []
        self.add_event("queued", case=self.request.case)

    # -- events -------------------------------------------------------------

    def add_event(self, kind: str, **data) -> JobEvent:
        with self._lock:
            event = JobEvent(len(self._events), time.time(), kind, data)
            self._events.append(event)
            return event

    def events_since(self, seq: int) -> list[JobEvent]:
        with self._lock:
            return self._events[max(0, seq):]

    @property
    def num_events(self) -> int:
        with self._lock:
            return len(self._events)

    # -- state transitions ---------------------------------------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING
            self.started = time.time()
        self.add_event("started")

    def mark_done(self, result: dict) -> None:
        with self._lock:
            self.state = DONE
            self.finished = time.time()
            self.result = result
        self.add_event("done", outcome=result.get("outcome"))

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self.state = FAILED_STATE
            self.finished = time.time()
            self.error = error
        self.add_event("failed", error=error)

    def mark_cancelled(self, reason: str = "") -> None:
        with self._lock:
            self.state = CANCELLED
            self.finished = time.time()
            if reason:
                self.error = reason
        self.add_event("cancelled", reason=reason)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED_STATE, CANCELLED)

    @property
    def latency_s(self) -> float | None:
        if self.finished is None:
            return None
        return self.finished - self.created

    # -- wire form ----------------------------------------------------------

    def snapshot(self) -> dict:
        """The status view: everything but the (potentially large) result."""
        with self._lock:
            return {
                "id": self.id,
                "case": self.request.case,
                "kwargs": dict(self.request.kwargs),
                "priority": self.request.priority,
                "state": self.state,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "error": self.error,
                "events": len(self._events),
                "outcome": (self.result or {}).get("outcome"),
            }


def encode_result(case, report, checker_line: str, shard_key: str | None = None) -> dict:
    """The JSON result payload for a finished governed run.

    ``certificate`` is the proof's canonical JSON text, unmodified — the
    byte-identity anchor against ``tools/verify --cert-dir``.
    ``shard_key`` (when the daemon computed one) is the stable
    footprint-group token from :func:`repro.analysis.footprint.shard_token`
    that the fleet router uses for cache-affine consistent hashing; it is
    informational and never part of the certificate.
    """
    blocks = {
        f"0x{addr:x}": {
            "outcome": outcome.outcome,
            "reason": outcome.reason,
            "residuals": outcome.residuals,
        }
        for addr, outcome in sorted(report.blocks.items())
    }
    budget = report.budget.snapshot() if report.budget is not None else None
    return {
        "shard_key": shard_key,
        "outcome": report.outcome,
        "ok": report.ok,
        "blocks": blocks,
        "certificate": report.proof.to_json(),
        "checker": checker_line,
        "solver_stats": dict(report.solver_stats),
        "cache_stats": dict(report.cache_stats),
        "schedule_groups": [list(g) for g in report.schedule_groups],
        "budget": budget,
        "instrs": case.asm_line_count,
        "itl_events": case.frontend.total_events,
    }
