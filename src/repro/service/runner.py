"""Job execution: the bridge from queue to the governed pipeline.

A :class:`JobRunner` is one daemon-side worker thread.  It pulls jobs off
the :class:`~repro.service.queue.JobQueue`, runs them through
:func:`~repro.parallel.scheduler.verify_case_parallel` against the
*resident* worker pool, cache, and batcher (this is where the daemon's
whole advantage lives — nothing is rebuilt per job), re-checks the proof
with the independent checker, and publishes the encoded result.

Budget round-trip: the job's partitioned
:class:`~repro.resilience.budget.BudgetSpec` comes from the queue
(:meth:`~repro.service.queue.JobQueue.job_budget_spec`), and whatever the
run *actually consumed* — reported by the merged run budget — is absorbed
back into the service pool on completion.  A job whose workers died
reports only the consumption of the workers that finished; the lost
shares return to the pool untouched.
"""

from __future__ import annotations

import threading
import time
import traceback

from .protocol import JobRecord, encode_result


class JobRunner:
    """One job-execution thread of the daemon."""

    def __init__(self, service, name: str) -> None:
        self.service = service
        self.name = name
        self._thread = threading.Thread(
            target=self._loop, name=name, daemon=True
        )
        self._stop = threading.Event()

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the loop -------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.service.queue.take(timeout=0.2)
            if job is None:
                if self.service.queue.closed:
                    return
                continue
            if job.cancel_requested:
                job.mark_cancelled("cancelled while queued")
                continue
            self.run_job(job)

    # -- shard affinity -------------------------------------------------------

    @staticmethod
    def _shard_key(case_name: str, case) -> str | None:
        """The stable footprint-group token of a built case, for the fleet
        router's cache-affine consistent hashing.  Purely informational:
        any failure to compute it costs affinity, never the job."""
        try:
            from .. import casestudies
            from ..analysis.footprint import footprint_of_trace, shard_token
            from ..parallel.scheduler import pc_for

            module = getattr(casestudies, case_name)
            footprints = [
                footprint_of_trace(trace)
                for _addr, trace in sorted(case.frontend.traces.items())
            ]
            return shard_token(footprints, frozenset({pc_for(module)}))
        except Exception:  # noqa: BLE001 — affinity is best-effort
            return None

    # -- one job --------------------------------------------------------------

    def run_job(self, job: JobRecord) -> None:
        if job.request.case.startswith("cosim:"):
            self.run_cosim_job(job)
            return
        from ..logic.checker import CheckFailure, check_proof
        from ..parallel.scheduler import verify_case_parallel

        service = self.service
        telemetry = service.telemetry
        telemetry.inc("jobs_started")
        telemetry.gauge("queue_depth", service.queue.depth)
        telemetry.log(
            "job-started", job=job.id, case=job.request.case, runner=self.name
        )
        job.mark_running()
        spec = service.queue.job_budget_spec(job)
        t0 = time.perf_counter()

        def progress(addr: int, outcome: str) -> None:
            job.add_event("block-done", addr=f"0x{addr:x}", outcome=outcome)

        try:
            case, report = verify_case_parallel(
                job.request.case,
                dict(job.request.kwargs),
                jobs=service.block_jobs,
                cache=service.cache,
                budget_spec=spec,
                pool=service.pool,
                batcher=service.batcher,
                progress=progress,
            )
            job.add_event(
                "build-done",
                instrs=case.asm_line_count,
                blocks=len(case.specs),
            )
            try:
                check = check_proof(report.proof, expected_blocks=set(case.specs))
                checker_line = str(check)
            except CheckFailure as exc:
                # An invalid certificate can never be served as done/ok.
                job.mark_failed(f"certificate re-check failed: {exc}")
                telemetry.inc("jobs_failed")
                telemetry.log("job-failed", job=job.id, error=str(exc))
                return
            result = encode_result(
                case, report, checker_line,
                shard_key=self._shard_key(job.request.case, case),
            )
        except Exception as exc:  # noqa: BLE001 — runner must survive any job
            detail = f"{type(exc).__name__}: {exc}"
            job.mark_failed(detail)
            telemetry.inc("jobs_failed")
            telemetry.log(
                "job-failed",
                job=job.id,
                error=detail,
                trace=traceback.format_exc(limit=4),
            )
            return
        finally:
            if service.cache is not None:
                service.cache.flush()

        # Fold consumption back into the service pool and telemetry.
        budget_snapshot = (
            report.budget.snapshot() if report.budget is not None else None
        )
        service.queue.absorb(budget_snapshot)
        elapsed = time.perf_counter() - t0
        telemetry.observe_latency(elapsed)
        telemetry.inc("jobs_completed")
        telemetry.inc(f"outcome_{report.outcome}")
        telemetry.merge("solver", report.solver_stats)
        telemetry.merge("cache", report.cache_stats)
        if report.parametric_stats:
            telemetry.merge("parametric", report.parametric_stats)
        if service.cache is not None:
            # The full CacheStats snapshot, not just the hit counters:
            # wellformed_rejects / corrupt_entries make static-analysis
            # evictions observable in the fleet.
            for key, value in service.cache.stats.snapshot().items():
                telemetry.gauge(f"disk_{key}", value)
        job.mark_done(result)
        if job.latency_s is not None:
            telemetry.observe_queue_latency(job.latency_s, job.request.priority)
        telemetry.log(
            "job-done",
            job=job.id,
            case=job.request.case,
            outcome=report.outcome,
            seconds=round(elapsed, 3),
        )

    # -- co-simulation jobs ---------------------------------------------------

    def run_cosim_job(self, job: JobRecord) -> None:
        """One differential co-simulation batch (``cosim:<arch>``).

        These are bulk soak work: no SMT pipeline, no proof checker — just
        the generator + lockstep driver.  Divergence counts feed the
        standing correctness ratchet; the per-priority latency reservoirs
        are what the starvation tests read.
        """
        from ..cosim.driver import run_service_batch

        service = self.service
        telemetry = service.telemetry
        telemetry.inc("jobs_started")
        telemetry.gauge("queue_depth", service.queue.depth)
        telemetry.log(
            "job-started", job=job.id, case=job.request.case, runner=self.name
        )
        job.mark_running()
        t0 = time.perf_counter()
        try:
            arch_name = job.request.case.split(":", 1)[1]
            payload = run_service_batch(arch_name, **dict(job.request.kwargs))
        except Exception as exc:  # noqa: BLE001 — runner must survive any job
            detail = f"{type(exc).__name__}: {exc}"
            job.mark_failed(detail)
            telemetry.inc("jobs_failed")
            telemetry.log(
                "job-failed",
                job=job.id,
                error=detail,
                trace=traceback.format_exc(limit=4),
            )
            return
        elapsed = time.perf_counter() - t0
        telemetry.observe_latency(elapsed)
        telemetry.inc("jobs_completed")
        telemetry.inc(f"outcome_{payload['outcome']}")
        telemetry.inc("cosim_cases", payload["cases"])
        telemetry.inc("cosim_instructions", payload["instructions"])
        telemetry.inc("cosim_divergences", len(payload["divergences"]))
        job.mark_done(payload)
        if job.latency_s is not None:
            telemetry.observe_queue_latency(job.latency_s, job.request.priority)
        telemetry.log(
            "job-done",
            job=job.id,
            case=job.request.case,
            outcome=payload["outcome"],
            seconds=round(elapsed, 3),
        )
