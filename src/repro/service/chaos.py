"""The service-layer chaos harness: seeded fleet-level fault campaigns.

This extends the pipeline's seeded fault injector
(:mod:`repro.resilience.faults`) one layer up: instead of corrupting
solver queries, a campaign kills shards mid-job, drops and half-closes
client connections, delays supervisor heartbeats, and corrupts the job
journal's tail — then asserts the fleet's contract held anyway:

- **every job terminates** — nothing is lost in a dead shard's queue or a
  torn journal record;
- **certificates are byte-identical to a serial run** — chaos is
  restricted to :data:`~repro.resilience.faults.SERVICE_SITES`, so the
  *pipeline* under each shard runs fault-free and determinism does the
  rest;
- **no job runs to completion twice** — the journal's content-hash dedup
  is observable in the router's counters.

Service-site fault counters advance on wall-clock events, so a seed fixes
the fault *distribution*, not an exact schedule (see the discussion in
:mod:`repro.resilience.faults`); campaigns therefore assert invariants,
never event orders.

A campaign drives the router through its Python API rather than HTTP —
deliberately: the ``service.conn`` faults must land on the router's
*dispatch* connections (where retry/failover logic lives), not on the
test's own plumbing.

``LocalShard`` fleets keep a whole campaign in one process, which is what
makes a 25+-seed sweep affordable under pytest; the CI ``chaos-smoke``
job runs the same invariants against real ``ProcessShard`` subprocesses
with ``kill -9``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from ..resilience.faults import SERVICE_SITES, FaultInjector, fault_at, inject
from .fleet import FleetRouter
from .protocol import SubmitRequest
from .supervisor import LocalShard, ShardSupervisor
from .telemetry import Telemetry


def serial_certificate(case_name: str, kwargs: dict | None = None) -> str:
    """The ground truth: the certificate a serial, fault-free, cache-free
    run produces — what every chaos run must match byte for byte."""
    from .. import casestudies
    from ..logic.automation import verify_program
    from ..parallel.config import configured
    from ..parallel.scheduler import pc_for

    module = getattr(casestudies, case_name)
    with configured(jobs=1):
        case = module.build(**(kwargs or {}))
    report = verify_program(case.frontend.traces, case.specs, pc_for(module))
    return report.proof.to_json()


def corrupt_journal_tail(path, kind: str, seed: int = 0) -> int:
    """Damage the journal the way a crash (or lying disk) would: ``truncate``
    chops the final record mid-line; ``garbage`` overwrites its tail bytes
    with seed-derived junk.  Returns the number of bytes damaged.  Only the
    tail is touched — matching the only damage the append-only + fsync
    discipline admits, and exactly what recovery truncates away."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return 0
    last_start = data.rfind(b"\n", 0, len(data) - 1) + 1
    tail_len = len(data) - last_start
    if tail_len <= 1:
        return 0
    cut = last_start + 1 + (seed % max(1, tail_len - 1))
    if kind == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        return len(data) - cut
    junk = bytes((seed * 31 + i * 7 + 13) % 256 for i in range(len(data) - cut))
    with open(path, "r+b") as handle:
        handle.seek(cut)
        handle.write(junk)
    return len(junk)


class ChaosFleet:
    """A LocalShard fleet tuned for fast kill/restart cycles in-process."""

    def __init__(
        self,
        shards: int = 3,
        journal_path=None,
        telemetry: Telemetry | None = None,
        job_timeout_s: float = 300.0,
    ) -> None:
        self.telemetry = telemetry or Telemetry()

        def factory(_slot, shard_id, _generation, budget_spec):
            return LocalShard(
                shard_id,
                pool_jobs=1,
                block_jobs=1,
                runners=1,
                budget_spec=budget_spec,
            )

        self.supervisor = ShardSupervisor(
            factory,
            shards,
            heartbeat_s=0.05,
            heartbeat_timeout_s=0.5,
            miss_limit=2,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
            stable_reset_s=5.0,
            telemetry=self.telemetry,
        )
        self.router = FleetRouter(
            self.supervisor,
            journal_path=journal_path,
            telemetry=self.telemetry,
            poll_s=0.02,
            requeue_delay_s=0.05,
            job_timeout_s=job_timeout_s,
            breaker_kwargs={"failure_threshold": 2, "cooldown_s": 0.1,
                            "max_cooldown_s": 2.0},
            client_kwargs={"timeout": 30.0, "connect_timeout": 1.0},
        )

    def __enter__(self) -> "ChaosFleet":
        self.router.start()
        return self

    def __exit__(self, *exc) -> None:
        self.router.stop()

    def submit(self, case: str, kwargs: dict | None = None):
        return self.router.submit(
            SubmitRequest(case=case, kwargs=dict(kwargs or {}))
        )

    def wait_all(self, jobs, timeout_s: float = 300.0) -> None:
        """Block until every job is terminal; raises on the first that
        is not — a *lost* job is the harness's cardinal failure."""
        deadline = time.monotonic() + timeout_s
        for job in jobs:
            while not job.terminal:
                if time.monotonic() >= deadline:
                    raise AssertionError(
                        f"job {job.id} ({job.request.case}) never terminated: "
                        f"state={job.state} shard={job.shard} "
                        f"attempts={job.attempts}"
                    )
                time.sleep(0.02)


class _KillTicker(threading.Thread):
    """Consults the ``service.shard`` fault site on a fixed cadence and
    kills the next shard (round-robin over kill decisions) when it fires —
    the in-process analogue of a random ``kill -9``."""

    def __init__(self, fleet: ChaosFleet, tick_s: float = 0.1) -> None:
        super().__init__(name="chaos-kill-ticker", daemon=True)
        self.fleet = fleet
        self.tick_s = tick_s
        self.kills = 0
        # NB: not "_stop" — Thread.join() calls its own private _stop().
        self._halt = threading.Event()

    def run(self) -> None:
        shard_ids = self.fleet.supervisor.shard_ids
        while not self._halt.wait(self.tick_s):
            if fault_at("service.shard") != "kill":
                continue
            shard_id = shard_ids[self.kills % len(shard_ids)]
            self.kills += 1
            try:
                if self.fleet.supervisor.is_up(shard_id):
                    self.fleet.supervisor.kill_shard(shard_id)
            except Exception:  # noqa: BLE001 — racing a restart is fine
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5)


@dataclass
class ChaosReport:
    """What one seeded campaign did and whether the contract held."""

    seed: int
    certificates: dict[str, str] = field(default_factory=dict)
    outcomes: dict[str, str] = field(default_factory=dict)
    fault_summary: str = ""
    fault_events: list[tuple[str, str]] = field(default_factory=list)
    shard_kills: int = 0
    journal_damage: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def jobs_executed(self) -> float:
        """Completions actually *run* (journal-served ones excluded)."""
        return self.counters.get("fleet_jobs_completed", 0) - self.counters.get(
            "journal_dedup", 0
        )


def run_campaign(
    seed: int,
    cases,
    shards: int = 3,
    rate: float = 0.12,
    journal_path=None,
    corrupt_tail: str | None = None,
    timeout_s: float = 300.0,
    sites: tuple[str, ...] | None = None,
    max_faults: int | None = None,
) -> ChaosReport:
    """One seeded chaos campaign: submit every case into a LocalShard fleet
    while faults fire, wait for universal termination, and return the
    certificates and counters for the caller's invariant checks.

    ``corrupt_tail`` ("truncate" | "garbage") damages the journal *before*
    the fleet opens it, modelling a crash that tore the previous router's
    final append — the fleet must recover by truncation and still finish
    every journaled job.
    """
    injector = FaultInjector(
        seed=seed,
        rate=rate,
        sites=sites if sites is not None else SERVICE_SITES,
        max_faults=max_faults,
    )
    report = ChaosReport(seed=seed)
    if journal_path is not None and os.path.exists(journal_path):
        kind = corrupt_tail
        if kind is None:
            # Seed-driven: the ``service.journal`` site decides whether the
            # previous router's final append was torn ("truncate") or the
            # disk wrote junk ("garbage").
            with inject(injector):
                kind = fault_at("service.journal")
        if kind:
            report.journal_damage = corrupt_journal_tail(
                journal_path, kind, seed=seed
            )
    fleet = ChaosFleet(shards=shards, journal_path=journal_path)
    with inject(injector):
        ticker = _KillTicker(fleet)
        with fleet:
            ticker.start()
            try:
                jobs = [fleet.submit(case) for case in cases]
                fleet.wait_all(jobs, timeout_s=timeout_s)
            finally:
                ticker.stop()
            # Also drain any journal-replayed jobs from a previous life.
            fleet.wait_all(
                list(fleet.router.jobs.values()), timeout_s=timeout_s
            )
            for job in jobs:
                if job.state == "done":
                    report.certificates[job.request.case] = job.result[
                        "certificate"
                    ]
                report.outcomes[job.request.case] = job.state
            snapshot = fleet.telemetry.snapshot()
            report.counters = dict(snapshot["counters"])
        report.fault_summary = injector.summary()
        report.fault_events = [(e.site, e.kind) for e in injector.log]
        report.shard_kills = ticker.kills
    return report
