"""``repro.service`` — the persistent verification daemon.

Every capability of the pipeline (governed verification, parallel block
workers, the on-disk trace/SMT cache, incremental solver contexts) is
reachable through one-shot CLI runs, but each invocation pays cold-start
for the state the previous run just warmed.  This package keeps that state
resident and serves verification over a local socket:

- :mod:`~repro.service.protocol` — the JSON job model (requests, states,
  events, results) shared by server and client;
- :mod:`~repro.service.queue` — a priority job queue with admission
  control backed by :mod:`repro.resilience` budgets;
- :mod:`~repro.service.batcher` — the cross-job dedup/batching layer:
  identical (model, opcode, assumptions) trace requests — and
  footprint-compatible ones — coalesce onto one in-flight computation
  before dispatch to the resident worker pool;
- :mod:`~repro.service.runner` — job execution against the resident pool,
  with per-job budget partitions absorbed back on completion;
- :mod:`~repro.service.telemetry` — service counters (queue depth, batch
  sizes, dedup hits, latency percentiles) merged with the solver/cache/
  executor statistics, exported via ``/metrics`` and structured JSON logs;
- :mod:`~repro.service.server` — the asyncio front end (submit, status,
  per-block event streams, reports, metrics, graceful drain);
- :mod:`~repro.service.client` — a thin stdlib-only client library used
  by ``tools/submit``, with socket timeouts, jittered-backoff retries,
  per-request deadlines, and hedged shard failover;
- :mod:`~repro.service.supervisor` — shard lifecycle: spawn N backend
  daemons (threads or subprocesses), heartbeat them, restart the dead
  with exponential backoff, and reabsorb their budget shares;
- :mod:`~repro.service.breaker` — per-shard circuit breakers
  (closed/open/half-open) between the router and flapping shards;
- :mod:`~repro.service.journal` — the crash-safe job journal: an
  append-only fsync'd WAL with CRC'd records, truncate-on-open tail
  recovery, and content-hash completion dedup;
- :mod:`~repro.service.fleet` — the fleet router: consistent-hash job
  placement by footprint-group token, failover, journal-backed replay,
  and a fleet-wide HTTP front end speaking the single-daemon API;
- :mod:`~repro.service.chaos` — the seeded service-layer chaos harness
  (shard kills, dropped connections, delayed heartbeats, torn journal
  tails) asserting the fleet's termination/byte-identity/no-double-run
  contract.

The service guarantee: results are byte-identical to ``tools/verify`` —
same certificates, same outcome lattice, same fail-safe degradation when
budgets exhaust.  The daemon — and the fleet above it — only changes
*when and where* work happens (batched, deduplicated, sharded, retried,
against warm state), never *what* is computed.
"""

from .batcher import TraceBatcher
from .breaker import CircuitBreaker
from .client import (
    FailoverClient,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from .fleet import FleetJob, FleetRouter, HashRing, job_content_hash
from .journal import JobJournal
from .protocol import (
    CANCELLED,
    DONE,
    FAILED_STATE,
    JOB_STATES,
    PRIORITIES,
    QUEUED,
    RUNNING,
    JobEvent,
    JobRecord,
    SubmitRequest,
)
from .queue import AdmissionError, JobQueue
from .server import VerificationService
from .supervisor import (
    LocalShard,
    ProcessShard,
    ShardHandle,
    ShardSupervisor,
)
from .telemetry import Telemetry

__all__ = [
    "AdmissionError", "CANCELLED", "CircuitBreaker", "DONE", "FAILED_STATE",
    "FailoverClient", "FleetJob", "FleetRouter", "HashRing", "JOB_STATES",
    "JobEvent", "JobJournal", "JobQueue", "JobRecord", "LocalShard",
    "PRIORITIES", "ProcessShard", "QUEUED", "RUNNING", "ServiceClient",
    "ServiceError", "ServiceTimeout", "ServiceUnavailable", "ShardHandle",
    "ShardSupervisor", "SubmitRequest", "Telemetry", "TraceBatcher",
    "VerificationService", "job_content_hash",
]
