"""``repro.service`` — the persistent verification daemon.

Every capability of the pipeline (governed verification, parallel block
workers, the on-disk trace/SMT cache, incremental solver contexts) is
reachable through one-shot CLI runs, but each invocation pays cold-start
for the state the previous run just warmed.  This package keeps that state
resident and serves verification over a local socket:

- :mod:`~repro.service.protocol` — the JSON job model (requests, states,
  events, results) shared by server and client;
- :mod:`~repro.service.queue` — a priority job queue with admission
  control backed by :mod:`repro.resilience` budgets;
- :mod:`~repro.service.batcher` — the cross-job dedup/batching layer:
  identical (model, opcode, assumptions) trace requests — and
  footprint-compatible ones — coalesce onto one in-flight computation
  before dispatch to the resident worker pool;
- :mod:`~repro.service.runner` — job execution against the resident pool,
  with per-job budget partitions absorbed back on completion;
- :mod:`~repro.service.telemetry` — service counters (queue depth, batch
  sizes, dedup hits, latency percentiles) merged with the solver/cache/
  executor statistics, exported via ``/metrics`` and structured JSON logs;
- :mod:`~repro.service.server` — the asyncio front end (submit, status,
  per-block event streams, reports, metrics, graceful drain);
- :mod:`~repro.service.client` — a thin stdlib-only client library used
  by ``tools/submit``.

The service guarantee: results are byte-identical to ``tools/verify`` —
same certificates, same outcome lattice, same fail-safe degradation when
budgets exhaust.  The daemon only changes *when* work happens (batched,
deduplicated, against warm state), never *what* is computed.
"""

from .batcher import TraceBatcher
from .client import ServiceClient, ServiceError
from .protocol import (
    CANCELLED,
    DONE,
    FAILED_STATE,
    JOB_STATES,
    PRIORITIES,
    QUEUED,
    RUNNING,
    JobEvent,
    JobRecord,
    SubmitRequest,
)
from .queue import AdmissionError, JobQueue
from .server import VerificationService
from .telemetry import Telemetry

__all__ = [
    "AdmissionError", "CANCELLED", "DONE", "FAILED_STATE", "JOB_STATES",
    "JobEvent", "JobQueue", "JobRecord", "PRIORITIES", "QUEUED", "RUNNING",
    "ServiceClient", "ServiceError", "SubmitRequest", "Telemetry",
    "TraceBatcher", "VerificationService",
]
