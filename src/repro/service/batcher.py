"""Cross-job trace-request batching and deduplication.

Binary-verification traffic arrives as many small per-opcode requests, and
concurrent jobs overlap heavily: two submissions of the same program, or
two programs sharing instructions under the same system configuration,
want the *same* Isla runs.  The batcher is a single-flight layer in front
of the resident :class:`~repro.parallel.scheduler.WorkerPool`:

- every per-opcode request is keyed by its content — the exact
  (model, opcode, assumptions, solver mode) payload, or, when the on-disk
  footprint index already knows the opcode's register read set, the
  *footprint-coarsened* key (assumptions restricted to the read set), so
  requests differing only in irrelevant assumptions coalesce too;
- the first request for a key becomes the *leader* and is queued for
  dispatch; followers subscribe to the leader's future (``dedup_hits``);
- a dispatcher thread collects queued leaders for a short window
  (``window_s``) and ships them to the pool as one batch — fewer, larger
  ``map_tasks`` calls, warm worker processes.

Identity guarantee: the computation dispatched for a key is byte-for-byte
the one ``generate_traces_parallel`` would dispatch (same worker function,
same payload codec), and results are parsed back through the same path, so
serving through the batcher cannot change any result.  Followers observe
the leader's metrics with ``cached=True`` semantics only when the leader
itself was served from cache; otherwise they share the leader's metrics —
exactly what a same-process disk-cache hit would report.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import threading
import time

from ..isla.assumptions import Assumptions
from ..parallel.scheduler import (
    TaskFailure,
    _assumptions_payload,
    _model_spec,
    _opcode_payload,
    _solver_mode_payload,
    _trace_worker,
)


class TraceBatcher:
    """Single-flight dedup + windowed batch dispatch for Isla runs."""

    def __init__(
        self,
        pool=None,
        cache=None,
        window_s: float = 0.01,
        max_batch: int = 32,
        telemetry=None,
    ) -> None:
        self.pool = pool
        self.cache = cache
        self.window_s = window_s
        self.max_batch = max(1, max_batch)
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        #: key -> Future for the in-flight leader computation.
        self._inflight: dict[str, concurrent.futures.Future] = {}
        #: leaders awaiting dispatch: (key, payload).
        self._queue: list[tuple[str, dict]] = []
        self._closed = False
        self._dispatcher: threading.Thread | None = None
        # The ITL parser interns into a process-wide table; serialise
        # parsing so concurrent job threads cannot race it.
        self._parse_lock = threading.Lock()

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def _exact_key(payload: dict) -> str:
        body = json.dumps(
            {
                "model": payload["model"],
                "opcode": payload["opcode"],
                "assumptions": payload["assumptions"],
                "solver_mode": payload["solver_mode"],
            },
            sort_keys=True,
        )
        return "x:" + hashlib.sha256(body.encode()).hexdigest()

    def _dedup_key(self, payload: dict, model, opcode, assumptions) -> str:
        """The coalescing key: footprint-coarse when the index knows the
        opcode's read set, exact otherwise."""
        if self.cache is not None:
            from ..cache.keys import coarse_trace_key, footprint_index_key
            from ..itl.events import Reg

            reg_names = self.cache.load_footprint(
                footprint_index_key(model, opcode)
            )
            if reg_names is not None:
                read_regs = frozenset(Reg.parse(name) for name in reg_names)
                mode = json.dumps(payload["solver_mode"], sort_keys=True)
                return "c:" + hashlib.sha256(
                    (
                        coarse_trace_key(model, opcode, assumptions, read_regs)
                        + mode
                    ).encode()
                ).hexdigest()
        return self._exact_key(payload)

    # -- the dispatcher ------------------------------------------------------

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="trace-batcher", daemon=True
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    self._wakeup.wait(timeout=0.5)
                if self._closed and not self._queue:
                    return
            # Collection window: let concurrent jobs contribute to the
            # batch before dispatch.  Outside the lock on purpose.
            if self.window_s > 0:
                time.sleep(self.window_s)
            with self._lock:
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[tuple[str, dict]]) -> None:
        payloads = [payload for _key, payload in batch]
        if self.telemetry is not None:
            self.telemetry.inc("batches")
            self.telemetry.inc("batched_requests", len(batch))
            self.telemetry.gauge("last_batch_size", len(batch))
        try:
            if self.pool is not None:
                raw = self.pool.map_tasks_graceful(_trace_worker, payloads)
            else:
                raw = []
                for payload in payloads:
                    try:
                        raw.append(_trace_worker(payload))
                    except Exception as exc:  # noqa: BLE001 — fail-soft
                        raw.append(TaskFailure(f"{type(exc).__name__}: {exc}"))
        except Exception as exc:  # noqa: BLE001 — dispatch itself failed
            raw = [TaskFailure(f"{type(exc).__name__}: {exc}")] * len(batch)
        for (key, _payload), item in zip(batch, raw):
            with self._lock:
                future = self._inflight.pop(key, None)
            if future is None:  # pragma: no cover - defensive
                continue
            if isinstance(item, TaskFailure):
                future.set_exception(RuntimeError(item.reason))
            else:
                future.set_result(item)

    # -- the public entry point ----------------------------------------------

    def generate(self, model, image, default_assumptions=None, per_address=None):
        """Run Isla on every opcode of the image through the dedup layer.

        Drop-in for the frontend's serial loop and for
        ``generate_traces_parallel``: returns an identical
        :class:`~repro.frontend.program.FrontendResult`.
        """
        from ..cache.store import _sort_from_text
        from ..frontend.program import FrontendResult
        from ..isla.executor import IslaResult
        from ..itl.parser import parse_trace
        from ..smt import builder as B

        per_address = per_address or {}
        addrs = sorted(image.opcodes)
        cache_dir = str(self.cache.root) if self.cache is not None else None
        if self.cache is not None:
            self.cache.flush()  # workers read the shared log; no leftovers
        mode_payload = _solver_mode_payload()

        subscriptions: list[tuple[int, concurrent.futures.Future]] = []
        for addr in addrs:
            assumptions = (default_assumptions or Assumptions()).merged_with(
                per_address.get(addr)
            )
            payload = {
                "addr": addr,
                "model": _model_spec(model),
                "opcode": _opcode_payload(image.opcodes[addr]),
                "assumptions": _assumptions_payload(model, assumptions),
                "cache_dir": cache_dir,
                "solver_mode": mode_payload,
            }
            opcode = image.opcodes[addr]
            key = self._dedup_key(payload, model, opcode, assumptions)
            if self.telemetry is not None:
                self.telemetry.inc("trace_requests")
            with self._lock:
                future = self._inflight.get(key)
                if future is not None:
                    if self.telemetry is not None:
                        self.telemetry.inc("dedup_hits")
                        if key.startswith("c:"):
                            self.telemetry.inc("coarse_dedup_hits")
                else:
                    future = concurrent.futures.Future()
                    self._inflight[key] = future
                    self._queue.append((key, payload))
                    self._ensure_dispatcher()
                    self._wakeup.notify()
            subscriptions.append((addr, future))

        traces = {}
        results = {}
        parametric_stats: dict[str, int] = {}
        # Family counters are summed once per *distinct* leader future:
        # followers share the leader's result object, and double-counting a
        # deduplicated computation would inflate the hit rate.
        counted: set[int] = set()
        for addr, future in subscriptions:
            item = future.result()
            with self._parse_lock:
                env = {
                    name: B.var(name, _sort_from_text(sort_text))
                    for name, sort_text in item["extern"]
                }
                trace = parse_trace(item["trace"], env=env)
            traces[addr] = trace
            results[addr] = IslaResult(
                trace,
                paths=item["paths"],
                model_calls=item["model_calls"],
                model_steps=item["model_steps"],
                solver_checks=item["solver_checks"],
                checks_skipped=item.get("checks_skipped", 0),
                exhausted=None,
                cached=item["cached"],
                parametric=item.get("parametric", False),
            )
            if id(future) not in counted:
                counted.add(id(future))
                for stat, value in item.get("parametric_stats", {}).items():
                    parametric_stats[stat] = parametric_stats.get(stat, 0) + value
        return FrontendResult(traces, results, parametric_stats=parametric_stats)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)

    def __enter__(self) -> "TraceBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
