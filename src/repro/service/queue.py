"""The job queue: priorities, admission control, cancellation.

Admission is governed by :mod:`repro.resilience` budgets, the same
machinery that governs a single run: the daemon may be given a
*service-wide* :class:`~repro.resilience.budget.BudgetSpec` whose conflict
allowance is a consumable pool.  Each admitted job is handed a partition
of the remaining pool (divided by the runner concurrency, exactly the
:meth:`BudgetSpec.partition` rule), and the job's actual consumption is
absorbed back when it completes — so the pool drains by what was *used*,
not by what was handed out, and a dead worker's unconsumed share returns
to the pool for free.  When the pool is spent, new jobs are rejected at
submission time (fail-fast) rather than admitted to starve.

The queue itself is strict-priority (``interactive`` > ``batch`` >
``bulk``) with FIFO order within a class, plus a depth cap.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from ..resilience import Budget, BudgetSpec
from .protocol import PRIORITIES, QUEUED, JobRecord


class AdmissionError(Exception):
    """A job was refused at the door; ``reason`` is wire-friendly."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


class JobQueue:
    """Priority queue + admission control for :class:`JobRecord` jobs."""

    def __init__(
        self,
        max_depth: int = 64,
        service_spec: BudgetSpec | None = None,
        shares: int = 2,
    ) -> None:
        self.max_depth = max_depth
        #: Live consumption against the service-wide pool (None = ungoverned).
        self.service_budget = (
            Budget(service_spec) if service_spec is not None else None
        )
        self.shares = max(1, shares)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, JobRecord]] = []
        self._seq = itertools.count()
        self._closed = False

    # -- admission -----------------------------------------------------------

    def submit(self, job: JobRecord) -> None:
        """Admit a job or raise :class:`AdmissionError` (queue full, pool
        spent, or the queue is draining)."""
        with self._lock:
            if self._closed:
                raise AdmissionError("service is draining")
            if len(self._heap) >= self.max_depth:
                raise AdmissionError(f"queue full ({self.max_depth} jobs)")
            if (
                self.service_budget is not None
                and (self.service_budget.remaining_conflicts() or 0) <= 0
            ):
                raise AdmissionError("service conflict budget exhausted")
            rank = PRIORITIES.index(job.request.priority)
            heapq.heappush(self._heap, (rank, next(self._seq), job))
            self._available.notify()

    # -- per-job budget partitions -------------------------------------------

    def job_budget_spec(self, job: JobRecord) -> BudgetSpec | None:
        """The budget partition handed to one admitted job.

        The service pool's *remaining* conflicts are divided by the runner
        concurrency (first share — deterministic and conservative: a lone
        job on an idle service still leaves headroom for ``shares - 1``
        more).  A request's own ``deadline_s``/``conflicts`` can only
        tighten the result.
        """
        from dataclasses import replace

        spec: BudgetSpec | None = None
        if self.service_budget is not None:
            remaining = self.service_budget.remaining_conflicts()
            base = self.service_budget.spec
            if remaining is not None:
                share = replace(base, conflict_allowance=remaining)
                spec = share.partition(self.shares)[0]
            else:
                spec = base
        request = job.request
        if request.deadline_s is not None or request.conflicts is not None:
            spec = spec or BudgetSpec()
            deadline = spec.deadline_s
            if request.deadline_s is not None:
                deadline = (
                    request.deadline_s
                    if deadline is None
                    else min(deadline, request.deadline_s)
                )
            conflicts = spec.conflict_allowance
            if request.conflicts is not None:
                conflicts = (
                    request.conflicts
                    if conflicts is None
                    else min(conflicts, request.conflicts)
                )
            spec = replace(spec, deadline_s=deadline, conflict_allowance=conflicts)
        return spec

    def absorb(self, snapshot: dict | None) -> None:
        """Fold a completed job's budget consumption back into the pool."""
        if snapshot and self.service_budget is not None:
            self.service_budget.absorb(snapshot)

    def pool_remaining(self) -> int | None:
        """The service pool's remaining conflict total (None = ungoverned).

        The pool drains only by *absorbed* consumption, never by handed-out
        partitions, so this is exactly ``allowance - Σ absorbed`` — the
        conservation quantity the admission-storm and shard-death tests
        assert on.
        """
        if self.service_budget is None:
            return None
        return self.service_budget.remaining_conflicts()

    # -- consumption ----------------------------------------------------------

    def take(self, timeout: float | None = None) -> JobRecord | None:
        """Pop the best queued job, skipping ones cancelled while queued."""
        with self._lock:
            deadline = None
            while True:
                while self._heap:
                    _rank, _seq, job = heapq.heappop(self._heap)
                    if job.state == QUEUED and not job.cancel_requested:
                        return job
                    if job.state == QUEUED:
                        job.mark_cancelled("cancelled while queued")
                if self._closed:
                    return None
                if timeout is not None:
                    if deadline is None:
                        deadline = time.monotonic() + timeout
                        remaining = timeout
                    else:
                        remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._available.wait(timeout=remaining)
                else:
                    self._available.wait()

    def cancel(self, job: JobRecord) -> bool:
        """Request cancellation; returns True when the job was still queued
        (it will be skipped by :meth:`take` and marked cancelled).  A
        running job only gets the request flag — the runner drains it."""
        with self._lock:
            job.cancel_requested = True
            return job.state == QUEUED

    # -- lifecycle ------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return sum(1 for _r, _s, j in self._heap if j.state == QUEUED)

    def drain(self) -> list[JobRecord]:
        """Close admission and return (cancelling) every queued job."""
        with self._lock:
            self._closed = True
            dropped = []
            while self._heap:
                _rank, _seq, job = heapq.heappop(self._heap)
                if job.state == QUEUED:
                    job.mark_cancelled("service draining")
                    dropped.append(job)
            self._available.notify_all()
            return dropped

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
