"""The crash-safe job journal: an append-only, fsync'd write-ahead log.

The fleet router journals every accepted job *before* acknowledging it and
every completion *with* its full result, so a router crash loses nothing:
on restart, accepted-but-unfinished jobs are resubmitted to the surviving
shards and finished jobs are served straight from their journaled results.
Deduplication is by **content hash** (the canonical digest of the request
payload), so replay can never run a job to completion twice — a pending
record whose hash already has a ``done`` record is satisfied from the
journal instead of being re-executed.

Record format — one JSON object per line::

    {"crc": <crc32>, "kind": "accept"|"done"|"failed"|"cancelled",
     "seq": <n>, ...payload}\\n

``crc`` is the CRC-32 of the record serialised *without* the crc field
(canonical ``sort_keys`` JSON), and ``seq`` is dense from 0, so a reader
can tell a torn or bit-rotted record from a good one without trusting the
JSON parser alone.  Appends go through one file descriptor opened with
``O_APPEND`` and are fsync'd before :meth:`JobJournal.append` returns —
an acknowledged record survives a kill -9 of the router and (modulo disk
lies) a power cut.

Recovery discipline: records are read in order and validation stops at
the first record that fails to parse, fails its CRC, or breaks the seq
chain; the file is truncated at that byte offset.  Only the *tail* can be
torn under the append-only + fsync discipline, so truncation never drops
an acknowledged record — it removes exactly the garbage a crash mid-append
(or the chaos harness) left behind.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

ACCEPT = "accept"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

KINDS = (ACCEPT, DONE, FAILED, CANCELLED)

#: Kinds that terminate a journaled job; anything accepted without one of
#: these is *pending* and must be resubmitted on replay.
TERMINAL_KINDS = (DONE, FAILED, CANCELLED)


def _checksum(record: dict) -> int:
    body = json.dumps(record, sort_keys=True).encode()
    return zlib.crc32(body) & 0xFFFFFFFF


@dataclass
class JournalStats:
    records_recovered: int = 0
    records_appended: int = 0
    truncated_bytes: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class Replay:
    """What recovery found: jobs to resubmit and completions to reuse."""

    #: job id -> accept record, in acceptance order, *not* yet terminal.
    pending: dict[str, dict] = field(default_factory=dict)
    #: content hash -> terminal ``done`` record (first completion wins —
    #: later duplicates carry the identical deterministic result).
    completed: dict[str, dict] = field(default_factory=dict)
    #: job id -> terminal record of any kind (done/failed/cancelled).
    terminal: dict[str, dict] = field(default_factory=dict)


class JobJournal:
    """One append-only journal file plus its recovered state."""

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.stats = JournalStats()
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records = self._recover()
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._seq = len(self._records)
        self._fsync_dir()

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> list[dict]:
        """Load every valid record; truncate the file at the first bad one."""
        try:
            data = self.path.read_bytes()
        except OSError:
            return []
        records: list[dict] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # dangling partial record: torn final append
            line = data[offset:newline]
            record = self._validate(line, expect_seq=len(records))
            if record is None:
                break  # corrupt record: everything from here is suspect
            records.append(record)
            offset = newline + 1
        if offset < len(data):
            self.stats.truncated_bytes = len(data) - offset
            self._truncate(offset)
        self.stats.records_recovered = len(records)
        return records

    @staticmethod
    def _validate(line: bytes, expect_seq: int) -> dict | None:
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        crc = record.pop("crc", None)
        if crc != _checksum(record) or record.get("seq") != expect_seq:
            return None
        if record.get("kind") not in KINDS:
            return None
        return record

    def _truncate(self, offset: int) -> None:
        try:
            fd = os.open(self.path, os.O_WRONLY)
        except OSError:
            return
        try:
            os.ftruncate(fd, offset)
            if self.fsync:
                os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _fsync_dir(self) -> None:
        """Durably record the journal's existence in its directory."""
        if not self.fsync:
            return
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    # -- appending ------------------------------------------------------------

    def append(self, kind: str, **fields) -> dict:
        """Durably append one record; returns it (with seq and crc)."""
        if kind not in KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        with self._lock:
            record = {"kind": kind, "seq": self._seq, **fields}
            record["crc"] = _checksum(
                {k: v for k, v in record.items() if k != "crc"}
            )
            line = json.dumps(record, sort_keys=True).encode() + b"\n"
            view = memoryview(line)
            while view:
                try:
                    written = os.write(self._fd, view)
                except InterruptedError:
                    continue
                view = view[written:]
            if self.fsync:
                os.fsync(self._fd)
            self._seq += 1
            self._records.append(record)
            self.stats.records_appended += 1
            return record

    # -- views ----------------------------------------------------------------

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def replay(self) -> Replay:
        """Fold the recovered records into resubmission/dedup state."""
        replay = Replay()
        with self._lock:
            records = list(self._records)
        for record in records:
            kind = record["kind"]
            job_id = record.get("job")
            if kind == ACCEPT and job_id is not None:
                replay.pending[job_id] = record
            elif kind in TERMINAL_KINDS and job_id is not None:
                replay.pending.pop(job_id, None)
                replay.terminal[job_id] = record
                if kind == DONE:
                    content = record.get("hash")
                    if content is not None and content not in replay.completed:
                        replay.completed[content] = record
        return replay

    def close(self) -> None:
        with self._lock:
            try:
                os.close(self._fd)
            except OSError:
                pass

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
