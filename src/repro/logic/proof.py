"""Proof objects.

The automation does not just answer yes/no: every rule application is
recorded as a :class:`ProofStep`, including the side conditions it
discharged (each a boolean term together with the pure assumptions it was
proved under).  The resulting :class:`Proof` is machine-checkable: the
independent checker (:mod:`repro.logic.checker`) replays every side
condition against a fresh solver, playing the role Coq's kernel plays for
the paper's Iris proofs (see DESIGN.md for the TCB discussion).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..resilience.outcome import ResidualObligation
from ..smt.smtlib import term_to_sexpr
from ..smt.sorts import BitVecSort
from ..smt.terms import Term


@dataclass(frozen=True)
class SideCondition:
    """A validity obligation: ``assumptions ⊨ goal``."""

    assumptions: tuple[Term, ...]
    goal: Term
    description: str


@dataclass(frozen=True)
class ProofStep:
    """One rule application of the Islaris logic."""

    rule: str  # e.g. "hoare-read-reg", "hoare-cases", "instr-pre-intro"
    detail: str  # human-readable event/target description
    block: int  # block address being verified
    path: tuple[int, ...]  # Cases branch indices leading to this step
    side_conditions: tuple[SideCondition, ...] = ()


@dataclass
class Proof:
    """A (possibly partial) verification certificate for a program.

    A fully verified run has every spec'd block in ``blocks_verified`` and
    no residual obligations.  Under resource governance a block may instead
    complete *degraded*: its rule skeleton is recorded, but side conditions
    the solver could not decide are parked in ``residual_obligations`` and
    the block's verdict lives in ``outcomes`` — the certificate then proves
    the program **modulo** those residuals, never more.
    """

    steps: list[ProofStep] = field(default_factory=list)
    blocks_verified: list[int] = field(default_factory=list)
    residual_obligations: list[ResidualObligation] = field(default_factory=list)
    outcomes: dict[int, str] = field(default_factory=dict)

    def add(self, step: ProofStep) -> None:
        self.steps.append(step)

    def residuals_for(self, block: int) -> list[ResidualObligation]:
        return [r for r in self.residual_obligations if r.block == block]

    @property
    def num_side_conditions(self) -> int:
        return sum(len(s.side_conditions) for s in self.steps)

    def rules_used(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.steps:
            out[s.rule] = out.get(s.rule, 0) + 1
        return out

    def summary(self) -> str:
        rules = ", ".join(f"{k}×{v}" for k, v in sorted(self.rules_used().items()))
        return (
            f"{len(self.steps)} steps over {len(self.blocks_verified)} blocks, "
            f"{self.num_side_conditions} side conditions [{rules}]"
        )

    # -- serialisation ------------------------------------------------------
    #
    # Proof objects serialise to JSON so the checker can run out-of-process
    # (the "ship the certificate, check it elsewhere" discipline of
    # foundational tools).  Terms are serialised in SMT-LIB concrete syntax
    # together with the sorts of their free variables.

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "blocks_verified": self.blocks_verified,
            "steps": [_step_to_dict(s) for s in self.steps],
        }
        # Governance extensions are optional keys so version-1 consumers
        # (and older certificates) keep round-tripping.
        if self.residual_obligations:
            payload["residual_obligations"] = [
                _residual_to_dict(r) for r in self.residual_obligations
            ]
        if self.outcomes:
            payload["outcomes"] = {str(a): o for a, o in self.outcomes.items()}
        return json.dumps(payload)

    @staticmethod
    def from_json(text: str) -> "Proof":
        data = json.loads(text)
        if data.get("version") != 1:
            raise ValueError("unsupported proof format version")
        proof = Proof()
        proof.blocks_verified = list(data["blocks_verified"])
        for item in data["steps"]:
            proof.add(_step_from_dict(item))
        for item in data.get("residual_obligations", []):
            proof.residual_obligations.append(_residual_from_dict(item))
        proof.outcomes = {
            int(addr): outcome for addr, outcome in data.get("outcomes", {}).items()
        }
        return proof


def _sort_text(sort) -> str:
    if isinstance(sort, BitVecSort):
        return f"bv{sort.width}"
    return "bool"


def _term_record(term: Term) -> dict:
    # Sorted by name: frozenset iteration order follows object-identity
    # hashes, which depend on the process's allocation history — fresh CLI
    # runs happen to agree, but a resident daemon worker that served other
    # jobs first would emit the same certificate with differently-ordered
    # vars.  Certificates must be canonical bytes.
    return {
        "sexpr": term_to_sexpr(term),
        "vars": {
            v.name: _sort_text(v.sort)
            for v in sorted(term.free_vars(), key=lambda v: v.name)
        },
    }


def _term_from_record(record: dict) -> Term:
    from ..smt import builder as B
    from ..smt.itl_parse_compat import TermParser, parse_sort_text, read_term_tree

    env = {
        name: B.var(name, parse_sort_text(sort_text))
        for name, sort_text in record["vars"].items()
    }
    return TermParser(env).parse(read_term_tree(record["sexpr"]))


def _step_to_dict(step: ProofStep) -> dict:
    return {
        "rule": step.rule,
        "detail": step.detail,
        "block": step.block,
        "path": list(step.path),
        "side_conditions": [
            {
                "assumptions": [_term_record(a) for a in sc.assumptions],
                "goal": _term_record(sc.goal),
                "description": sc.description,
            }
            for sc in step.side_conditions
        ],
    }


def _residual_to_dict(residual: ResidualObligation) -> dict:
    return {
        "block": residual.block,
        "description": residual.description,
        "goal": _term_record(residual.goal),
        "assumptions": [_term_record(a) for a in residual.assumptions],
        "reason": residual.reason,
    }


def _residual_from_dict(item: dict) -> ResidualObligation:
    return ResidualObligation(
        block=item["block"],
        description=item["description"],
        goal=_term_from_record(item["goal"]),
        assumptions=tuple(_term_from_record(a) for a in item["assumptions"]),
        reason=item["reason"],
    )


def _step_from_dict(item: dict) -> ProofStep:
    conditions = tuple(
        SideCondition(
            tuple(_term_from_record(a) for a in sc["assumptions"]),
            _term_from_record(sc["goal"]),
            sc["description"],
        )
        for sc in item["side_conditions"]
    )
    return ProofStep(
        item["rule"], item["detail"], item["block"], tuple(item["path"]), conditions
    )
