"""Incorrectness specs: under-approximate ``reaches_bad_state`` refutations.

Where the Islaris separation logic proves *no* execution goes wrong, an
incorrectness spec proves the opposite polarity: **some** execution from a
given start state reaches a bad state.  In the under-approximate reading
(O'Hearn's incorrectness logic, IsaBIL's refutation idiom), a proof of
``reaches_bad_state`` is simply a concrete witness execution — so the
proof object is a :class:`RefutationCertificate` recording the start
state, program, step count, and the bad-state predicate.

Trust story mirrors the co-sim design: the *finder* may be anything —
here the fast co-sim interpreter hunts for a witness — but the
certificate is only accepted after :func:`check_refutation` replays it
against the authoritative concrete mini-Sail model (``step_concrete``),
the same semantics the proof stack's refinement theorem is stated over.
A certificate the authoritative model does not confirm is rejected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..cosim.archs import COSIM_ARCHS
from ..cosim.interp import CosimDomainError, CosimUnsupported, interp_for
from ..cosim.state import ProgramCase, build_machine_state
from ..itl.events import Reg
from ..sail.iface import ModelError

CERT_VERSION = 1


class RefutationError(Exception):
    """No witness execution reaching the bad state was found."""


class RefutationCheckFailure(Exception):
    """The authoritative replay did not confirm the certificate."""


@dataclass(frozen=True)
class BadStatePred:
    """A conjunction of register / memory-byte / PC equalities.

    ``regs`` maps register names to required values; ``mem`` maps byte
    addresses to required byte values; ``pc`` (optional) pins the program
    counter.  Empty predicates are rejected — an always-true "bad state"
    is not a refutation of anything.
    """

    regs: tuple = ()
    mem: tuple = ()
    pc: int | None = None

    def __post_init__(self):
        if not self.regs and not self.mem and self.pc is None:
            raise ValueError("empty bad-state predicate")

    @classmethod
    def of(cls, regs=None, mem=None, pc=None) -> "BadStatePred":
        return cls(
            regs=tuple(sorted((regs or {}).items())),
            mem=tuple(sorted((mem or {}).items())),
            pc=pc,
        )

    def holds(self, state, pc_reg) -> bool:
        for name, value in self.regs:
            if state.read_reg(Reg.parse(name)) != value:
                return False
        for addr, byte in self.mem:
            if not state.mem_mapped(addr, 1) or state.read_mem(addr, 1) != byte:
                return False
        if self.pc is not None and state.read_reg(pc_reg) != self.pc:
            return False
        return True

    def to_json(self) -> dict:
        out: dict = {
            "regs": {name: hex(value) for name, value in self.regs},
            "mem": {hex(addr): byte for addr, byte in self.mem},
        }
        if self.pc is not None:
            out["pc"] = hex(self.pc)
        return out

    @classmethod
    def from_json(cls, data: dict) -> "BadStatePred":
        return cls.of(
            regs={k: int(v, 16) for k, v in data.get("regs", {}).items()},
            mem={int(a, 16): b for a, b in data.get("mem", {}).items()},
            pc=int(data["pc"], 16) if "pc" in data else None,
        )


@dataclass(frozen=True)
class RefutationCertificate:
    """A checkable witness that ``case`` reaches ``pred`` in ``steps`` steps."""

    arch: str
    case: ProgramCase
    pred: BadStatePred
    steps: int
    version: int = CERT_VERSION

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "arch": self.arch,
            "case": self.case.to_json(),
            "pred": self.pred.to_json(),
            "steps": self.steps,
        }

    def canonical(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, data: dict) -> "RefutationCertificate":
        if data.get("version") != CERT_VERSION:
            raise RefutationCheckFailure(
                f"unsupported certificate version {data.get('version')!r}"
            )
        return cls(
            arch=data["arch"],
            case=ProgramCase.from_json(data["case"]),
            pred=BadStatePred.from_json(data["pred"]),
            steps=int(data["steps"]),
        )


def reaches_bad_state(
    arch_name: str,
    case: ProgramCase,
    pred: BadStatePred,
    max_steps: int = 64,
) -> RefutationCertificate:
    """Prove the incorrectness spec by *finding* a witness execution.

    The fast interpreter (untrusted) runs the program from ``case`` and
    stops at the first state satisfying ``pred``; the resulting
    certificate must still pass :func:`check_refutation` before anything
    downstream may rely on it.  Raises :class:`RefutationError` when no
    prefix of the bounded execution reaches the bad state.
    """
    arch = COSIM_ARCHS[arch_name]
    state = build_machine_state(arch, case)
    interp = interp_for(arch, state)
    pc_reg = arch.model.pc_reg
    if pred.holds(state, pc_reg):
        return RefutationCertificate(arch=arch_name, case=case.copy(), pred=pred, steps=0)
    for step in range(1, max_steps + 1):
        pc = state.read_reg(pc_reg)
        if pc is None or not state.mem_mapped(pc, 4):
            break
        try:
            interp.step()
        except (CosimUnsupported, CosimDomainError) as exc:
            raise RefutationError(f"witness search left the modelled subset: {exc}") from exc
        if pred.holds(state, pc_reg):
            return RefutationCertificate(
                arch=arch_name, case=case.copy(), pred=pred, steps=step
            )
    raise RefutationError(
        f"no execution of ≤{max_steps} steps reaches the bad state"
    )


def check_refutation(cert: RefutationCertificate) -> bool:
    """Replay a certificate against the authoritative concrete model.

    This is the *trusted* half: the witness execution is re-run through
    ``IsaModel.step_concrete`` — the same concrete semantics the
    refinement theorem compares the ITL opsem against — and the bad-state
    predicate is re-evaluated on the authoritative final state.  Returns
    True on confirmation; raises :class:`RefutationCheckFailure` otherwise.
    """
    try:
        arch = COSIM_ARCHS[cert.arch]
    except KeyError as exc:
        raise RefutationCheckFailure(f"unknown architecture {cert.arch!r}") from exc
    state = build_machine_state(arch, cert.case)
    pc_reg = arch.model.pc_reg
    for step in range(cert.steps):
        pc = state.read_reg(pc_reg)
        if pc is None or not state.mem_mapped(pc, 4):
            raise RefutationCheckFailure(
                f"authoritative replay ran off the program at step {step}"
            )
        try:
            arch.model.step_concrete(state)
        except ModelError as exc:
            raise RefutationCheckFailure(
                f"authoritative replay failed at step {step}: {exc}"
            ) from exc
    if not pred_holds_final(cert, state, pc_reg):
        raise RefutationCheckFailure(
            "bad-state predicate does not hold on the authoritative final state"
        )
    return True


def pred_holds_final(cert: RefutationCertificate, state, pc_reg) -> bool:
    return cert.pred.holds(state, pc_reg)
