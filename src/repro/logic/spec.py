"""The label-specification language for externally visible behaviour.

The ``spec(s)`` assertion (§4.2) constrains the sequence of visible labels —
MMIO reads/writes and termination.  Specifications are built from:

- :class:`SStop` — no further visible events are allowed (termination only);
- :class:`SAnything` — any behaviour (the trivial spec);
- :class:`SRead` — ``scons(R(a, b), k(b))``: a read of some value ``b`` from
  device address ``a``, continuing with ``k(b)``;
- :class:`SWrite` — ``scons(W(a, v), s)``: a write of exactly ``v``;
- :class:`SChoice` — a continuation that depends on a condition over
  previously bound values (the ``b[5] ? ... : ...`` of the UART spec);
- :class:`SRec` — the least fixpoint combinator ``srec`` for looping specs.

The UART putc specification from §6 is expressed as::

    def uart_spec(c, after):
        def body(loop):
            return SRead(LSR, 4, lambda b: SChoice(
                bit5_set(b),
                SWrite(IO, 4, zero_extend(c, 32), after),
                loop,
            ))
        return SRec(body)

Specs are consumed during verification (each MMIO event peels one layer) and
can also be *run* against concrete label sequences (:func:`spec_allows`),
which is how the adequacy harness checks Theorem 1 empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..itl.events import Label, LabelEnd, LabelRead, LabelWrite
from ..smt import builder as B
from ..smt.evaluate_compat import evaluate
from ..smt.terms import Term


class LabelSpec:
    """Base class for label specifications."""

    __slots__ = ()


@dataclass(frozen=True)
class SStop(LabelSpec):
    """No more visible IO; termination (E labels) is allowed."""


@dataclass(frozen=True)
class SAnything(LabelSpec):
    """Any visible behaviour (used when a case study has no IO)."""


@dataclass(frozen=True)
class SRead(LabelSpec):
    """Expect a read of ``nbytes`` at ``addr``; bind the value read."""

    addr: Term
    nbytes: int
    cont: Callable[[Term], LabelSpec]


@dataclass(frozen=True)
class SWrite(LabelSpec):
    """Expect a write of exactly ``value`` (width 8*nbytes) at ``addr``."""

    addr: Term
    nbytes: int
    value: Term
    cont: LabelSpec


@dataclass(frozen=True)
class SChoice(LabelSpec):
    """Continue as ``then`` when ``cond`` holds, else as ``els``."""

    cond: Term
    then: LabelSpec
    els: LabelSpec


class SRec(LabelSpec):
    """``srec(F)``: the spec ``F`` applied to itself (guarded recursion).

    The recursive occurrence is this very object, so loop invariants can
    compare spec states by identity.
    """

    __slots__ = ("fn", "_unfolded")

    def __init__(self, fn: Callable[["SRec"], LabelSpec]) -> None:
        self.fn = fn
        self._unfolded: LabelSpec | None = None

    def unfold(self) -> LabelSpec:
        if self._unfolded is None:
            self._unfolded = self.fn(self)
        return self._unfolded

    def __repr__(self) -> str:
        return "srec(...)"


def head_normal(spec: LabelSpec, decide) -> LabelSpec:
    """Unfold ``SRec`` and resolve ``SChoice`` using ``decide(cond) ->
    True/False/None`` until the spec exposes a constructor."""
    fuel = 64
    while fuel:
        fuel -= 1
        if isinstance(spec, SRec):
            spec = spec.unfold()
            continue
        if isinstance(spec, SChoice):
            outcome = decide(spec.cond)
            if outcome is None:
                raise SpecStuck(f"cannot decide spec condition {spec.cond!r}")
            spec = spec.then if outcome else spec.els
            continue
        return spec
    raise SpecStuck("spec did not reach head-normal form (unguarded srec?)")


class SpecStuck(Exception):
    """The spec cannot be driven further (condition undecided, or shape
    mismatch with the observed label)."""


def spec_allows(spec: LabelSpec, labels: list[Label], env: dict | None = None) -> bool:
    """Concrete run: does the spec allow this (finite prefix of a) label
    sequence?  Used by the adequacy harness."""
    env = dict(env or {})

    def decide(cond: Term):
        try:
            return bool(evaluate(cond, env))
        except Exception:
            return None

    for label in labels:
        if isinstance(label, LabelEnd):
            return True  # termination is always allowed by our specs
        try:
            spec = head_normal(spec, decide)
        except SpecStuck:
            return False
        if isinstance(spec, SAnything):
            return True
        if isinstance(spec, SStop):
            return False  # an IO label where none is allowed
        if isinstance(spec, SRead):
            if not isinstance(label, LabelRead):
                return False
            if evaluate(spec.addr, env) != label.addr or spec.nbytes != label.nbytes:
                return False
            spec = spec.cont(B.bv(label.data, 8 * label.nbytes))
            continue
        if isinstance(spec, SWrite):
            if not isinstance(label, LabelWrite):
                return False
            if evaluate(spec.addr, env) != label.addr or spec.nbytes != label.nbytes:
                return False
            if evaluate(spec.value, env) != label.data:
                return False
            spec = spec.cont
            continue
        return False
    return True
