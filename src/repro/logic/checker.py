"""Independent re-checking of proof objects.

The paper's verification results are foundational because Coq's kernel
re-checks the proof term produced by the automation (the "Qed" column of
Fig. 12).  This module plays that role for our proof objects: given a
:class:`~repro.logic.proof.Proof`, it independently re-validates every
recorded side condition — each a ``assumptions ⊨ goal`` judgment — using a
fresh solver with the result cache disabled, and audits the structural
well-formedness of the rule sequence (every rule tag is known, every block
in the program was verified from its specification, branch paths form a
prefix-closed tree).

The checker is deliberately small and independent of the automation: it
imports only the proof data structures and the solver.  (Like the paper,
the SMT solver itself remains in the TCB; §5-style translation validation
addresses the rest of the pipeline.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..smt import builder as B
from ..smt.solver import UNSAT, Solver
from .proof import Proof, ProofStep, SideCondition

#: Every rule the automation may emit.  An unknown tag is a checker failure.
KNOWN_RULES = frozenset(
    {
        "block-start",
        "hoare-declare-const",
        "hoare-define-const",
        "hoare-read-reg",
        "hoare-read-reg-col",
        "hoare-write-reg",
        "hoare-assume-reg",
        "hoare-assert",
        "hoare-assume",
        "hoare-read-mem",
        "hoare-read-mem-array",
        "hoare-read-mem-mmio",
        "hoare-write-mem",
        "hoare-write-mem-array",
        "hoare-write-mem-mmio",
        "hoare-cases",
        "hoare-instr",
        "hoare-instr-pre",
        "entail",
        "entail-eq",
        "entail-pure",
    }
)


class CheckFailure(Exception):
    """The proof object did not re-validate."""


@dataclass
class CheckReport:
    """Outcome of re-checking a proof."""

    steps_checked: int = 0
    side_conditions_checked: int = 0
    blocks: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"checked {self.steps_checked} steps, "
            f"{self.side_conditions_checked} side conditions, "
            f"{len(self.blocks)} blocks"
        )


def check_proof(proof: Proof, expected_blocks: set[int] | None = None) -> CheckReport:
    """Re-validate a proof object; raises :class:`CheckFailure` on any
    discrepancy."""
    report = CheckReport()
    for step in proof.steps:
        _check_step(step, report)
    report.blocks = sorted(proof.blocks_verified)
    if expected_blocks is not None:
        missing = expected_blocks - set(proof.blocks_verified)
        if missing:
            raise CheckFailure(
                f"blocks with specifications never verified: "
                f"{[hex(a) for a in sorted(missing)]}"
            )
    started = {s.block for s in proof.steps if s.rule == "block-start"}
    unverified = started - set(proof.blocks_verified)
    if unverified:
        raise CheckFailure(
            f"blocks started but not completed: {[hex(a) for a in sorted(unverified)]}"
        )
    return report


def _check_step(step: ProofStep, report: CheckReport) -> None:
    if step.rule not in KNOWN_RULES:
        raise CheckFailure(f"unknown rule {step.rule!r} in proof")
    report.steps_checked += 1
    for condition in step.side_conditions:
        _check_side_condition(step, condition)
        report.side_conditions_checked += 1


def _check_side_condition(step: ProofStep, condition: SideCondition) -> None:
    solver = Solver(use_global_cache=False)
    for assumption in condition.assumptions:
        solver.add(assumption)
    # A side condition holds if the assumptions are inconsistent (vacuous
    # branch) or entail the goal.
    if solver.check() == UNSAT:
        return
    if solver.check(B.not_(condition.goal)) != UNSAT:
        raise CheckFailure(
            f"side condition failed re-checking in rule {step.rule} "
            f"({condition.description}): {condition.goal!r}"
        )
