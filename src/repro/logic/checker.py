"""Independent re-checking of proof objects.

The paper's verification results are foundational because Coq's kernel
re-checks the proof term produced by the automation (the "Qed" column of
Fig. 12).  This module plays that role for our proof objects: given a
:class:`~repro.logic.proof.Proof`, it independently re-validates every
recorded side condition — each a ``assumptions ⊨ goal`` judgment — using a
fresh solver with the result cache disabled, and audits the structural
well-formedness of the rule sequence (every rule tag is known, every block
in the program was verified from its specification, branch paths form a
prefix-closed tree).

Governed (degraded) proofs carry *residual obligations* — side conditions
the automation could not decide.  The checker re-attempts each residual:
one it can now prove is counted as discharged; one it can *refute* is a
hard failure (the automation mislabelled a ``failed`` block as
``degraded``); one still undecided simply remains residual.  A block with
residual obligations must never be claimed ``verified``, and that
consistency is audited here too.

The checker is deliberately small and independent of the automation: it
imports only the proof data structures and the solver.  (Like the paper,
the SMT solver itself remains in the TCB; §5-style translation validation
addresses the rest of the pipeline.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resilience.outcome import VERIFIED
from ..smt import builder as B
from ..smt.solver import SAT, UNSAT, Solver
from .proof import Proof, ProofStep, SideCondition

#: Every rule the automation may emit.  An unknown tag is a checker failure.
KNOWN_RULES = frozenset(
    {
        "block-start",
        "hoare-declare-const",
        "hoare-define-const",
        "hoare-read-reg",
        "hoare-read-reg-col",
        "hoare-write-reg",
        "hoare-assume-reg",
        "hoare-assert",
        "hoare-assume",
        "hoare-read-mem",
        "hoare-read-mem-array",
        "hoare-read-mem-mmio",
        "hoare-write-mem",
        "hoare-write-mem-array",
        "hoare-write-mem-mmio",
        "hoare-cases",
        "hoare-instr",
        "hoare-instr-pre",
        "entail",
        "entail-eq",
        "entail-pure",
        "residual",
    }
)


class CheckFailure(Exception):
    """The proof object did not re-validate."""


@dataclass
class CheckReport:
    """Outcome of re-checking a proof."""

    steps_checked: int = 0
    side_conditions_checked: int = 0
    residuals_remaining: int = 0
    residuals_discharged: int = 0
    blocks: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        text = (
            f"checked {self.steps_checked} steps, "
            f"{self.side_conditions_checked} side conditions, "
            f"{len(self.blocks)} blocks"
        )
        if self.residuals_remaining or self.residuals_discharged:
            text += (
                f"; residuals: {self.residuals_remaining} remaining, "
                f"{self.residuals_discharged} discharged on re-check"
            )
        return text


def check_proof(proof: Proof, expected_blocks: set[int] | None = None) -> CheckReport:
    """Re-validate a proof object; raises :class:`CheckFailure` on any
    discrepancy."""
    report = CheckReport()
    for step in proof.steps:
        _check_step(step, report)
    for residual in proof.residual_obligations:
        _check_residual(proof, residual, report)
    report.blocks = sorted(proof.blocks_verified)
    # Blocks that completed with a recorded non-verified outcome (degraded /
    # unknown / failed under governance) are accounted for — they are not
    # *missing*, they are *not fully verified*, and the outcome map says so.
    excused = {
        addr for addr, outcome in proof.outcomes.items() if outcome != VERIFIED
    }
    degraded_blocks = {r.block for r in proof.residual_obligations}
    if expected_blocks is not None:
        missing = expected_blocks - set(proof.blocks_verified) - excused
        if missing:
            raise CheckFailure(
                f"blocks with specifications never verified: "
                f"{[hex(a) for a in sorted(missing)]}"
            )
    claimed = set(proof.blocks_verified)
    overclaimed = claimed & degraded_blocks
    if overclaimed:
        raise CheckFailure(
            f"blocks claimed verified despite residual obligations: "
            f"{[hex(a) for a in sorted(overclaimed)]}"
        )
    for addr, outcome in proof.outcomes.items():
        if outcome == VERIFIED and addr not in claimed:
            raise CheckFailure(
                f"outcome map claims 0x{addr:x} verified but the proof does not"
            )
    started = {s.block for s in proof.steps if s.rule == "block-start"}
    unverified = started - claimed - excused
    if unverified:
        raise CheckFailure(
            f"blocks started but not completed: {[hex(a) for a in sorted(unverified)]}"
        )
    return report


def _check_step(step: ProofStep, report: CheckReport) -> None:
    if step.rule not in KNOWN_RULES:
        raise CheckFailure(f"unknown rule {step.rule!r} in proof")
    report.steps_checked += 1
    for condition in step.side_conditions:
        _check_side_condition(step, condition)
        report.side_conditions_checked += 1


def _check_side_condition(step: ProofStep, condition: SideCondition) -> None:
    solver = Solver(use_global_cache=False)
    for assumption in condition.assumptions:
        solver.add(assumption)
    # A side condition holds if the assumptions are inconsistent (vacuous
    # branch) or entail the goal.
    if solver.check() == UNSAT:
        return
    if solver.check(B.not_(condition.goal)) != UNSAT:
        raise CheckFailure(
            f"side condition failed re-checking in rule {step.rule} "
            f"({condition.description}): {condition.goal!r}"
        )


def _check_residual(proof: Proof, residual, report: CheckReport) -> None:
    solver = Solver(use_global_cache=False)
    for assumption in residual.assumptions:
        solver.add(assumption)
    if solver.check() == UNSAT:
        report.residuals_discharged += 1  # vacuous under its own assumptions
        return
    status = solver.check(B.not_(residual.goal))
    if status == UNSAT:
        report.residuals_discharged += 1
        return
    if status == SAT:
        raise CheckFailure(
            f"residual obligation is refutable (block 0x{residual.block:x}, "
            f"{residual.description}): the run should have failed, not degraded"
        )
    report.residuals_remaining += 1
