"""The separation-logic proof context, with Lithium-style deterministic
resource search.

§4.3's key insight: backtracking can be avoided by letting the *context*
decide which rule applies.  ``find_reg(r)`` is the paper's ``findᵣ(r)``
instruction — it locates the unique resource (a plain points-to or a
register collection) covering ``r`` and the automation commits to the
corresponding rule branch.  ``find_mem(addr, n)`` likewise decides among the
``↦ₘ`` / ``↦*ₘ`` / ``↦ᴵᴼ`` rules, querying the bitvector solver for address
containment (addresses are usually symbolic).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..itl.events import Reg
from ..smt import builder as B
from ..smt.solver import UNSAT, Solver
from ..smt.terms import Term
from .assertions import (
    Assertion,
    InstrPre,
    MemArray,
    MemPointsTo,
    MMIO,
    RegCol,
    RegPointsTo,
    SpecAssertion,
)
from .spec import LabelSpec


class ProofError(Exception):
    """A verification step failed (missing resource, unprovable side
    condition, ...)."""


@dataclass
class RegMatch:
    """Result of find_reg: where the register's ownership lives."""

    kind: str  # "points_to" | "collection"
    value: Term | None
    col_name: str | None = None


@dataclass
class MemMatch:
    """Result of find_mem."""

    kind: str  # "points_to" | "array_const" | "array_sym" | "mmio"
    assertion: Assertion
    index: int | Term | None = None


class Context:
    """The spatial context Γ plus a solver holding the pure context.

    The context owns its :class:`Solver`; branching (``Cases``) snapshots
    the context and uses solver push/pop around each branch.
    """

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver or Solver()
        self.regs: dict[Reg, Term | None] = {}
        self.reg_cols: dict[str, dict[Reg, Term | None]] = {}
        self.mems: list[MemPointsTo] = []
        self.arrays: list[MemArray] = []
        self.mmios: list[MMIO] = []
        self.instr_pres: list[InstrPre] = []
        self.spec: LabelSpec | None = None
        self.pc: Term | None = None
        self._fresh_counter = 0

    # -- construction -------------------------------------------------------

    def fresh(self, hint: str, sort) -> Term:
        self._fresh_counter += 1
        return B.var(f"{hint}!{self._fresh_counter}", sort)

    def admit(self, assertion: Assertion) -> None:
        """Add a spatial assertion to the context."""
        if isinstance(assertion, RegPointsTo):
            if assertion.reg in self.regs or any(
                assertion.reg in col for col in self.reg_cols.values()
            ):
                raise ProofError(f"duplicate register ownership: {assertion.reg}")
            self.regs[assertion.reg] = assertion.value
        elif isinstance(assertion, RegCol):
            if assertion.name in self.reg_cols:
                raise ProofError(f"duplicate register collection {assertion.name}")
            for reg, _ in assertion.entries:
                if reg in self.regs:
                    raise ProofError(f"duplicate register ownership: {reg}")
            self.reg_cols[assertion.name] = dict(assertion.entries)
        elif isinstance(assertion, MemPointsTo):
            self.mems.append(assertion)
        elif isinstance(assertion, MemArray):
            self.arrays.append(assertion)
        elif isinstance(assertion, MMIO):
            self.mmios.append(assertion)
        elif isinstance(assertion, InstrPre):
            self.instr_pres.append(assertion)
        elif isinstance(assertion, SpecAssertion):
            if self.spec is not None:
                raise ProofError("duplicate spec(s) assertion")
            self.spec = assertion.spec
        else:
            raise ProofError(f"unknown assertion {assertion!r}")

    def assume(self, fact: Term) -> None:
        self.solver.add(fact)

    def snapshot(self) -> "Context":
        """A copy sharing the solver (caller must push/pop around use)."""
        out = Context(self.solver)
        out.regs = dict(self.regs)
        out.reg_cols = {k: dict(v) for k, v in self.reg_cols.items()}
        out.mems = list(self.mems)
        out.arrays = list(self.arrays)
        out.mmios = list(self.mmios)
        out.instr_pres = list(self.instr_pres)
        out.spec = self.spec
        out.pc = self.pc
        out._fresh_counter = self._fresh_counter
        return out

    # -- Lithium search instructions --------------------------------------------

    def find_reg(self, reg: Reg) -> RegMatch:
        """findᵣ(r): locate ownership of ``reg`` (deterministic)."""
        if reg in self.regs:
            return RegMatch("points_to", self.regs[reg])
        for name, col in self.reg_cols.items():
            if reg in col:
                return RegMatch("collection", col[reg], name)
        raise ProofError(f"no ownership of register {reg} in context")

    def read_reg_value(self, reg: Reg) -> Term:
        """The value currently owned for ``reg``; a wildcard is replaced by a
        fresh variable (∃-elimination on the ``r ↦ᵣ _`` form)."""
        match = self.find_reg(reg)
        if match.value is not None:
            return match.value
        from ..smt.sorts import bv_sort
        from .assertions import _field_width

        value = self.fresh(str(reg).replace(".", "_"), bv_sort(_field_width(reg)))
        self.set_reg_value(reg, value)
        return value

    def set_reg_value(self, reg: Reg, value: Term | None) -> None:
        match = self.find_reg(reg)
        if match.kind == "points_to":
            self.regs[reg] = value
        else:
            self.reg_cols[match.col_name][reg] = value

    def find_mem(self, addr: Term, nbytes: int) -> MemMatch:
        """findₘ(a): locate the memory resource containing ``addr``.

        Tries, in order: an exact points-to, an array with a constant
        offset, an array with a provably in-bounds symbolic index, MMIO.
        Address equality/containment checks are bitvector validity queries.
        """
        for m in self.mems:
            if m.nbytes == nbytes and self._addr_eq(addr, m.addr):
                return MemMatch("points_to", m)
        for arr in self.arrays:
            if arr.elem_bytes != nbytes or not arr.values:
                continue
            offset = B.bvsub(addr, arr.addr)
            if offset.is_value():
                off = offset.value
                if off % arr.elem_bytes == 0:
                    idx = off // arr.elem_bytes
                    if 0 <= idx < len(arr.values):
                        return MemMatch("array_const", arr, idx)
                continue
            index = self._symbolic_index(offset, arr)
            if index is not None:
                return MemMatch("array_sym", arr, index)
        for io in self.mmios:
            if io.nbytes == nbytes and self._addr_eq(addr, io.addr):
                return MemMatch("mmio", io)
        raise ProofError(f"no memory resource for address {addr!r} ({nbytes}B)")

    def _addr_eq(self, a: Term, b: Term) -> bool:
        eq = B.eq(a, b)
        return self.solver.is_valid(eq)

    def _symbolic_index(self, offset: Term, arr: MemArray) -> Term | None:
        """Try to exhibit ``offset = idx * elem_bytes`` with idx < len.

        Candidate screening uses the theory-only ``quick_valid``: a failed
        proof just moves the search to the next resource, so spending SAT
        effort refuting the wrong candidate would be pure waste (and the
        common case — a loop counter with interval facts — is exactly what
        the word-level layer decides).
        """
        esize = arr.elem_bytes
        if esize == 1:
            idx = offset
        else:
            log = esize.bit_length() - 1
            if 1 << log != esize:
                return None
            # offset must be a multiple of the element size.
            if not self.solver.quick_valid(
                B.eq(B.extract(log - 1, 0, offset), B.bv(0, log))
            ):
                return None
            idx = B.bvlshr(offset, B.bv(log, 64))
        if not self.solver.quick_valid(B.bvult(idx, B.bv(len(arr.values), 64))):
            return None
        return idx

    # -- array read/write with symbolic indices -----------------------------------

    def array_read(self, arr: MemArray, index: int | Term) -> Term:
        if isinstance(index, int):
            return arr.values[index]
        # ite-chain select (no theory of arrays in the solver).
        result = arr.values[-1]
        for j in range(len(arr.values) - 2, -1, -1):
            result = B.ite(B.eq(index, B.bv(j, 64)), arr.values[j], result)
        return result

    def array_write(self, arr: MemArray, index: int | Term, value: Term) -> None:
        pos = self.arrays.index(arr)
        if isinstance(index, int):
            values = list(arr.values)
            values[index] = value
        else:
            values = [
                B.ite(B.eq(index, B.bv(j, 64)), value, old)
                for j, old in enumerate(arr.values)
            ]
        self.arrays[pos] = MemArray(arr.addr, tuple(values), arr.elem_bytes)

    def mem_update(self, m: MemPointsTo, value: Term) -> None:
        self.mems[self.mems.index(m)] = MemPointsTo(m.addr, value, m.nbytes)

    # -- feasibility ----------------------------------------------------------------

    def consistent(self) -> bool:
        """Is the pure context satisfiable?  (An inconsistent context means
        the current Cases branch is dead — hoare-assert with a false
        condition — and verification of the branch succeeds trivially.)"""
        return self.solver.check() != UNSAT

    def entails(self, fact: Term) -> bool:
        return self.solver.is_valid(fact)

    # -- reporting -------------------------------------------------------------------

    def describe(self) -> str:
        lines = ["context:"]
        for reg, val in sorted(self.regs.items(), key=lambda kv: str(kv[0])):
            lines.append(f"  {reg} ↦r {val!r}")
        for name, col in self.reg_cols.items():
            lines.append(f"  reg_col({name}): {len(col)} registers")
        for m in self.mems:
            lines.append(f"  {m}")
        for a in self.arrays:
            lines.append(f"  {a}")
        for io in self.mmios:
            lines.append(f"  {io}")
        for ip in self.instr_pres:
            lines.append(f"  {ip.addr!r} @@ ...")
        if self.spec is not None:
            lines.append(f"  spec({self.spec!r})")
        lines.append(f"  PC = {self.pc!r}")
        return "\n".join(lines)
