"""Assertions of the Islaris separation logic (§2.3, §4.1).

The assertion language:

- ``r ↦ᵣ v`` (:class:`RegPointsTo`) — register ownership (Myreen-Gordon
  style), so irrelevant registers are framed away;
- ``reg_col(C)`` (:class:`RegCol`) — a collection of register points-tos,
  used for the large system-register sets (``sys_regs``, ``CNVZ_regs``);
- ``a ↦ₘ b`` (:class:`MemPointsTo`) — bytes of mapped memory;
- ``a ↦*ₘ B`` (:class:`MemArray`) — arrays of equal-width elements;
- ``a ↦ᴵᴼ n`` (:class:`MMIO`) — unmapped (device) memory, whose accesses
  are externally visible labels;
- ``a @@ Q`` (:class:`InstrPre`) — "the code at address a has been verified
  against precondition Q" (Chlipala-style code pointers);
- ``spec(s)`` (:class:`SpecAssertion`) — the allowed visible behaviour.

A precondition/postcondition (:class:`Pred`) is an existentially quantified
symbolic heap: ∃ xs. A₁ ∗ ... ∗ Aₙ ∗ ⌜φ₁⌝ ∗ ... ∗ ⌜φₘ⌝.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..itl.events import Reg
from ..smt import builder as B
from ..smt.terms import Term
from .spec import LabelSpec


class Assertion:
    """Base class for spatial assertions."""

    __slots__ = ()


@dataclass(frozen=True)
class RegPointsTo(Assertion):
    """``r ↦ᵣ v``; ``value=None`` encodes the wildcard ``r ↦ᵣ _``."""

    reg: Reg
    value: Term | None

    def __str__(self) -> str:
        return f"{self.reg} ↦r {self.value if self.value is not None else '_'}"


@dataclass(frozen=True)
class RegCol(Assertion):
    """``reg_col(C)``: a named collection of register points-tos."""

    name: str
    entries: tuple[tuple[Reg, Term | None], ...]

    def __str__(self) -> str:
        return f"reg_col({self.name}, {len(self.entries)} regs)"


@dataclass(frozen=True)
class MemPointsTo(Assertion):
    """``a ↦ₘ b`` for an ``nbytes``-byte little-endian value ``b``."""

    addr: Term
    value: Term
    nbytes: int

    def __str__(self) -> str:
        return f"{self.addr!r} ↦m {self.value!r} ({self.nbytes}B)"


@dataclass(frozen=True)
class MemArray(Assertion):
    """``a ↦*ₘ B``: ``len(values)`` elements of ``elem_bytes`` bytes each."""

    addr: Term
    values: tuple[Term, ...]
    elem_bytes: int

    def __str__(self) -> str:
        return f"{self.addr!r} ↦m* [{len(self.values)} x {self.elem_bytes}B]"


@dataclass(frozen=True)
class MMIO(Assertion):
    """``a ↦ᴵᴼ n``: n bytes of unmapped, device-backed memory at a."""

    addr: Term
    nbytes: int

    def __str__(self) -> str:
        return f"{self.addr!r} ↦IO {self.nbytes}"


@dataclass(frozen=True)
class InstrPre(Assertion):
    """``a @@ Q``: jumping to ``a`` is safe given ``Q``."""

    addr: Term
    pred: "Pred"

    def __str__(self) -> str:
        return f"{self.addr!r} @@ <pred>"


@dataclass(frozen=True)
class SpecAssertion(Assertion):
    """``spec(s)``: the program's remaining visible behaviour satisfies s."""

    spec: LabelSpec

    def __str__(self) -> str:
        return f"spec({self.spec!r})"


@dataclass(frozen=True)
class Pred:
    """∃ exists. *(assertions) ∗ ⌜pure⌝ — a symbolic heap with binders."""

    exists: tuple[Term, ...] = ()
    assertions: tuple[Assertion, ...] = ()
    pure: tuple[Term, ...] = ()

    def __str__(self) -> str:
        parts = [str(a) for a in self.assertions] + [repr(p) for p in self.pure]
        prefix = f"∃ {', '.join(v.name for v in self.exists)}. " if self.exists else ""
        return prefix + " ∗ ".join(parts) if parts else prefix + "emp"


class PredBuilder:
    """Fluent construction of :class:`Pred` values.

    Example (the shape of the paper's Fig. 8 memcpy spec)::

        d, s, n = (B.bv_var(x, 64) for x in "dsn")
        pre = (PredBuilder()
               .exists(d, s, n)
               .reg("R0", d).reg("R1", s).reg("R2", n)
               .reg_any("R3").reg_any("R4")
               .mem_array(s, Bs).mem_array(d, Bd)
               .instr_pre(r, post)
               .build())
    """

    def __init__(self) -> None:
        self._exists: list[Term] = []
        self._assertions: list[Assertion] = []
        self._pure: list[Term] = []

    def exists(self, *vars_: Term) -> "PredBuilder":
        self._exists.extend(vars_)
        return self

    def reg(self, name: str, value: Term) -> "PredBuilder":
        self._assertions.append(RegPointsTo(Reg.parse(name), value))
        return self

    def reg_any(self, *names: str) -> "PredBuilder":
        for name in names:
            self._assertions.append(RegPointsTo(Reg.parse(name), None))
        return self

    def regs(self, mapping: dict[str, "Term | None"]) -> "PredBuilder":
        for name, value in mapping.items():
            self._assertions.append(RegPointsTo(Reg.parse(name), value))
        return self

    def reg_col(self, name: str, entries: dict[str, Term | int | None], width: int = 64) -> "PredBuilder":
        packed = []
        for rname, val in entries.items():
            if isinstance(val, int):
                reg = Reg.parse(rname)
                # PSTATE fields are narrow; plain system registers are 64-bit.
                val = B.bv(val, width if reg.field is None else _field_width(reg))
            packed.append((Reg.parse(rname), val))
        self._assertions.append(RegCol(name, tuple(packed)))
        return self

    def mem(self, addr: Term | int, value: Term, nbytes: int | None = None) -> "PredBuilder":
        if isinstance(addr, int):
            addr = B.bv(addr, 64)
        if nbytes is None:
            nbytes = value.width // 8
        self._assertions.append(MemPointsTo(addr, value, nbytes))
        return self

    def mem_array(self, addr: Term | int, values: list[Term], elem_bytes: int = 1) -> "PredBuilder":
        if isinstance(addr, int):
            addr = B.bv(addr, 64)
        self._assertions.append(MemArray(addr, tuple(values), elem_bytes))
        return self

    def mmio(self, addr: Term | int, nbytes: int) -> "PredBuilder":
        if isinstance(addr, int):
            addr = B.bv(addr, 64)
        self._assertions.append(MMIO(addr, nbytes))
        return self

    def instr_pre(self, addr: Term | int, pred: Pred) -> "PredBuilder":
        if isinstance(addr, int):
            addr = B.bv(addr, 64)
        self._assertions.append(InstrPre(addr, pred))
        return self

    def spec(self, label_spec: LabelSpec) -> "PredBuilder":
        self._assertions.append(SpecAssertion(label_spec))
        return self

    def pure(self, *facts: Term) -> "PredBuilder":
        self._pure.extend(facts)
        return self

    def also(self, assertion: Assertion) -> "PredBuilder":
        self._assertions.append(assertion)
        return self

    def build(self) -> Pred:
        return Pred(tuple(self._exists), tuple(self._assertions), tuple(self._pure))


def _field_width(reg: Reg) -> int:
    from ..arch.arm.regs import PSTATE_FIELDS

    if reg.base == "PSTATE" and reg.field in PSTATE_FIELDS:
        return PSTATE_FIELDS[reg.field]
    return 64


def pred_vars(pred: Pred) -> set[Term]:
    """All free variables appearing in a predicate's assertions and pure
    parts (including nested InstrPre predicates)."""
    out: set[Term] = set()
    for a in pred.assertions:
        out |= assertion_vars(a)
    for p in pred.pure:
        out |= p.free_vars()
    return out


def assertion_vars(a: Assertion) -> set[Term]:
    out: set[Term] = set()
    if isinstance(a, RegPointsTo):
        if a.value is not None:
            out |= a.value.free_vars()
    elif isinstance(a, RegCol):
        for _, v in a.entries:
            if v is not None:
                out |= v.free_vars()
    elif isinstance(a, MemPointsTo):
        out |= a.addr.free_vars() | a.value.free_vars()
    elif isinstance(a, MemArray):
        out |= a.addr.free_vars()
        for v in a.values:
            out |= v.free_vars()
    elif isinstance(a, MMIO):
        out |= a.addr.free_vars()
    elif isinstance(a, InstrPre):
        out |= a.addr.free_vars() | pred_vars(a.pred)
    return out


def substitute_assertion(a: Assertion, mapping: dict[Term, Term]) -> Assertion:
    """Apply a variable substitution to an assertion."""
    if not mapping:
        return a
    if isinstance(a, RegPointsTo):
        if a.value is None:
            return a
        return RegPointsTo(a.reg, B.substitute(a.value, mapping))
    if isinstance(a, RegCol):
        return RegCol(
            a.name,
            tuple(
                (r, None if v is None else B.substitute(v, mapping))
                for r, v in a.entries
            ),
        )
    if isinstance(a, MemPointsTo):
        return MemPointsTo(
            B.substitute(a.addr, mapping), B.substitute(a.value, mapping), a.nbytes
        )
    if isinstance(a, MemArray):
        return MemArray(
            B.substitute(a.addr, mapping),
            tuple(B.substitute(v, mapping) for v in a.values),
            a.elem_bytes,
        )
    if isinstance(a, MMIO):
        return MMIO(B.substitute(a.addr, mapping), a.nbytes)
    if isinstance(a, InstrPre):
        return InstrPre(
            B.substitute(a.addr, mapping), substitute_pred(a.pred, mapping)
        )
    if isinstance(a, SpecAssertion):
        return a
    raise TypeError(f"unknown assertion {a!r}")


def substitute_pred(pred: Pred, mapping: dict[Term, Term]) -> Pred:
    """Capture-avoiding enough for our use: binders are always fresh names."""
    mapping = {k: v for k, v in mapping.items() if k not in pred.exists}
    if not mapping:
        return pred
    return Pred(
        pred.exists,
        tuple(substitute_assertion(a, mapping) for a in pred.assertions),
        tuple(B.substitute(p, mapping) for p in pred.pure),
    )
