"""The Islaris proof automation (§4.3).

:class:`ProofEngine` verifies a machine-code program, given

- the *instruction map*: address → ITL trace (produced by the Isla
  frontend),
- *block specifications*: address → :class:`Pred`, covering at least the
  entry point; loop heads need a spec (their invariant), everything else is
  verified by inlining (hoare-instr).

The engine is a deterministic, backtracking-free interpreter of the rules of
Figs. 5 and 11: each ITL event dispatches on its constructor, uses
``find_reg``/``find_mem`` to locate the unique matching resource in the
context (the Lithium ``findᵣ``/``findₘ`` instructions), and discharges side
conditions with the bitvector solver.  ``Cases`` verifies every subtrace
under the full context (hoare-cases), with infeasible branches dismissed by
their leading ``Assert`` (hoare-assert on a refuted condition).

Loops are handled Löb-style: every block specification may be *used* at any
continuation point after at least one instruction has executed, including
the one currently being proved — the step-indexed model of Iris justifies
exactly this circular use (the paper leans on it for the memcpy loop,
§2.5).  The engine enforces the "later" guard by construction: a block's
own spec is only consulted at instruction boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..itl import events as E
from ..itl.events import Reg
from ..itl.trace import Trace, substitute_event
from ..resilience.budget import Budget, BudgetExhausted
from ..resilience.faults import TransientFault, active_injector
from ..resilience.shutdown import SHUTDOWN_REASON, shutdown_requested
from ..resilience.outcome import (
    DEGRADED,
    FAILED,
    UNKNOWN as UNKNOWN_OUTCOME,
    VERIFIED,
    BlockOutcome,
    ResidualObligation,
    RunReport,
)
from ..smt import builder as B
from ..smt.solver import (
    SAT as SAT_RESULT,
    UNKNOWN as UNKNOWN_RESULT,
    UNSAT as UNSAT_RESULT,
    Solver,
    SolverMode,
    SolverStats,
    check_cache_stats,
)
from ..smt.terms import FALSE, Term
from .assertions import (
    InstrPre,
    MemArray,
    MemPointsTo,
    MMIO,
    Pred,
    RegCol,
    RegPointsTo,
    SpecAssertion,
    substitute_assertion,
    substitute_pred,
)
from .context import Context, ProofError
from .proof import Proof, ProofStep, SideCondition
from .spec import SChoice, SRead, SWrite, SpecStuck, head_normal


@dataclass
class EngineConfig:
    max_inline_instructions: int = 4096
    trace_steps: bool = False  # print rule applications as they happen
    #: Governed mode: undecidable side conditions become residual
    #: obligations (degraded outcome) instead of hard ProofErrors, and
    #: verification reports a per-block outcome rather than raising.
    governed: bool = False
    #: Resource budget threaded into every context solver (governed mode).
    budget: Budget | None = None
    #: Query-engine mode for every context solver (incremental context,
    #: goal slicing); ``None`` follows the process-wide default, which the
    #: ``tools/verify --no-incremental/--no-slice`` flags control.
    solver_mode: SolverMode | None = None


class ProofEngine:
    """Verifies {P} against the program's instruction map."""

    def __init__(
        self,
        program: dict[int, Trace],
        block_specs: dict[int, Pred],
        pc_reg: Reg,
        config: EngineConfig | None = None,
    ) -> None:
        self.program = program
        self.block_specs = block_specs
        self.pc_reg = pc_reg
        self.config = config or EngineConfig()
        self.budget = self.config.budget
        self.proof = Proof()
        self._current_block = 0
        self._uniq = 0
        self._solvers: list[Solver] = []  # every context solver, for stats

    # -- top level ----------------------------------------------------------

    def verify_all(self) -> Proof:
        """Verify every block specification (the paper's per-block parallel
        instruction-spec proofs, run sequentially)."""
        for addr in sorted(self.block_specs):
            self.verify_block(addr)
        return self.proof

    def verify_all_governed(self, blocks=None) -> RunReport:
        """Verify every block, degrading instead of crashing.

        Per-block outcome lattice (see :mod:`repro.resilience.outcome`):

        - ``verified`` — complete proof, no residuals;
        - ``degraded`` — proof skeleton complete, but some side conditions
          were left as residual obligations (solver ``unknown``, exhausted
          budget, injected fault);
        - ``unknown`` — the block's proof could not be completed within
          budget (no refutation found either);
        - ``failed`` — a genuine refutation (countermodel) or structural
          proof error.

        Every mechanism only moves outcomes *down* the lattice, so a
        ``verified`` verdict is exactly as strong as the ungoverned path.

        ``blocks`` restricts verification to a subset of the spec'd block
        addresses (the parallel driver gives each worker one block).  The
        engine still needs the *full* spec map — other blocks' specs are
        used at continuation points — but only the listed blocks are
        verified and reported.
        """
        self.config.governed = True
        if blocks is None:
            blocks = sorted(self.block_specs)
        else:
            unknown = [a for a in blocks if a not in self.block_specs]
            if unknown:
                raise ProofError(
                    f"no block spec at {[hex(a) for a in unknown]}"
                )
            blocks = sorted(blocks)
        cache_before = check_cache_stats()
        report = RunReport(proof=self.proof, budget=self.budget)
        for addr in blocks:
            if shutdown_requested():
                # Drain: everything not yet attempted lands on the unknown
                # rung (fail-safe — never silently verified), and the report
                # stays a complete, renderable object.
                outcome = BlockOutcome(addr, UNKNOWN_OUTCOME, reason=SHUTDOWN_REASON)
                report.blocks[addr] = outcome
                self.proof.outcomes[addr] = outcome.outcome
                continue
            before = len(self.proof.residual_obligations)
            try:
                self.verify_block(addr)
            except BudgetExhausted as exc:
                outcome = BlockOutcome(
                    addr, UNKNOWN_OUTCOME, reason=f"budget exhausted: {exc.resource}"
                )
            except TransientFault as exc:
                outcome = BlockOutcome(
                    addr, UNKNOWN_OUTCOME, reason=f"transient fault: {exc}"
                )
            except ProofError as exc:
                if self.budget is not None and self.budget.exhausted is not None:
                    # A proof search crippled by an exhausted budget proves
                    # nothing either way: report unknown, not failed.
                    outcome = BlockOutcome(
                        addr,
                        UNKNOWN_OUTCOME,
                        reason=f"budget exhausted: {self.budget.exhausted}",
                    )
                else:
                    outcome = BlockOutcome(
                        addr, FAILED, reason=_first_line(str(exc))
                    )
            else:
                fresh = self.proof.residual_obligations[before:]
                if fresh:
                    reasons = sorted({r.reason for r in fresh})
                    outcome = BlockOutcome(
                        addr,
                        DEGRADED,
                        reason="undischarged: " + ", ".join(reasons),
                        residuals=len(fresh),
                    )
                else:
                    outcome = BlockOutcome(addr, VERIFIED)
            report.blocks[addr] = outcome
            self.proof.outcomes[addr] = outcome.outcome
        totals = SolverStats()
        for solver in self._solvers:
            totals.merge(solver.stats)
        report.solver_stats = totals.snapshot()
        # Report the *delta* of the global check-cache counters over this
        # run, not their process-lifetime totals.  The cumulative numbers
        # made otherwise-identical runs produce different reports (a warm
        # rerun inherited the cold run's misses) and, in the per-block
        # parallel merge, double-counted shared queries.  ``entries`` and
        # ``capacity`` are gauges, not counters, and pass through as-is.
        cache_after = check_cache_stats()
        report.cache_stats = {
            key: (value - cache_before.get(key, 0))
            if key not in ("entries", "capacity")
            else value
            for key, value in cache_after.items()
        }
        injector = active_injector()
        if injector is not None:
            report.faults = tuple(injector.log)
        return report

    def verify_block(self, addr: int) -> None:
        if addr not in self.program:
            raise ProofError(f"block spec at 0x{addr:x} but no instruction there")
        self._current_block = addr
        # Fresh-name numbering restarts per block, so a block's proof steps
        # (and the solver queries they induce) are a function of the block
        # alone — the serial whole-program run and the parallel per-block
        # workers then produce byte-identical certificates and share SMT
        # cache entries.  Contexts are per-block, so reuse cannot collide.
        self._uniq = 0
        residuals_before = len(self.proof.residual_obligations)
        ctx = self._context_from_pred(self.block_specs[addr], addr)
        self._record(ctx, "block-start", f"0x{addr:x}", ())
        self._run(ctx, self.program[addr], {}, set(), path=(), fuel=self.config.max_inline_instructions)
        if len(self.proof.residual_obligations) == residuals_before:
            self.proof.blocks_verified.append(addr)

    def _context_from_pred(self, pred: Pred, addr: int) -> Context:
        """Universally instantiate a block spec into a fresh context."""
        solver = Solver(budget=self.budget, mode=self.config.solver_mode)
        self._solvers.append(solver)
        ctx = Context(solver)
        mapping: dict[Term, Term] = {}
        for v in pred.exists:
            self._uniq += 1
            mapping[v] = B.var(f"{v.name}@{self._uniq}", v.sort)
        for a in pred.assertions:
            ctx.admit(substitute_assertion(a, mapping))
        for fact in pred.pure:
            ctx.assume(B.substitute(fact, mapping))
        # Seed the program counter (the paper's PC ↦ a conjunct).
        if self.pc_reg in ctx.regs:
            raise ProofError("block specs must not mention the PC register")
        ctx.regs[self.pc_reg] = B.bv(addr, 64)
        return ctx

    # -- trace walking ------------------------------------------------------------

    def _run(
        self,
        ctx: Context,
        trace: Trace,
        sub: dict[Term, Term],
        unbound: set[Term],
        path: tuple[int, ...],
        fuel: int,
    ) -> None:
        for event in trace.events:
            event = substitute_event(event, sub)
            alive = self._step(ctx, event, sub, unbound, path)
            if not alive:
                return  # dead branch (⊤): nothing left to prove
        if trace.cases is not None:
            self._record(ctx, "hoare-cases", f"{len(trace.cases)} subtraces", path)
            for i, subtrace in enumerate(trace.cases):
                ctx.solver.push()
                try:
                    branch_ctx = ctx.snapshot()
                    self._run(branch_ctx, subtrace, dict(sub), set(unbound), path + (i,), fuel)
                finally:
                    ctx.solver.pop()
            return
        self._continue(ctx, path, fuel)

    # -- continuation at instruction boundaries --------------------------------------

    def _continue(self, ctx: Context, path: tuple[int, ...], fuel: int) -> None:
        """{P} [] — pick hoare-instr, hoare-instr-pre, or a block spec."""
        pc = ctx.regs.get(self.pc_reg)
        if pc is None:
            raise ProofError("lost ownership of the PC register")
        if pc.is_value():
            addr = pc.value
            spec = self.block_specs.get(addr)
            if spec is not None:
                self._record(ctx, "hoare-instr-pre", f"block spec @ 0x{addr:x}", path)
                self._entail(ctx, spec, path, f"block spec @ 0x{addr:x}")
                return
            nxt = self.program.get(addr)
            if nxt is not None:
                if fuel <= 0:
                    raise ProofError(
                        "instruction budget exhausted — a loop without a "
                        "block specification (invariant)?"
                    )
                self._record(ctx, "hoare-instr", f"0x{addr:x}", path)
                self._run(ctx, nxt, {}, set(), path, fuel - 1)
                return
            self._entail_instr_pre(ctx, pc, path)
            return
        # Symbolic PC: look for a @@ Q with a provably equal address.
        self._entail_instr_pre(ctx, pc, path)

    def _entail_instr_pre(self, ctx: Context, pc: Term, path: tuple[int, ...]) -> None:
        for ip in ctx.instr_pres:
            if ctx.entails(B.eq(pc, ip.addr)):
                self._record(
                    ctx,
                    "hoare-instr-pre",
                    f"@@ at {ip.addr!r}",
                    path,
                    [(B.eq(pc, ip.addr), "PC matches code-pointer address")],
                )
                self._entail(ctx, ip.pred, path, f"@@ {ip.addr!r}")
                return
        # A block spec with a provably equal (symbolic) address?
        for addr, spec in self.block_specs.items():
            if ctx.entails(B.eq(pc, B.bv(addr, 64))):
                self._record(
                    ctx, "hoare-instr-pre", f"block spec @ 0x{addr:x} (symbolic PC)", path,
                    [(B.eq(pc, B.bv(addr, 64)), "PC matches block address")],
                )
                self._entail(ctx, spec, path, f"block 0x{addr:x}")
                return
        self._entail_instr_pre_disjunctive(ctx, pc, path)

    def _entail_instr_pre_disjunctive(
        self, ctx: Context, pc: Term, path: tuple[int, ...]
    ) -> None:
        """Case analysis over a disjunctive continuation address.

        A callee with several return sites (``bl`` from multiple places)
        returns through a PC that is only *disjunctively* constrained.  We
        collect every feasible target, prove the disjunction covers all
        possibilities (the coverage obligation), and verify each case under
        its equality assumption — the standard disjunction elimination of
        the paper's higher-order code-pointer reasoning.
        """
        candidates: list[tuple[Term, Pred, str]] = []
        for ip in ctx.instr_pres:
            if ctx.solver.check(B.eq(pc, ip.addr)) == SAT_RESULT:
                candidates.append((ip.addr, ip.pred, f"@@ {ip.addr!r}"))
        for addr, spec in self.block_specs.items():
            addr_term = B.bv(addr, 64)
            if ctx.solver.check(B.eq(pc, addr_term)) == SAT_RESULT:
                candidates.append((addr_term, spec, f"block 0x{addr:x}"))
        if not candidates:
            raise ProofError(
                f"continuation: PC {pc!r} matches no code pointer or block spec\n"
                + ctx.describe()
            )
        # A candidate may be merely *aliasing-feasible* (an unconstrained
        # code pointer could happen to equal the target); such cases need
        # not verify.  Soundness only requires that the successful cases
        # cover every possible PC value, which is the final obligation.
        succeeded: list[Term] = []
        failures: list[str] = []
        for i, (addr, pred, what) in enumerate(candidates):
            ctx.solver.push()
            res_before = len(self.proof.residual_obligations)
            try:
                branch = ctx.snapshot()
                branch.assume(B.eq(pc, addr))
                if not branch.consistent():
                    continue
                self._record(
                    branch, "hoare-instr-pre", f"{what} (case {i})", path + (i,)
                )
                self._entail(branch, pred, path + (i,), what)
                if len(self.proof.residual_obligations) > res_before:
                    # Governed mode: a case that only "succeeded" modulo
                    # residual obligations must not enter the coverage
                    # disjunction — a *wrong* (merely aliasing-feasible)
                    # candidate could otherwise park a refutable goal as a
                    # residual and be counted as covered.  Roll the residuals
                    # back and treat the case as unproven.
                    del self.proof.residual_obligations[res_before:]
                    failures.append(f"{what}: undecided side conditions")
                else:
                    succeeded.append(B.eq(pc, addr))
            except ProofError as exc:
                del self.proof.residual_obligations[res_before:]
                failures.append(f"{what}: {exc}")
            finally:
                ctx.solver.pop()
        coverage = B.or_(*succeeded) if succeeded else FALSE
        if not ctx.entails(coverage):
            detail = "\n".join(failures)
            raise ProofError(
                f"continuation: verified cases do not cover PC {pc!r}\n{detail}"
            )
        self._record(
            ctx,
            "hoare-instr-pre",
            "continuation case split",
            path,
            [(coverage, "continuation address coverage")],
        )

    # -- event rules -----------------------------------------------------------------------

    def _step(
        self,
        ctx: Context,
        event: E.Event,
        sub: dict[Term, Term],
        unbound: set[Term],
        path: tuple[int, ...],
    ) -> bool:
        """Apply the rule for one event.  Returns False when the branch died
        (reached ⊤) and verification of this path is complete."""
        if isinstance(event, E.DeclareConst):
            fresh = ctx.fresh(event.var.name, event.sort)
            self._bind(sub, unbound, event.var, fresh, declare=True)
            self._record(ctx, "hoare-declare-const", event.var.name, path)
            return True

        if isinstance(event, E.DefineConst):
            self._bind(sub, unbound, event.var, event.expr)
            self._record(ctx, "hoare-define-const", event.var.name, path)
            return True

        if isinstance(event, E.ReadReg):
            ctx_val = ctx.read_reg_value(event.reg)
            kind = ctx.find_reg(event.reg).kind
            rule = "hoare-read-reg" if kind == "points_to" else "hoare-read-reg-col"
            if event.value in unbound:
                self._rebind(sub, unbound, event.value, ctx_val)
            else:
                ctx.assume(B.eq(event.value, ctx_val))
            self._record(ctx, rule, str(event.reg), path)
            return True

        if isinstance(event, E.WriteReg):
            ctx.find_reg(event.reg)  # ownership check
            ctx.set_reg_value(event.reg, event.value)
            self._record(ctx, "hoare-write-reg", str(event.reg), path)
            return True

        if isinstance(event, E.AssumeReg):
            ctx_val = ctx.read_reg_value(event.reg)
            goal = B.eq(event.value, ctx_val)
            self._obligation(
                ctx, goal, f"assume-reg {event.reg} = {event.value!r}", path,
                "hoare-assume-reg",
            )
            return True

        if isinstance(event, E.Assert):
            expr = event.expr
            if expr is FALSE or ctx.entails(B.not_(expr)):
                self._record(ctx, "hoare-assert", "refuted branch (⊤)", path)
                return False
            ctx.assume(expr)
            if not ctx.consistent():
                self._record(ctx, "hoare-assert", "inconsistent branch (⊤)", path)
                return False
            self._record(ctx, "hoare-assert", "assumed", path)
            return True

        if isinstance(event, E.Assume):
            self._obligation(ctx, event.expr, "assume", path, "hoare-assume")
            return True

        if isinstance(event, E.ReadMem):
            return self._read_mem(ctx, event, sub, unbound, path)

        if isinstance(event, E.WriteMem):
            return self._write_mem(ctx, event, path)

        raise ProofError(f"unknown event {event!r}")

    def _read_mem(self, ctx, event: E.ReadMem, sub, unbound, path) -> bool:
        match = ctx.find_mem(event.addr, event.nbytes)
        if match.kind == "points_to":
            value = match.assertion.value
            rule = "hoare-read-mem"
        elif match.kind in ("array_const", "array_sym"):
            value = ctx.array_read(match.assertion, match.index)
            rule = "hoare-read-mem-array"
        else:  # mmio
            return self._read_mmio(ctx, event, sub, unbound, path, match)
        if event.data in unbound:
            self._rebind(sub, unbound, event.data, value)
        else:
            ctx.assume(B.eq(event.data, value))
        self._record(ctx, rule, f"{event.nbytes}B @ {event.addr!r}", path)
        return True

    def _read_mmio(self, ctx, event: E.ReadMem, sub, unbound, path, match) -> bool:
        spec = self._spec_head(ctx)
        if not isinstance(spec, SRead):
            raise ProofError(f"MMIO read but spec head is {spec!r}")
        goal = B.eq(event.addr, spec.addr)
        self._obligation(ctx, goal, "MMIO read address allowed by spec", path,
                         "hoare-read-mem-mmio")
        if spec.nbytes != event.nbytes:
            raise ProofError("MMIO read width differs from spec")
        if event.data not in unbound:
            raise ProofError("MMIO read into an already-constrained value")
        unbound.discard(event.data)  # stays a free symbol: the device chose it
        ctx.spec = spec.cont(event.data)
        return True

    def _write_mem(self, ctx, event: E.WriteMem, path) -> bool:
        match = ctx.find_mem(event.addr, event.nbytes)
        if match.kind == "points_to":
            ctx.mem_update(match.assertion, event.data)
            self._record(ctx, "hoare-write-mem", f"{event.nbytes}B @ {event.addr!r}", path)
            return True
        if match.kind in ("array_const", "array_sym"):
            ctx.array_write(match.assertion, match.index, event.data)
            self._record(
                ctx, "hoare-write-mem-array", f"{event.nbytes}B @ {event.addr!r}", path
            )
            return True
        spec = self._spec_head(ctx)
        if not isinstance(spec, SWrite):
            raise ProofError(f"MMIO write but spec head is {spec!r}")
        if spec.nbytes != event.nbytes:
            raise ProofError("MMIO write width differs from spec")
        self._obligation(ctx, B.eq(event.addr, spec.addr),
                         "MMIO write address allowed by spec", path,
                         "hoare-write-mem-mmio")
        self._obligation(ctx, B.eq(event.data, spec.value),
                         "MMIO write value allowed by spec", path,
                         "hoare-write-mem-mmio")
        ctx.spec = spec.cont
        return True

    def _spec_head(self, ctx: Context):
        if ctx.spec is None:
            raise ProofError("MMIO access but no spec(s) assertion in context")

        def decide(cond: Term):
            if ctx.entails(cond):
                return True
            if ctx.entails(B.not_(cond)):
                return False
            return None

        try:
            head = head_normal(ctx.spec, decide)
        except SpecStuck as exc:
            raise ProofError(str(exc)) from exc
        ctx.spec = head
        return head

    # -- entailment (instr-pre-intro / hoare-instr-pre) ------------------------------------------

    def _entail(self, ctx: Context, pred: Pred, path: tuple[int, ...], what: str) -> None:
        """Prove  ctx ⊨ ∃ xs. assertions ∗ pure  (consuming resources)."""
        if not ctx.consistent():
            self._record(ctx, "entail", f"{what}: vacuous (inconsistent context)", path)
            return
        evars: dict[Term, Term | None] = {v: None for v in pred.exists}
        consumed_regs: set[Reg] = set()

        def resolve(term: Term) -> Term:
            bound = {k: v for k, v in evars.items() if v is not None}
            return B.substitute(term, bound)

        def unify(pattern: Term | None, value: Term, what_: str) -> None:
            if pattern is None:
                return
            pattern = resolve(pattern)
            if pattern in evars and evars[pattern] is None:
                evars[pattern] = value
                return
            remaining = [v for v in pattern.free_vars() if v in evars and evars[v] is None]
            if remaining:
                solved = _solve_linear_evar(pattern, value, evars)
                if solved is None:
                    raise ProofError(
                        f"{what}: cannot unify {pattern!r} with {value!r} "
                        f"(unbound existentials {[v.name for v in remaining]})"
                    )
                var, solution = solved
                evars[var] = solution
                return
            self._obligation(ctx, B.eq(pattern, value), f"{what}: {what_}", path, "entail-eq")

        for a in pred.assertions:
            if isinstance(a, RegPointsTo):
                self._entail_reg(ctx, a.reg, a.value, unify, consumed_regs, what)
            elif isinstance(a, RegCol):
                for reg, val in a.entries:
                    self._entail_reg(ctx, reg, val, unify, consumed_regs, what)
            elif isinstance(a, MemPointsTo):
                addr = resolve(a.addr)
                match = ctx.find_mem(addr, a.nbytes)
                if match.kind == "points_to":
                    unify(a.value, match.assertion.value, f"mem @ {addr!r}")
                    ctx.mems.remove(match.assertion)
                elif match.kind == "array_const":
                    unify(a.value, match.assertion.values[match.index], f"mem @ {addr!r}")
                else:
                    raise ProofError(f"{what}: cannot match mem points-to at {addr!r}")
            elif isinstance(a, MemArray):
                addr = resolve(a.addr)
                found = None
                for arr in ctx.arrays:
                    if (
                        arr.elem_bytes == a.elem_bytes
                        and len(arr.values) == len(a.values)
                        and ctx.entails(B.eq(addr, arr.addr))
                    ):
                        found = arr
                        break
                if found is None:
                    raise ProofError(f"{what}: no matching array at {addr!r}")
                for i, pat in enumerate(a.values):
                    unify(pat, found.values[i], f"array[{i}] @ {addr!r}")
                ctx.arrays.remove(found)
            elif isinstance(a, MMIO):
                addr = resolve(a.addr)
                found = next(
                    (io for io in ctx.mmios
                     if io.nbytes == a.nbytes and ctx.entails(B.eq(addr, io.addr))),
                    None,
                )
                if found is None:
                    raise ProofError(f"{what}: no MMIO resource at {addr!r}")
                ctx.mmios.remove(found)
            elif isinstance(a, InstrPre):
                addr = resolve(a.addr)
                target = substitute_pred(
                    a.pred, {k: v for k, v in evars.items() if v is not None}
                )
                found = next(
                    (ip for ip in ctx.instr_pres
                     if ctx.entails(B.eq(addr, ip.addr))
                     and preds_match(ctx, target, ip.pred)),
                    None,
                )
                if found is None:
                    raise ProofError(
                        f"{what}: no matching @@ assertion for {addr!r} "
                        "(code-pointer predicates must match up to provable "
                        "equality)"
                    )
                ctx.instr_pres.remove(found)
            elif isinstance(a, SpecAssertion):
                # Resolve decided SChoice layers first: after a polling
                # branch the context spec is a choice whose condition the
                # branch facts decide (the UART loop's b[5]).
                current = ctx.spec
                while isinstance(current, SChoice):
                    if ctx.entails(current.cond):
                        current = current.then
                    elif ctx.entails(B.not_(current.cond)):
                        current = current.els
                    else:
                        break
                ctx.spec = current
                if current is not a.spec and current != a.spec:
                    raise ProofError(
                        f"{what}: spec state mismatch: context {current!r} "
                        f"vs required {a.spec!r}"
                    )
                ctx.spec = None
            else:
                raise ProofError(f"{what}: unsupported assertion {a!r}")

        for fact in pred.pure:
            fact = resolve(fact)
            loose = [v for v in fact.free_vars() if v in evars and evars[v] is None]
            if loose:
                raise ProofError(
                    f"{what}: pure fact {fact!r} mentions unbound existentials"
                )
            self._obligation(ctx, fact, f"{what}: pure side condition", path, "entail-pure")
        self._record(ctx, "entail", what, path)

    def _entail_reg(self, ctx, reg, pattern, unify, consumed: set, what: str) -> None:
        if reg in consumed:
            raise ProofError(f"{what}: register {reg} required twice")
        value = ctx.read_reg_value(reg)
        consumed.add(reg)
        unify(pattern, value, f"register {reg}")

    # -- bookkeeping helpers ----------------------------------------------------------------------------

    def _bind(self, sub, unbound, var: Term, value: Term, declare: bool = False) -> None:
        sub[var] = value
        if declare:
            unbound.add(value)

    def _rebind(self, sub, unbound, fresh_var: Term, value: Term) -> None:
        """A fresh (declared) variable got pinned by a read: rewrite it to
        the context's value everywhere downstream."""
        unbound.discard(fresh_var)
        mapping = {fresh_var: value}
        for k in list(sub):
            sub[k] = B.substitute(sub[k], mapping)
        # Events already emitted used the fresh var only via the solver,
        # where the equality is recorded:
        # (no ctx terms mention it before the binding read).
        sub[fresh_var] = value

    def _obligation(self, ctx, goal: Term, description: str, path, rule: str) -> None:
        status = ctx.solver.check(B.not_(goal))
        if status == UNSAT_RESULT:
            self._record(ctx, rule, description, path, [(goal, description)])
            return
        if not ctx.consistent():
            self._record(ctx, rule, f"{description} (vacuous)", path)
            return
        if self.config.governed and status == UNKNOWN_RESULT:
            # The last rung of the degradation ladder: the solver could not
            # decide the side condition, so it becomes a structured residual
            # obligation on the proof rather than a guess or a crash.  The
            # block's outcome is capped at ``degraded``.
            reason = ctx.solver.last_unknown_reason or "solver-unknown"
            budget = ctx.solver.budget
            if budget is not None and budget.exhausted is not None:
                reason = f"budget:{budget.exhausted}"
            self.proof.residual_obligations.append(
                ResidualObligation(
                    block=self._current_block,
                    description=description,
                    goal=goal,
                    assumptions=tuple(ctx.solver.assertions),
                    reason=reason,
                )
            )
            self._record(ctx, "residual", f"{description} [{reason}]", path)
            return
        raise ProofError(
            f"side condition not provable: {description}: {goal!r}\n"
            f"{_countermodel(ctx, goal)}"
            + ctx.describe()
        )

    def _record(
        self,
        ctx: Context,
        rule: str,
        detail: str,
        path: tuple[int, ...],
        side_conditions: list[tuple[Term, str]] | None = None,
    ) -> None:
        conditions = tuple(
            SideCondition(tuple(ctx.solver.assertions), goal, desc)
            for goal, desc in (side_conditions or [])
        )
        step = ProofStep(rule, detail, self._current_block, path, conditions)
        self.proof.add(step)
        if self.config.trace_steps:
            print(f"[{rule}] {detail}")


def _countermodel(ctx: Context, goal: Term) -> str:
    """Render a concrete countermodel for an unprovable side condition.

    The solver already reported SAT for ``assumptions ∧ ¬goal``; asking for
    the model shows the user the register/ghost values that violate the
    goal — far more actionable than the raw term.
    """
    try:
        if ctx.solver.check(B.not_(goal)) != SAT_RESULT:
            return ""
        model = ctx.solver.model()
    except Exception:  # model extraction is best-effort diagnostics only
        return ""
    relevant = sorted(goal.free_vars(), key=lambda v: v.name)
    if not relevant:
        return ""
    lines = ", ".join(
        f"{v.name} = {model[v]:#x}" if isinstance(model.get(v), int) else
        f"{v.name} = {model.get(v)}"
        for v in relevant
        if v in model
    )
    return f"countermodel: {lines}\n" if lines else ""


def _solve_linear_evar(
    pattern: Term, value: Term, evars: dict[Term, Term | None]
) -> tuple[Term, Term] | None:
    """Solve ``pattern = value`` for a single unbound existential appearing
    linearly with coefficient ±1 (e.g. pattern ``sp - 16``: sp := value+16).

    Returns (evar, solution) or None when the pattern is not of that shape.
    """
    if not pattern.sort.is_bv():
        return None
    from ..smt.builder import _decompose_linear, _recompose_linear

    width = pattern.sort.width
    coeffs: dict[Term, int] = {}
    const = _decompose_linear(pattern, 1, 0, coeffs)
    mask = (1 << width) - 1
    target = None
    for atom, coeff in coeffs.items():
        has_unbound = any(
            v in evars and evars[v] is None for v in atom.free_vars()
        )
        if not has_unbound:
            continue
        if target is not None:
            return None  # more than one unknown
        if atom not in evars or evars[atom] is not None:
            return None  # the unknown is buried inside a compound atom
        if coeff & mask not in (1, mask):
            return None  # coefficient is not ±1
        target = (atom, coeff & mask)
    if target is None:
        return None
    var, coeff = target
    rest_coeffs = {t: c for t, c in coeffs.items() if t is not var}
    rest = _recompose_linear(width, const, rest_coeffs)
    if coeff == 1:  # value = var + rest
        return var, B.bvsub(value, rest)
    return var, B.bvsub(rest, value)  # value = -var + rest


def preds_match(ctx: Context, required: Pred, known: Pred) -> bool:
    """Are two code-pointer predicates interchangeable in this context?

    Structural skeleton equality with value terms compared up to *provable*
    equality under the current pure context.  This is what lets a callee's
    return-site predicate — phrased over the callee's view of the state —
    match the caller's continuation predicate phrased over the caller's
    (e.g. ``caller_post(r0 - 1)`` vs ``caller_post(ite(ra = site1, a, a-1))``
    once ``ra = site1`` is assumed).
    """
    if required == known:
        return True
    if required.exists != known.exists:
        return False
    if len(required.assertions) != len(known.assertions):
        return False
    if len(required.pure) != len(known.pure):
        return False

    def terms_eq(x: Term | None, y: Term | None) -> bool:
        if x is None or y is None:
            return x is None and y is None
        if x is y:
            return True
        if not x.sort == y.sort:
            return False
        return ctx.entails(B.eq(x, y))

    for p, q in zip(required.assertions, known.assertions):
        if type(p) is not type(q):
            return False
        if isinstance(p, RegPointsTo):
            if p.reg != q.reg or not terms_eq(p.value, q.value):
                return False
        elif isinstance(p, RegCol):
            if [r for r, _ in p.entries] != [r for r, _ in q.entries]:
                return False
            if not all(
                terms_eq(v1, v2)
                for (_, v1), (_, v2) in zip(p.entries, q.entries)
            ):
                return False
        elif isinstance(p, MemPointsTo):
            if p.nbytes != q.nbytes or not terms_eq(p.addr, q.addr):
                return False
            if not terms_eq(p.value, q.value):
                return False
        elif isinstance(p, MemArray):
            if p.elem_bytes != q.elem_bytes or len(p.values) != len(q.values):
                return False
            if not terms_eq(p.addr, q.addr):
                return False
            if not all(terms_eq(v1, v2) for v1, v2 in zip(p.values, q.values)):
                return False
        elif isinstance(p, MMIO):
            if p.nbytes != q.nbytes or not terms_eq(p.addr, q.addr):
                return False
        elif isinstance(p, InstrPre):
            if not terms_eq(p.addr, q.addr):
                return False
            if not preds_match(ctx, p.pred, q.pred):
                return False
        elif isinstance(p, SpecAssertion):
            if p.spec is not q.spec and p.spec != q.spec:
                return False
        else:
            return False
    for f1, f2 in zip(required.pure, known.pure):
        if f1 is not f2 and not ctx.entails(B.eq(f1, f2)):
            return False
    return True


def _first_line(text: str) -> str:
    line = text.splitlines()[0] if text else ""
    return line if len(line) <= 160 else line[:157] + "..."


def verify_program(
    program: dict[int, Trace],
    block_specs: dict[int, Pred],
    pc_reg: Reg,
    config: EngineConfig | None = None,
    budget: Budget | None = None,
    blocks=None,
) -> RunReport:
    """Verify a program under resource governance.

    Returns a :class:`~repro.resilience.outcome.RunReport` with a per-block
    outcome of ``verified | degraded | unknown | failed`` — it never raises
    on verification failure, budget exhaustion, or injected faults.  Use
    :meth:`ProofEngine.verify_all` directly for the historical raise-on-
    failure behaviour.

    ``blocks`` optionally restricts verification to a subset of the spec'd
    addresses (used by the parallel per-block driver); the full spec map is
    still consulted at continuation points.
    """
    config = config or EngineConfig()
    config.governed = True
    if budget is not None:
        config.budget = budget
    engine = ProofEngine(program, block_specs, pc_reg, config)
    return engine.verify_all_governed(blocks=blocks)
