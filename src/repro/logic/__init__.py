"""``repro.logic`` — the Islaris separation logic and proof automation."""

from .assertions import (
    InstrPre,
    MemArray,
    MemPointsTo,
    MMIO,
    Pred,
    PredBuilder,
    RegCol,
    RegPointsTo,
    SpecAssertion,
)
from .automation import EngineConfig, ProofEngine, verify_program
from .context import Context, ProofError
from .incorrectness import (
    BadStatePred,
    RefutationCertificate,
    RefutationCheckFailure,
    RefutationError,
    check_refutation,
    reaches_bad_state,
)
from .proof import Proof, ProofStep, SideCondition
from .spec import (
    LabelSpec,
    SAnything,
    SChoice,
    SRead,
    SRec,
    SStop,
    SWrite,
    spec_allows,
)

__all__ = [
    "BadStatePred", "Context", "EngineConfig", "InstrPre", "LabelSpec",
    "MMIO", "MemArray", "MemPointsTo", "Pred", "PredBuilder", "Proof",
    "ProofEngine", "ProofError", "ProofStep", "RefutationCertificate",
    "RefutationCheckFailure", "RefutationError", "RegCol", "RegPointsTo",
    "SAnything", "SChoice", "SideCondition", "SpecAssertion", "SRead",
    "SRec", "SStop", "SWrite", "check_refutation", "reaches_bad_state",
    "spec_allows", "verify_program",
]
