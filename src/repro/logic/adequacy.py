"""Empirical validation of the adequacy theorem (Theorem 1).

Adequacy says: if ``{P} []`` is provable, then every execution of the ITL
operational semantics from an initial state satisfying ``P`` (plus the
instruction map) avoids ⊥ and produces visible labels allowed by the
``spec(s)`` in ``P``.

In the paper this is a meta-theorem proved in Iris.  Here we *test* it: for
a verified case study, sample concrete initial machine states satisfying the
specification's precondition (solving for the symbolic values with the SMT
solver, or randomising unconstrained ones), run the operational semantics
(:class:`repro.itl.opsem.Runner`), and check that

1. execution never raises :class:`~repro.itl.opsem.Failure` (no ⊥),
2. the produced label sequence is allowed by the spec, and
3. optional user-supplied functional checks on the final state hold.

This closes the loop between the program logic and the operational
semantics exactly where the paper's Theorem 1 sits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..itl.machine import MachineState
from ..itl.opsem import Runner, RunResult
from ..itl.trace import Trace
from ..smt import builder as B
from ..smt.interp import evaluate
from ..smt.solver import SAT, Solver
from ..smt.terms import Term
from .assertions import (
    InstrPre,
    MemArray,
    MemPointsTo,
    MMIO,
    Pred,
    RegCol,
    RegPointsTo,
    SpecAssertion,
)
from .spec import LabelSpec, spec_allows


class AdequacyError(Exception):
    """A concrete counterexample to the verified specification."""


@dataclass
class AdequacyResult:
    runs: int = 0
    total_instructions: int = 0
    total_labels: int = 0


def sample_environment(
    pred: Pred,
    rng: random.Random,
    extra_constraints: list[Term] | None = None,
    extra_vars: list[Term] | None = None,
) -> dict[Term, int]:
    """Choose concrete values for a predicate's existential variables.

    Pure constraints are respected by querying the solver; unconstrained
    variables are randomised (then fixed via equality constraints so the
    model is consistent)."""
    solver = Solver(use_global_cache=False)
    for fact in pred.pure:
        solver.add(fact)
    for fact in extra_constraints or []:
        solver.add(fact)
    # Randomise a candidate value for each variable; retract when in conflict.
    env: dict[Term, int] = {}
    for var in list(pred.exists) + list(extra_vars or []):
        if not var.sort.is_bv():
            continue
        width = var.sort.width
        candidate = rng.getrandbits(min(width, 16)) if width > 4 else rng.getrandbits(width)
        solver.push()
        solver.add(B.eq(var, B.bv(candidate, width)))
        if solver.check() == SAT:
            env[var] = candidate & ((1 << width) - 1)
            continue
        solver.pop()
        # Keep the constraint set satisfiable; ask the solver for a value.
        if solver.check() != SAT:
            raise AdequacyError("precondition is unsatisfiable")
        model = solver.model()
        value = int(model.get(var, 0))
        env[var] = value
        solver.push()
        solver.add(B.eq(var, B.bv(value, width)))
    if solver.check() != SAT:
        raise AdequacyError("sampled environment inconsistent")
    return env


def build_initial_state(
    pred: Pred,
    env: dict[Term, int],
    traces: dict[int, Trace],
    pc_reg,
    entry: int,
) -> tuple[MachineState, LabelSpec | None]:
    """Realise a predicate as a concrete ITL machine state."""
    state = MachineState(pc_reg=pc_reg)
    spec: LabelSpec | None = None

    def value_of(term: Term | None, width: int) -> int:
        if term is None:
            return random.getrandbits(width)
        return int(evaluate(term, dict(env)))

    for a in pred.assertions:
        if isinstance(a, RegPointsTo):
            from .assertions import _field_width

            state.write_reg(a.reg, value_of(a.value, _field_width(a.reg)))
        elif isinstance(a, RegCol):
            from .assertions import _field_width

            for reg, val in a.entries:
                state.write_reg(reg, value_of(val, _field_width(reg)))
        elif isinstance(a, MemPointsTo):
            addr = int(evaluate(a.addr, dict(env)))
            state.write_mem(addr, value_of(a.value, 8 * a.nbytes), a.nbytes)
        elif isinstance(a, MemArray):
            base = int(evaluate(a.addr, dict(env)))
            for i, v in enumerate(a.values):
                state.write_mem(
                    base + i * a.elem_bytes, value_of(v, 8 * a.elem_bytes), a.elem_bytes
                )
        elif isinstance(a, MMIO):
            pass  # unmapped by construction
        elif isinstance(a, InstrPre):
            pass  # code-pointer knowledge, not machine state
        elif isinstance(a, SpecAssertion):
            spec = a.spec
        else:
            raise AdequacyError(f"cannot realise assertion {a!r}")
    for addr, trace in traces.items():
        state.set_instr(addr, trace)
    state.write_reg(pc_reg, entry)
    return state, spec


@dataclass
class AdequacyHarness:
    """Randomised adequacy testing for one verified case study."""

    pred: Pred
    traces: dict[int, Trace]
    pc_reg: object
    entry: int
    #: stop executing when the PC reaches one of these (simulating the
    #: "rest of the program" behind a @@ assertion)
    stop_at: Callable[[dict[Term, int]], set[int]] | None = None
    device: Callable[[int, int], int] | None = None
    #: functional check on (env, final state) after a run
    final_check: Callable[[dict[Term, int], MachineState], None] | None = None
    extra_constraints: list[Term] = field(default_factory=list)
    #: free (meta-universal) spec variables to sample alongside the binders
    sample_vars: list[Term] = field(default_factory=list)

    def run(self, iterations: int = 25, seed: int = 0) -> AdequacyResult:
        rng = random.Random(seed)
        result = AdequacyResult()
        for _ in range(iterations):
            env = sample_environment(
                self.pred, rng, self.extra_constraints, self.sample_vars
            )
            state, spec = build_initial_state(
                self.pred, env, self.traces, self.pc_reg, self.entry
            )
            stops = self.stop_at(env) if self.stop_at else set()
            for addr in stops:
                state.instrs.pop(addr, None)
            runner = Runner(state, device=self.device or (lambda a, n: 0))
            outcome: RunResult = runner.run(max_instructions=10_000)
            if outcome.status == "fuel":
                raise AdequacyError("execution did not terminate within fuel")
            if spec is not None and not spec_allows(spec, outcome.labels, dict(env)):
                raise AdequacyError(
                    f"visible labels {outcome.labels} violate the spec"
                )
            if self.final_check is not None:
                # Cases rollback may have replaced the runner's state object.
                self.final_check(env, runner.state)
            result.runs += 1
            result.total_instructions += outcome.instructions
            result.total_labels += len(outcome.labels)
        return result
