"""Disassembler for the modelled OpenPOWER fixed-point subset.

Primary-opcode (bits [31:26]) classification with extended-opcode dispatch
for majors 19 (XL branch forms) and 31 (X/XO forms).  The output grammar
is the single source of truth for :mod:`repro.arch.ppc.asm`: every line
this module emits reassembles to the identical word.

Mnemonic aliases follow the standard extended forms: ``li``/``lis`` for
``addi``/``addis`` with RA=0, ``nop`` for ``ori r0, r0, 0``, ``mr`` for
``or`` with RS=RB, ``bdnz``/``beq``-family for the exact canonical BO
encodings, and ``blr``/``bctr`` for the unconditional XL branches.
"""

from __future__ import annotations

from .regs import FIELD_SPR, SPR_REGISTERS


class UnknownInstruction(Exception):
    """The opcode is outside the modelled subset."""


def _f(op: int, hi: int, lo: int) -> int:
    return (op >> lo) & ((1 << (hi - lo + 1)) - 1)


def _sx(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


#: Majors of the D-form logical-immediate family: major -> mnemonic.
_LOGIC_IMM_MNEMONICS = {
    24: "ori", 25: "oris", 26: "xori", 27: "xoris", 28: "andi.", 29: "andis.",
}
#: Same family keyed by decode-arm name (no dots — arm names are identifiers).
_LOGIC_IMM_ARMS = {
    24: "ori", 25: "oris", 26: "xori", 27: "xoris", 28: "andi", 29: "andis",
}

#: Extended opcodes (bits [10:1]) of major 31.
_XO_ADD = 266
_XO_SUBF = 40
_XO_AND = 28
_XO_OR = 444
_XO_XOR = 316
_XO_CMP = 0
_XO_CMPL = 32
_XO_MTSPR = 467
_XO_MFSPR = 339

_MAJOR31_ARMS = {
    _XO_ADD: "add", _XO_SUBF: "subf", _XO_AND: "and", _XO_OR: "or",
    _XO_XOR: "xor", _XO_CMP: "cmp", _XO_CMPL: "cmpl",
    _XO_MTSPR: "mtspr", _XO_MFSPR: "mfspr",
}


def _classify(op: int) -> str:
    """The decode-arm name claiming ``op``; raises on unmodelled words."""
    major = _f(op, 31, 26)
    if major in (10, 11):
        if _f(op, 22, 22):
            raise UnknownInstruction(f"reserved compare bit 22 in {op:#010x}")
        return "cmpli" if major == 10 else "cmpi"
    if major == 14:
        return "addi"
    if major == 15:
        return "addis"
    if major == 16:
        if _f(op, 1, 1):
            raise UnknownInstruction(f"absolute bc not modelled: {op:#010x}")
        return "bc"
    if major == 18:
        if _f(op, 1, 1):
            raise UnknownInstruction(f"absolute b not modelled: {op:#010x}")
        return "b"
    if major == 19:
        if _f(op, 15, 11):
            raise UnknownInstruction(f"reserved XL bits in {op:#010x}")
        xo = _f(op, 10, 1)
        if xo == 16:
            return "bclr"
        if xo == 528:
            if not _f(op, 23, 23):  # BO[2]: bcctr must not decrement CTR
                raise UnknownInstruction(f"bcctr with CTR decrement: {op:#010x}")
            return "bcctr"
        raise UnknownInstruction(f"XL-form XO {xo} not modelled")
    if major in _LOGIC_IMM_ARMS:
        return _LOGIC_IMM_ARMS[major]
    if major == 31:
        if _f(op, 0, 0):
            raise UnknownInstruction(f"Rc/reserved bit set in {op:#010x}")
        xo = _f(op, 10, 1)
        arm = _MAJOR31_ARMS.get(xo)
        if arm is None:
            raise UnknownInstruction(f"X/XO-form XO {xo} not modelled")
        if arm in ("cmp", "cmpl") and _f(op, 22, 22):
            raise UnknownInstruction(f"reserved compare bit 22 in {op:#010x}")
        if arm in ("mtspr", "mfspr") and _f(op, 20, 11) not in FIELD_SPR:
            raise UnknownInstruction(f"SPR field not modelled in {op:#010x}")
        return arm
    if major == 32:
        return "lwz"
    if major == 34:
        return "lbz"
    if major == 36:
        return "stw"
    if major == 38:
        return "stb"
    if major in (58, 62):
        if _f(op, 1, 0):
            raise UnknownInstruction(f"DS-form XO not modelled in {op:#010x}")
        return "ld" if major == 58 else "std"
    raise UnknownInstruction(f"primary opcode {major} not modelled")


# -- per-arm renderers -------------------------------------------------------


def _render_addi(op: int) -> str:
    rt, ra, si = _f(op, 25, 21), _f(op, 20, 16), _sx(_f(op, 15, 0), 16)
    if ra == 0:
        return f"li r{rt}, {si}"
    return f"addi r{rt}, r{ra}, {si}"


def _render_addis(op: int) -> str:
    rt, ra, si = _f(op, 25, 21), _f(op, 20, 16), _sx(_f(op, 15, 0), 16)
    if ra == 0:
        return f"lis r{rt}, {si}"
    return f"addis r{rt}, r{ra}, {si}"


def _render_logic_imm(op: int) -> str:
    if op == 0x60000000:
        return "nop"
    mnemonic = _LOGIC_IMM_MNEMONICS[_f(op, 31, 26)]
    rs, ra, ui = _f(op, 25, 21), _f(op, 20, 16), _f(op, 15, 0)
    return f"{mnemonic} r{ra}, r{rs}, {ui}"


def _render_cmpi(op: int) -> str:
    unsigned = _f(op, 31, 26) == 10
    bf, ell, ra = _f(op, 25, 23), _f(op, 21, 21), _f(op, 20, 16)
    if unsigned:
        mnemonic, imm = ("cmpldi" if ell else "cmplwi"), _f(op, 15, 0)
    else:
        mnemonic, imm = ("cmpdi" if ell else "cmpwi"), _sx(_f(op, 15, 0), 16)
    return f"{mnemonic} cr{bf}, r{ra}, {imm}"


def _render_cmp(op: int) -> str:
    unsigned = _f(op, 10, 1) == _XO_CMPL
    bf, ell, ra, rb = _f(op, 25, 23), _f(op, 21, 21), _f(op, 20, 16), _f(op, 15, 11)
    mnemonic = {
        (False, 1): "cmpd", (False, 0): "cmpw",
        (True, 1): "cmpld", (True, 0): "cmplw",
    }[(unsigned, ell)]
    return f"{mnemonic} cr{bf}, r{ra}, r{rb}"


_D_MEM_MNEMONICS = {32: "lwz", 34: "lbz", 36: "stw", 38: "stb"}


def _render_d_mem(op: int) -> str:
    mnemonic = _D_MEM_MNEMONICS[_f(op, 31, 26)]
    rt, ra, d = _f(op, 25, 21), _f(op, 20, 16), _sx(_f(op, 15, 0), 16)
    return f"{mnemonic} r{rt}, {d}(r{ra})"


def _render_ds_mem(op: int) -> str:
    mnemonic = "ld" if _f(op, 31, 26) == 58 else "std"
    rt, ra = _f(op, 25, 21), _f(op, 20, 16)
    ds = _sx(_f(op, 15, 2), 14) << 2
    return f"{mnemonic} r{rt}, {ds}(r{ra})"


def _render_b(op: int) -> str:
    offset = _sx(_f(op, 25, 2), 24) << 2
    return f"{'bl' if _f(op, 0, 0) else 'b'} {offset}"


#: Extended branch mnemonics for the canonical BO encodings: BO=12 branches
#: when the CR bit (LT/GT/EQ/SO by BI mod 4) is set, BO=4 when clear.
_COND_SET = {0: "blt", 1: "bgt", 2: "beq", 3: "bso"}
_COND_CLR = {0: "bge", 1: "ble", 2: "bne", 3: "bns"}


def _render_bc(op: int) -> str:
    bo, bi = _f(op, 25, 21), _f(op, 20, 16)
    bd = _sx(_f(op, 15, 2), 14) << 2
    suffix = "l" if _f(op, 0, 0) else ""
    if bo == 16 and bi == 0:
        return f"bdnz{suffix} {bd}"
    if bo == 12:
        return f"{_COND_SET[bi & 3]}{suffix} cr{bi >> 2}, {bd}"
    if bo == 4:
        return f"{_COND_CLR[bi & 3]}{suffix} cr{bi >> 2}, {bd}"
    return f"bc{suffix} {bo}, {bi}, {bd}"


def _render_bclr(op: int) -> str:
    bo, bi = _f(op, 25, 21), _f(op, 20, 16)
    suffix = "l" if _f(op, 0, 0) else ""
    if bo == 20 and bi == 0:
        return f"blr{suffix}"
    return f"bclr{suffix} {bo}, {bi}"


def _render_bcctr(op: int) -> str:
    bo, bi = _f(op, 25, 21), _f(op, 20, 16)
    suffix = "l" if _f(op, 0, 0) else ""
    if bo == 20 and bi == 0:
        return f"bctr{suffix}"
    return f"bcctr{suffix} {bo}, {bi}"


def _render_xo_arith(op: int) -> str:
    mnemonic = "add" if _f(op, 10, 1) == _XO_ADD else "subf"
    rt, ra, rb = _f(op, 25, 21), _f(op, 20, 16), _f(op, 15, 11)
    return f"{mnemonic} r{rt}, r{ra}, r{rb}"


_X_LOGIC_MNEMONICS = {_XO_AND: "and", _XO_OR: "or", _XO_XOR: "xor"}


def _render_x_logic(op: int) -> str:
    xo = _f(op, 10, 1)
    rs, ra, rb = _f(op, 25, 21), _f(op, 20, 16), _f(op, 15, 11)
    if xo == _XO_OR and rs == rb:
        return f"mr r{ra}, r{rs}"
    return f"{_X_LOGIC_MNEMONICS[xo]} r{ra}, r{rs}, r{rb}"


def _render_spr(op: int) -> str:
    spr = FIELD_SPR[_f(op, 20, 11)]
    reg = SPR_REGISTERS[spr].lower()
    direction = "mt" if _f(op, 10, 1) == _XO_MTSPR else "mf"
    return f"{direction}{reg} r{_f(op, 25, 21)}"


_RENDERERS = {
    "addi": _render_addi, "addis": _render_addis,
    "ori": _render_logic_imm, "oris": _render_logic_imm,
    "xori": _render_logic_imm, "xoris": _render_logic_imm,
    "andi": _render_logic_imm, "andis": _render_logic_imm,
    "cmpi": _render_cmpi, "cmpli": _render_cmpi,
    "cmp": _render_cmp, "cmpl": _render_cmp,
    "lwz": _render_d_mem, "lbz": _render_d_mem,
    "stw": _render_d_mem, "stb": _render_d_mem,
    "ld": _render_ds_mem, "std": _render_ds_mem,
    "b": _render_b, "bc": _render_bc,
    "bclr": _render_bclr, "bcctr": _render_bcctr,
    "add": _render_xo_arith, "subf": _render_xo_arith,
    "and": _render_x_logic, "or": _render_x_logic, "xor": _render_x_logic,
    "mtspr": _render_spr, "mfspr": _render_spr,
}


def disassemble(op: int) -> str:
    """The canonical assembly text of ``op``; raises on unmodelled words."""
    return _RENDERERS[_classify(op)](op)


def try_disassemble(op: int) -> str:
    try:
        return disassemble(op)
    except UnknownInstruction:
        return f".word {op:#010x}"


def decode_arm(op: int) -> str:
    """The decoder arm (instruction class) that claims ``op``.

    Raises :class:`UnknownInstruction` exactly when :func:`disassemble`
    does; round-trip tests use this for generator-coverage assertions.
    """
    return _classify(op)


#: Every decode-arm name.  The architecture registry exposes this as the
#: authoritative arm list for coverage maps.
DECODE_ARMS = (
    "addi", "addis", "ori", "oris", "xori", "xoris", "andi", "andis",
    "cmpi", "cmpli", "cmp", "cmpl", "add", "subf", "and", "or", "xor",
    "mtspr", "mfspr", "lwz", "lbz", "stw", "stb", "ld", "std",
    "b", "bc", "bclr", "bcctr",
)


# -- structured operand fields ------------------------------------------------
#
# Per-arm bit layouts as (name, hi, lo, kind) tuples, MSB-first, tiling all
# 32 bits.  Kinds mirror ``arch.arm.decode``: ``reg`` operand register
# indices, ``imm`` immediates the model reads symbolically (``fld``), and
# ``struct`` for pattern/selector bits plus anything the model consumes as
# a Python int (``fld_int`` — BO/BI/SPR fields and the AA/LK/Rc flags).

_MAJOR = ("major", 31, 26, "struct")

_D_ARITH = (_MAJOR, ("rt", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("si", 15, 0, "imm"))
_D_LOGIC = (_MAJOR, ("rs", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("ui", 15, 0, "imm"))
_D_CMP = (_MAJOR, ("bf", 25, 23, "struct"), ("res", 22, 22, "struct"),
          ("l", 21, 21, "struct"), ("ra", 20, 16, "reg"), ("si", 15, 0, "imm"))
_D_LOAD = (_MAJOR, ("rt", 25, 21, "reg"), ("ra", 20, 16, "reg"),
           ("d", 15, 0, "imm"))
_D_STORE = (_MAJOR, ("rs", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("d", 15, 0, "imm"))
_DS_LOAD = (_MAJOR, ("rt", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("ds", 15, 2, "imm"), ("xo", 1, 0, "struct"))
_DS_STORE = (_MAJOR, ("rs", 25, 21, "reg"), ("ra", 20, 16, "reg"),
             ("ds", 15, 2, "imm"), ("xo", 1, 0, "struct"))
_I_FORM = (_MAJOR, ("li", 25, 2, "imm"), ("aa", 1, 1, "struct"),
           ("lk", 0, 0, "struct"))
_B_FORM = (_MAJOR, ("bo", 25, 21, "struct"), ("bi", 20, 16, "struct"),
           ("bd", 15, 2, "imm"), ("aa", 1, 1, "struct"), ("lk", 0, 0, "struct"))
_XL_FORM = (_MAJOR, ("bo", 25, 21, "struct"), ("bi", 20, 16, "struct"),
            ("bh", 15, 11, "struct"), ("xo", 10, 1, "struct"),
            ("lk", 0, 0, "struct"))
_XO_FORM = (_MAJOR, ("rt", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("rb", 15, 11, "reg"), ("oe", 10, 10, "struct"),
            ("xo", 9, 1, "struct"), ("rc", 0, 0, "struct"))
_X_LOGIC = (_MAJOR, ("rs", 25, 21, "reg"), ("ra", 20, 16, "reg"),
            ("rb", 15, 11, "reg"), ("xo", 10, 1, "struct"),
            ("rc", 0, 0, "struct"))
_X_CMP = (_MAJOR, ("bf", 25, 23, "struct"), ("res", 22, 22, "struct"),
          ("l", 21, 21, "struct"), ("ra", 20, 16, "reg"),
          ("rb", 15, 11, "reg"), ("xo", 10, 1, "struct"),
          ("rc", 0, 0, "struct"))
_X_MTSPR = (_MAJOR, ("rs", 25, 21, "reg"), ("spr", 20, 11, "struct"),
            ("xo", 10, 1, "struct"), ("rc", 0, 0, "struct"))
_X_MFSPR = (_MAJOR, ("rt", 25, 21, "reg"), ("spr", 20, 11, "struct"),
            ("xo", 10, 1, "struct"), ("rc", 0, 0, "struct"))

_LAYOUTS = {
    "addi": _D_ARITH, "addis": _D_ARITH,
    "ori": _D_LOGIC, "oris": _D_LOGIC, "xori": _D_LOGIC, "xoris": _D_LOGIC,
    "andi": _D_LOGIC, "andis": _D_LOGIC,
    "cmpi": _D_CMP, "cmpli": _D_CMP,
    "cmp": _X_CMP, "cmpl": _X_CMP,
    "lwz": _D_LOAD, "lbz": _D_LOAD, "stw": _D_STORE, "stb": _D_STORE,
    "ld": _DS_LOAD, "std": _DS_STORE,
    "b": _I_FORM, "bc": _B_FORM, "bclr": _XL_FORM, "bcctr": _XL_FORM,
    "add": _XO_FORM, "subf": _XO_FORM,
    "and": _X_LOGIC, "or": _X_LOGIC, "xor": _X_LOGIC,
    "mtspr": _X_MTSPR, "mfspr": _X_MFSPR,
}


def decode_fields(op: int):
    """The decode arm claiming ``op`` plus its structured bit-field layout.

    Returns ``(arm_name, fields)`` with ``fields`` a tuple of
    ``(name, hi, lo, kind)`` tuples tiling the 32-bit word MSB-first, or
    ``None`` when the opcode is outside the modelled subset.
    """
    try:
        arm = decode_arm(op)
    except UnknownInstruction:
        return None
    return arm, _LAYOUTS[arm]


def decode_operands(op: int) -> dict[str, int] | None:
    """The operand fields (``reg`` and ``imm`` kinds) of ``op`` as a dict.

    ``None`` when the opcode is outside the modelled subset.
    """
    decoded = decode_fields(op)
    if decoded is None:
        return None
    _, fields = decoded
    return {
        name: _f(op, hi, lo)
        for name, hi, lo, kind in fields
        if kind in ("reg", "imm")
    }
