"""OpenPOWER single-line assembler: the inverse of :mod:`repro.arch.ppc.decode`.

``assemble_line`` parses exactly the grammar the disassembler emits (plus
its extended-mnemonic aliases) and returns the 32-bit word, so
``assemble_line(disassemble(op)) == op`` for every word the decoder
accepts.  Kept independent of both :mod:`repro.arch.ppc.encode` and the
decoder tables so round-trip tests exercise separate implementations.
"""

from __future__ import annotations


class AsmError(Exception):
    """The line is not in the disassembler's output grammar."""


def _reg(tok: str) -> int:
    if not tok.startswith("r"):
        raise AsmError(f"bad register {tok!r}")
    try:
        n = int(tok[1:])
    except ValueError:
        raise AsmError(f"bad register {tok!r}") from None
    if not 0 <= n <= 31:
        raise AsmError(f"bad register {tok!r}")
    return n


def _crf(tok: str) -> int:
    if not tok.startswith("cr"):
        raise AsmError(f"bad CR field {tok!r}")
    try:
        n = int(tok[2:])
    except ValueError:
        raise AsmError(f"bad CR field {tok!r}") from None
    if not 0 <= n <= 7:
        raise AsmError(f"bad CR field {tok!r}")
    return n


def _int(tok: str) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AsmError(f"bad integer {tok!r}") from None


def _mem(tok: str) -> tuple[int, int]:
    """Parse ``disp(reg)`` to ``(disp, reg)``."""
    if not tok.endswith(")") or "(" not in tok:
        raise AsmError(f"bad memory operand {tok!r}")
    disp, _, reg = tok[:-1].partition("(")
    return _int(disp), _reg(reg)


def _signed(value: int, bits: int, what: str) -> int:
    if not -(1 << (bits - 1)) <= value < (1 << (bits - 1)):
        raise AsmError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _unsigned(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise AsmError(f"{what} {value} does not fit in {bits} unsigned bits")
    return value


def _offset(value: int, bits: int, what: str) -> int:
    if value % 4:
        raise AsmError(f"{what} {value} is not a multiple of 4")
    return _signed(value, bits, what)


def _d_form(major: int, top: int, ra: int, imm16: int) -> int:
    return (major << 26) | (top << 21) | (ra << 16) | imm16


def _xl_form(bo: int, bi: int, xo: int, lk: int) -> int:
    return (
        (19 << 26) | (_unsigned(bo, 5, "BO") << 21)
        | (_unsigned(bi, 5, "BI") << 16) | (xo << 1) | lk
    )


def _x_form(major31_xo: int, top: int, ra: int, rb: int) -> int:
    return (31 << 26) | (top << 21) | (ra << 16) | (rb << 11) | (major31_xo << 1)


_D_ARITH = {"addi": 14, "addis": 15}
_D_LOGIC = {"ori": 24, "oris": 25, "xori": 26, "xoris": 27,
            "andi.": 28, "andis.": 29}
#: mnemonic -> (major, L, signed)
_CMP_IMM = {"cmpdi": (11, 1, True), "cmpwi": (11, 0, True),
            "cmpldi": (10, 1, False), "cmplwi": (10, 0, False)}
#: mnemonic -> (xo, L)
_CMP_REG = {"cmpd": (0, 1), "cmpw": (0, 0), "cmpld": (32, 1), "cmplw": (32, 0)}
_D_MEM = {"lwz": 32, "lbz": 34, "stw": 36, "stb": 38}
_DS_MEM = {"ld": 58, "std": 62}
_XO_ARITH = {"add": 266, "subf": 40}
_X_LOGIC = {"and": 28, "or": 444, "xor": 316}
#: extended conditional branches -> (BO, BI low bits)
_COND_BRANCH = {"blt": (12, 0), "bgt": (12, 1), "beq": (12, 2), "bso": (12, 3),
                "bge": (4, 0), "ble": (4, 1), "bne": (4, 2), "bns": (4, 3)}
#: SPR mnemonic suffix -> instruction-field value (swapped-half encoding).
_SPR_FIELDS = {"xer": 32, "lr": 256, "ctr": 288}
_BARE_XL = {"blr": (16, 0), "blrl": (16, 1), "bctr": (528, 0), "bctrl": (528, 1)}


def assemble_line(text: str) -> int:
    text = text.strip()
    mnemonic, _, rest = text.partition(" ")
    ops = [o.strip() for o in rest.split(",")] if rest.strip() else []

    def arity(n: int) -> None:
        if len(ops) != n:
            raise AsmError(f"{mnemonic} expects {n} operand(s): {text!r}")

    if mnemonic == "nop":
        arity(0)
        return _d_form(24, 0, 0, 0)
    if mnemonic in _BARE_XL:
        arity(0)
        xo, lk = _BARE_XL[mnemonic]
        return _xl_form(20, 0, xo, lk)

    if mnemonic in ("li", "lis"):
        arity(2)
        major = 14 if mnemonic == "li" else 15
        return _d_form(major, _reg(ops[0]), 0, _signed(_int(ops[1]), 16, "SI"))
    if mnemonic in _D_ARITH:
        arity(3)
        return _d_form(
            _D_ARITH[mnemonic], _reg(ops[0]), _reg(ops[1]),
            _signed(_int(ops[2]), 16, "SI"),
        )
    if mnemonic in _D_LOGIC:
        arity(3)
        # Assembly order RA, RS; encoding places RS at [25:21].
        return _d_form(
            _D_LOGIC[mnemonic], _reg(ops[1]), _reg(ops[0]),
            _unsigned(_int(ops[2]), 16, "UI"),
        )
    if mnemonic == "mr":
        arity(2)
        rs = _reg(ops[1])
        return _x_form(_X_LOGIC["or"], rs, _reg(ops[0]), rs)
    if mnemonic in _X_LOGIC:
        arity(3)
        return _x_form(
            _X_LOGIC[mnemonic], _reg(ops[1]), _reg(ops[0]), _reg(ops[2])
        )
    if mnemonic in _XO_ARITH:
        arity(3)
        return _x_form(
            _XO_ARITH[mnemonic], _reg(ops[0]), _reg(ops[1]), _reg(ops[2])
        )

    if mnemonic in _CMP_IMM:
        arity(3)
        major, ell, signed = _CMP_IMM[mnemonic]
        imm = _int(ops[2])
        imm16 = _signed(imm, 16, "SI") if signed else _unsigned(imm, 16, "UI")
        return (
            (major << 26) | (_crf(ops[0]) << 23) | (ell << 21)
            | (_reg(ops[1]) << 16) | imm16
        )
    if mnemonic in _CMP_REG:
        arity(3)
        xo, ell = _CMP_REG[mnemonic]
        return (
            (31 << 26) | (_crf(ops[0]) << 23) | (ell << 21)
            | (_reg(ops[1]) << 16) | (_reg(ops[2]) << 11) | (xo << 1)
        )

    if mnemonic in _D_MEM:
        arity(2)
        disp, ra = _mem(ops[1])
        return _d_form(
            _D_MEM[mnemonic], _reg(ops[0]), ra, _signed(disp, 16, "D")
        )
    if mnemonic in _DS_MEM:
        arity(2)
        disp, ra = _mem(ops[1])
        return _d_form(
            _DS_MEM[mnemonic], _reg(ops[0]), ra, _offset(disp, 16, "DS")
        )

    if mnemonic in ("b", "bl"):
        arity(1)
        lk = 1 if mnemonic == "bl" else 0
        return (18 << 26) | _offset(_int(ops[0]), 26, "LI") & ~0b11 | lk
    if mnemonic in ("bc", "bcl"):
        arity(3)
        lk = 1 if mnemonic == "bcl" else 0
        return (
            (16 << 26) | (_unsigned(_int(ops[0]), 5, "BO") << 21)
            | (_unsigned(_int(ops[1]), 5, "BI") << 16)
            | _offset(_int(ops[2]), 16, "BD") & ~0b11 | lk
        )
    if mnemonic in ("bdnz", "bdnzl"):
        arity(1)
        lk = 1 if mnemonic == "bdnzl" else 0
        return (16 << 26) | (16 << 21) | _offset(_int(ops[0]), 16, "BD") & ~0b11 | lk
    lk = 0
    cond = mnemonic
    if cond.endswith("l") and cond[:-1] in _COND_BRANCH:
        cond, lk = cond[:-1], 1
    if cond in _COND_BRANCH:
        arity(2)
        bo, bit = _COND_BRANCH[cond]
        bi = 4 * _crf(ops[0]) + bit
        return (
            (16 << 26) | (bo << 21) | (bi << 16)
            | _offset(_int(ops[1]), 16, "BD") & ~0b11 | lk
        )
    if mnemonic in ("bclr", "bclrl", "bcctr", "bcctrl"):
        arity(2)
        lk = 1 if mnemonic.endswith("rl") else 0
        xo = 16 if mnemonic.startswith("bclr") else 528
        bo = _int(ops[0])
        if xo == 528 and not bo & 0b00100:
            raise AsmError("bcctr must not decrement CTR (BO bit 2 clear)")
        return _xl_form(bo, _int(ops[1]), xo, lk)

    if mnemonic.startswith(("mt", "mf")) and mnemonic[2:] in _SPR_FIELDS:
        arity(1)
        xo = 467 if mnemonic.startswith("mt") else 339
        return (
            (31 << 26) | (_reg(ops[0]) << 21)
            | (_SPR_FIELDS[mnemonic[2:]] << 11) | (xo << 1)
        )

    raise AsmError(f"unknown mnemonic {mnemonic!r}")
