"""Instruction encoders for the modelled OpenPOWER fixed-point subset.

Argument order follows the assembly operand order (destination first);
the packers place them at the architectural field positions.  Range
errors raise ``ValueError`` early rather than silently truncating.
Python-keyword clashes follow the usual convention: ``and_``/``or_``,
and the record forms ``andi.``/``andis.`` are ``andi_``/``andis_``.
"""

from __future__ import annotations

from .regs import SPR_CTR, SPR_FIELD, SPR_LR, SPR_XER


def reg(r) -> int:
    """A GPR operand: an index 0..31 or a name like ``"r5"``."""
    if isinstance(r, str):
        if not r.startswith("r"):
            raise ValueError(f"bad register {r!r}")
        r = int(r[1:])
    if not 0 <= r <= 31:
        raise ValueError(f"register index {r} out of range")
    return r


def crf(bf) -> int:
    """A CR-field operand: an index 0..7 or a name like ``"cr3"``."""
    if isinstance(bf, str):
        if not bf.startswith("cr"):
            raise ValueError(f"bad CR field {bf!r}")
        bf = int(bf[2:])
    if not 0 <= bf <= 7:
        raise ValueError(f"CR field {bf} out of range")
    return bf


def _signed(value: int, bits: int, what: str) -> int:
    if not -(1 << (bits - 1)) <= value < (1 << (bits - 1)):
        raise ValueError(f"{what} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _unsigned(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{what} {value} does not fit in {bits} unsigned bits")
    return value


def _d_form(major: int, rt: int, ra: int, imm16: int) -> int:
    return (major << 26) | (reg(rt) << 21) | (reg(ra) << 16) | imm16


# -- D-form arithmetic and logical immediates --------------------------------


def addi(rt, ra, si: int) -> int:
    return _d_form(14, rt, ra, _signed(si, 16, "SI"))


def addis(rt, ra, si: int) -> int:
    return _d_form(15, rt, ra, _signed(si, 16, "SI"))


def li(rt, si: int) -> int:
    return addi(rt, 0, si)


def lis(rt, si: int) -> int:
    return addis(rt, 0, si)


def _logic_imm(major: int, ra, rs, ui: int) -> int:
    # Encoding order is RS, RA even though assembly order is RA, RS.
    return _d_form(major, rs, ra, _unsigned(ui, 16, "UI"))


def ori(ra, rs, ui: int) -> int:
    return _logic_imm(24, ra, rs, ui)


def oris(ra, rs, ui: int) -> int:
    return _logic_imm(25, ra, rs, ui)


def xori(ra, rs, ui: int) -> int:
    return _logic_imm(26, ra, rs, ui)


def xoris(ra, rs, ui: int) -> int:
    return _logic_imm(27, ra, rs, ui)


def andi_(ra, rs, ui: int) -> int:
    return _logic_imm(28, ra, rs, ui)


def andis_(ra, rs, ui: int) -> int:
    return _logic_imm(29, ra, rs, ui)


def nop() -> int:
    return ori(0, 0, 0)


# -- compares ----------------------------------------------------------------


def _cmp_imm(major: int, bf, ell: int, ra, imm16: int) -> int:
    return (major << 26) | (crf(bf) << 23) | (ell << 21) | (reg(ra) << 16) | imm16


def cmpdi(bf, ra, si: int) -> int:
    return _cmp_imm(11, bf, 1, ra, _signed(si, 16, "SI"))


def cmpwi(bf, ra, si: int) -> int:
    return _cmp_imm(11, bf, 0, ra, _signed(si, 16, "SI"))


def cmpldi(bf, ra, ui: int) -> int:
    return _cmp_imm(10, bf, 1, ra, _unsigned(ui, 16, "UI"))


def cmplwi(bf, ra, ui: int) -> int:
    return _cmp_imm(10, bf, 0, ra, _unsigned(ui, 16, "UI"))


def _cmp_reg(xo: int, bf, ell: int, ra, rb) -> int:
    return (
        (31 << 26) | (crf(bf) << 23) | (ell << 21) | (reg(ra) << 16)
        | (reg(rb) << 11) | (xo << 1)
    )


def cmpd(bf, ra, rb) -> int:
    return _cmp_reg(0, bf, 1, ra, rb)


def cmpw(bf, ra, rb) -> int:
    return _cmp_reg(0, bf, 0, ra, rb)


def cmpld(bf, ra, rb) -> int:
    return _cmp_reg(32, bf, 1, ra, rb)


def cmplw(bf, ra, rb) -> int:
    return _cmp_reg(32, bf, 0, ra, rb)


# -- loads and stores --------------------------------------------------------


def lwz(rt, ra, d: int) -> int:
    return _d_form(32, rt, ra, _signed(d, 16, "D"))


def lbz(rt, ra, d: int) -> int:
    return _d_form(34, rt, ra, _signed(d, 16, "D"))


def stw(rs, ra, d: int) -> int:
    return _d_form(36, rs, ra, _signed(d, 16, "D"))


def stb(rs, ra, d: int) -> int:
    return _d_form(38, rs, ra, _signed(d, 16, "D"))


def _ds_form(major: int, rt, ra, ds: int) -> int:
    if ds % 4:
        raise ValueError(f"DS displacement {ds} is not a multiple of 4")
    return _d_form(major, rt, ra, _signed(ds, 16, "DS"))


def ld(rt, ra, ds: int) -> int:
    return _ds_form(58, rt, ra, ds)


def std(rs, ra, ds: int) -> int:
    return _ds_form(62, rs, ra, ds)


# -- branches ----------------------------------------------------------------


def _branch_target(offset: int, bits: int, what: str) -> int:
    if offset % 4:
        raise ValueError(f"{what} {offset} is not a multiple of 4")
    return _signed(offset, bits, what)


def b(offset: int, lk: int = 0) -> int:
    return (18 << 26) | _branch_target(offset, 26, "LI") & ~0b11 | lk


def bl(offset: int) -> int:
    return b(offset, lk=1)


def bc(bo: int, bi: int, bd: int, lk: int = 0) -> int:
    return (
        (16 << 26) | (_unsigned(bo, 5, "BO") << 21)
        | (_unsigned(bi, 5, "BI") << 16)
        | _branch_target(bd, 16, "BD") & ~0b11 | lk
    )


def bcl(bo: int, bi: int, bd: int) -> int:
    return bc(bo, bi, bd, lk=1)


def bdnz(bd: int) -> int:
    return bc(16, 0, bd)


def blt(bf, bd: int) -> int:
    return bc(12, 4 * crf(bf) + 0, bd)


def bgt(bf, bd: int) -> int:
    return bc(12, 4 * crf(bf) + 1, bd)


def beq(bf, bd: int) -> int:
    return bc(12, 4 * crf(bf) + 2, bd)


def bge(bf, bd: int) -> int:
    return bc(4, 4 * crf(bf) + 0, bd)


def ble(bf, bd: int) -> int:
    return bc(4, 4 * crf(bf) + 1, bd)


def bne(bf, bd: int) -> int:
    return bc(4, 4 * crf(bf) + 2, bd)


def bclr(bo: int, bi: int, lk: int = 0) -> int:
    return (
        (19 << 26) | (_unsigned(bo, 5, "BO") << 21)
        | (_unsigned(bi, 5, "BI") << 16) | (16 << 1) | lk
    )


def bcctr(bo: int, bi: int, lk: int = 0) -> int:
    if not bo & 0b00100:
        raise ValueError("bcctr must not decrement CTR (BO bit 2 clear)")
    return (
        (19 << 26) | (_unsigned(bo, 5, "BO") << 21)
        | (_unsigned(bi, 5, "BI") << 16) | (528 << 1) | lk
    )


def blr() -> int:
    return bclr(20, 0)


def blrl() -> int:
    return bclr(20, 0, lk=1)


def bctr() -> int:
    return bcctr(20, 0)


def bctrl() -> int:
    return bcctr(20, 0, lk=1)


# -- major 31 (X / XO forms) -------------------------------------------------


def _xo_arith(xo: int, rt, ra, rb) -> int:
    return (
        (31 << 26) | (reg(rt) << 21) | (reg(ra) << 16) | (reg(rb) << 11)
        | (xo << 1)
    )


def add(rt, ra, rb) -> int:
    return _xo_arith(266, rt, ra, rb)


def subf(rt, ra, rb) -> int:
    return _xo_arith(40, rt, ra, rb)


def _x_logic(xo: int, ra, rs, rb) -> int:
    # Encoding order is RS, RA, RB even though assembly order is RA, RS, RB.
    return (
        (31 << 26) | (reg(rs) << 21) | (reg(ra) << 16) | (reg(rb) << 11)
        | (xo << 1)
    )


def and_(ra, rs, rb) -> int:
    return _x_logic(28, ra, rs, rb)


def or_(ra, rs, rb) -> int:
    return _x_logic(444, ra, rs, rb)


def xor(ra, rs, rb) -> int:
    return _x_logic(316, ra, rs, rb)


def mr(ra, rs) -> int:
    return or_(ra, rs, rs)


def _spr_form(xo: int, rt, spr: int) -> int:
    return (31 << 26) | (reg(rt) << 21) | (SPR_FIELD[spr] << 11) | (xo << 1)


def mtctr(rs) -> int:
    return _spr_form(467, rs, SPR_CTR)


def mtlr(rs) -> int:
    return _spr_form(467, rs, SPR_LR)


def mtxer(rs) -> int:
    return _spr_form(467, rs, SPR_XER)


def mfctr(rt) -> int:
    return _spr_form(339, rt, SPR_CTR)


def mflr(rt) -> int:
    return _spr_form(339, rt, SPR_LR)


def mfxer(rt) -> int:
    return _spr_form(339, rt, SPR_XER)


def assemble(opcodes: list[int]) -> bytes:
    """Pack opcodes as little-endian instruction memory (ppc64le)."""
    return b"".join(op.to_bytes(4, "little") for op in opcodes)
