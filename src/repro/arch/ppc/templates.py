"""Directed assembly templates for the OpenPOWER co-sim and conformance suites.

``cosim_templates`` yields one random-line generator per decode arm (the
coverage-biased program generator draws from it); ``CONFORMANCE_TEMPLATES``
lists near-constant encodings random word sampling is unlikely to reach.
Both speak the grammar of :mod:`repro.arch.ppc.asm`.
"""

from __future__ import annotations

import random


def _gr(rng: random.Random) -> str:
    return f"r{rng.randrange(32)}"


def _cr(rng: random.Random) -> str:
    return f"cr{rng.randrange(8)}"


def _si(rng: random.Random) -> int:
    return rng.randrange(-(1 << 15), 1 << 15)


def _ui(rng: random.Random) -> int:
    return rng.randrange(1 << 16)


#: The co-sim data window (``cosim.archs.MEM_BASE``).  It fits in a signed
#: 16-bit displacement, so ``(RA|0)`` addressing with ``r0`` as the base
#: reaches it *absolutely* — the only way a directed template can guarantee
#: a mapped access without knowing the start state's register values.
_WINDOW = 0x5000


def cosim_templates(rng: random.Random, slot) -> dict:
    """One random assembly line per OpenPOWER decode arm."""
    mem_off = 4 * rng.randrange(-4, 8)

    def _cond_branch() -> str:
        cond = rng.choice(["blt", "bgt", "beq", "bge", "ble", "bne"])
        return f"{cond} {_cr(rng)}, {slot.branch_offset(rng)}"

    return {
        "addi": lambda: rng.choice([
            f"addi {_gr(rng)}, {_gr(rng)}, {_si(rng)}",
            f"li {_gr(rng)}, {_si(rng)}",
        ]),
        "addis": lambda: rng.choice([
            f"addis {_gr(rng)}, {_gr(rng)}, {_si(rng)}",
            f"lis {_gr(rng)}, {_si(rng)}",
        ]),
        "ori": lambda: rng.choice([
            f"ori {_gr(rng)}, {_gr(rng)}, {_ui(rng)}", "nop",
        ]),
        "oris": lambda: f"oris {_gr(rng)}, {_gr(rng)}, {_ui(rng)}",
        "xori": lambda: f"xori {_gr(rng)}, {_gr(rng)}, {_ui(rng)}",
        "xoris": lambda: f"xoris {_gr(rng)}, {_gr(rng)}, {_ui(rng)}",
        "andi": lambda: f"andi. {_gr(rng)}, {_gr(rng)}, {_ui(rng)}",
        "andis": lambda: f"andis. {_gr(rng)}, {_gr(rng)}, {_ui(rng)}",
        "cmpi": lambda: (
            f"{rng.choice(['cmpdi', 'cmpwi'])} {_cr(rng)}, {_gr(rng)}, {_si(rng)}"
        ),
        "cmpli": lambda: (
            f"{rng.choice(['cmpldi', 'cmplwi'])} {_cr(rng)}, {_gr(rng)}, {_ui(rng)}"
        ),
        "cmp": lambda: (
            f"{rng.choice(['cmpd', 'cmpw'])} {_cr(rng)}, {_gr(rng)}, {_gr(rng)}"
        ),
        "cmpl": lambda: (
            f"{rng.choice(['cmpld', 'cmplw'])} {_cr(rng)}, {_gr(rng)}, {_gr(rng)}"
        ),
        "add": lambda: f"add {_gr(rng)}, {_gr(rng)}, {_gr(rng)}",
        "subf": lambda: f"subf {_gr(rng)}, {_gr(rng)}, {_gr(rng)}",
        "and": lambda: f"and {_gr(rng)}, {_gr(rng)}, {_gr(rng)}",
        "or": lambda: rng.choice([
            f"or {_gr(rng)}, {_gr(rng)}, {_gr(rng)}",
            f"mr {_gr(rng)}, {_gr(rng)}",
        ]),
        "xor": lambda: f"xor {_gr(rng)}, {_gr(rng)}, {_gr(rng)}",
        "mtspr": lambda: f"{rng.choice(['mtctr', 'mtlr', 'mtxer'])} {_gr(rng)}",
        "mfspr": lambda: f"{rng.choice(['mfctr', 'mflr', 'mfxer'])} {_gr(rng)}",
        "lwz": lambda: rng.choice([
            f"lwz {_gr(rng)}, {mem_off}({_gr(rng)})",
            f"lwz {_gr(rng)}, {_WINDOW + 4 * rng.randrange(12)}(r0)",
        ]),
        "lbz": lambda: rng.choice([
            f"lbz {_gr(rng)}, {rng.randrange(-16, 16)}({_gr(rng)})",
            f"lbz {_gr(rng)}, {_WINDOW + rng.randrange(64)}(r0)",
        ]),
        "stw": lambda: rng.choice([
            f"stw {_gr(rng)}, {mem_off}({_gr(rng)})",
            f"stw {_gr(rng)}, {_WINDOW + 4 * rng.randrange(12)}(r0)",
        ]),
        "stb": lambda: rng.choice([
            f"stb {_gr(rng)}, {rng.randrange(-16, 16)}({_gr(rng)})",
            f"stb {_gr(rng)}, {_WINDOW + rng.randrange(64)}(r0)",
        ]),
        "ld": lambda: rng.choice([
            f"ld {_gr(rng)}, {mem_off}({_gr(rng)})",
            f"ld {_gr(rng)}, {_WINDOW + 4 * rng.randrange(12)}(r0)",
        ]),
        "std": lambda: rng.choice([
            f"std {_gr(rng)}, {mem_off}({_gr(rng)})",
            f"std {_gr(rng)}, {_WINDOW + 4 * rng.randrange(12)}(r0)",
        ]),
        "b": lambda: f"{rng.choice(['b', 'bl'])} {slot.branch_offset(rng)}",
        "bc": lambda: rng.choice([
            _cond_branch(),
            f"bdnz {slot.branch_offset(rng)}",
            f"bc {rng.randrange(32)}, {rng.randrange(32)}, {slot.branch_offset(rng)}",
        ]),
        "bclr": lambda: rng.choice([
            "blr", "blrl",
            f"bclr {rng.randrange(32)}, {rng.randrange(32)}",
        ]),
        "bcctr": lambda: rng.choice([
            "bctr", "bctrl",
            f"bcctr {rng.randrange(32) | 0b00100}, {rng.randrange(32)}",
        ]),
    }


#: Sparse-corner encodings for the conformance fuzzer; slots are filled with
#: {r}/{n}/{m} in 0..30, {t}/{u} in 0..6, {h} in 1..15.
CONFORMANCE_TEMPLATES = [
    "nop", "li r{r}, -{h}", "lis r{r}, {h}",
    "mr r{r}, r{n}", "andi. r{r}, r{n}, {h}", "andis. r{r}, r{n}, {h}",
    "cmpdi cr{t}, r{r}, -{h}", "cmpwi cr{t}, r{r}, {h}",
    "cmpldi cr{t}, r{r}, {h}", "cmplwi cr{t}, r{r}, {h}",
    "cmpd cr{t}, r{r}, r{n}", "cmplw cr{t}, r{r}, r{n}",
    "add r{r}, r{n}, r{m}", "subf r{r}, r{n}, r{m}",
    "and r{r}, r{n}, r{m}", "or r{r}, r{n}, r{m}", "xor r{r}, r{n}, r{m}",
    "lwz r{r}, 8(r{n})", "lbz r{r}, -{h}(r{n})",
    "stw r{r}, 4(r{n})", "stb r{r}, {h}(r{n})",
    "ld r{r}, 8(r{n})", "std r{r}, -8(r{n})",
    "ld r{r}, 0(r0)", "lwz r{r}, 16(r0)",
    "lbz r{r}, 20480(r0)", "lbz r{r}, 20512(r0)",
    "stb r{r}, 20496(r0)", "lwz r{r}, 20484(r0)",
    "std r{r}, 20488(r0)", "ld r{r}, 20520(r0)",
    "mtctr r{r}", "mtlr r{r}", "mtxer r{r}",
    "mfctr r{r}", "mflr r{r}", "mfxer r{r}",
    "blr", "blrl", "bctr", "bctrl",
    "bclr 0, {h}", "bclr 8, {h}", "bcctr 20, {h}",
    "bdnz -4", "bc 16, 0, 8", "bc 18, {h}, 4", "bc 2, {h}, -8",
    "beq cr{t}, 8", "bne cr{t}, -4", "blt cr{t}, 4", "bgel cr{t}, 8",
    "b 8", "bl -8", "b 0",
]
