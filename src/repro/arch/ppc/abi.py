"""OpenPOWER ELFv2 calling convention (the ABI roles used by specifications).

The §2.7 point again: an Islaris specification for ppc64 differs from the
Arm and RISC-V ones mostly in this table — plus the link register living
in a branch-facility SPR instead of a GPR.
"""

from __future__ import annotations

#: argument / return registers r3-r10
ARG_REGS = [f"r{i}" for i in range(3, 11)]

#: return-address register: the branch-facility LR SPR (not a GPR)
LINK_REG = "LR"

#: stack pointer
STACK_REG = "r1"

#: TOC pointer (ELFv2)
TOC_REG = "r2"

#: callee-saved registers r14-r31
CALLEE_SAVED = [f"r{i}" for i in range(14, 32)]

#: caller-saved temporaries (volatile beyond the argument registers)
TEMP_REGS = ["r0", "r11", "r12"]

#: volatile CR fields (CR0, CR1, CR5-CR7); CR2-CR4 are callee-saved
VOLATILE_CR_FIELDS = ["CR0", "CR1", "CR5", "CR6", "CR7"]
