"""Mini-Sail model of the OpenPOWER fixed-point subset (ppc64le).

Mirrors the structure of the other mini-Sail models: a decoder over the
primary-opcode field (bits [31:26]) dispatching to per-class execute
functions.  Supports the fixed-point pieces the case studies exercise:
D-form arithmetic and logical immediates (``addi``/``addis``,
``ori``/``xori``/``andi.`` and their shifted forms), XO/X-form register
ALU ops (``add``/``subf``/``and``/``or``/``xor``), the four compare
instructions writing CR fields, byte/word/doubleword loads and stores,
branches (``b``/``bc``/``bclr``/``bcctr`` with full BO/BI generality and
CTR/LR semantics), and ``mtspr``/``mfspr`` for CTR, LR, and XER.

We model the little-endian (ppc64le) variant: instruction fetch and data
accesses are little-endian, matching the shared machine interface.  Bit
positions use LSB-0 numbering (see :mod:`repro.arch.ppc.regs`).

Everything is generic in the machine interface, so the same Isla executor
and Islaris logic work unchanged — the point of §2.7 of the paper.
"""

from __future__ import annotations

from ...itl.events import Reg
from ...sail import primitives as P
from ...sail.iface import MachineInterface, sail_fn
from ...sail.model import IsaModel
from ...sail.registers import RegisterFile
from ...smt import builder as B
from ...smt.terms import Term
from .regs import (
    CTR,
    FIELD_SPR,
    LR,
    PC,
    SPR_REGISTERS,
    XER,
    XER_SO_BIT,
    cr_field,
    declare_ppc_registers,
    gpr,
)


def fld(opcode: Term, hi: int, lo: int) -> Term:
    return B.extract(hi, lo, opcode)


def fld_int(opcode: Term, hi: int, lo: int) -> int:
    t = fld(opcode, hi, lo)
    if not t.is_value():
        raise ValueError(f"symbolic decode field [{hi}:{lo}]")
    return t.value


@sail_fn
def rGPR(m: MachineInterface, n: int) -> Term:
    """Read general-purpose register (r0 is a real register here)."""
    return m.read_reg(gpr(n))


@sail_fn
def wGPR(m: MachineInterface, n: int, value: Term) -> None:
    m.write_reg(gpr(n), value)


def rA_or_zero(m: MachineInterface, n: int) -> Term:
    """The ``(RA|0)`` addressing operand: RA=0 means a literal zero."""
    if n == 0:
        return P.zeros(64)
    return rGPR(m, n)


def advance_pc(m: MachineInterface, pc: Term | None = None) -> None:
    if pc is None:
        pc = m.read_reg(PC)
    m.write_reg(PC, B.bvadd(pc, B.bv(4, 64)))


# -- immediates (all little-endian-word bit positions, LSB-0) ---------------


def _imm_d(opcode: Term) -> Term:
    return P.sign_extend(fld(opcode, 15, 0), 64)


def _imm_d_shifted(opcode: Term) -> Term:
    return P.sign_extend(B.concat(fld(opcode, 15, 0), P.zeros(16)), 64)


def _imm_ui(opcode: Term) -> Term:
    return P.zero_extend(fld(opcode, 15, 0), 64)


def _imm_ui_shifted(opcode: Term) -> Term:
    return P.zero_extend(B.concat(fld(opcode, 15, 0), P.zeros(16)), 64)


def _imm_ds(opcode: Term) -> Term:
    return P.sign_extend(B.concat(fld(opcode, 15, 2), P.zeros(2)), 64)


def _imm_li(opcode: Term) -> Term:
    return P.sign_extend(B.concat(fld(opcode, 25, 2), P.zeros(2)), 64)


# -- condition-register plumbing --------------------------------------------


def _so_bit(m: MachineInterface) -> Term:
    return B.extract(XER_SO_BIT, XER_SO_BIT, m.read_reg(XER))


def _write_cmp_cr(m: MachineInterface, bf: int, lt: Term, gt: Term, eq: Term) -> None:
    """Write a 4-bit CR field as LT || GT || EQ || XER.SO (MSB-first)."""
    value = B.concat_many(
        P.bool_to_bit(lt), P.bool_to_bit(gt), P.bool_to_bit(eq), _so_bit(m)
    )
    m.write_reg(cr_field(bf), m.define(f"cr{bf}", value))


def _record_cr0(m: MachineInterface, result: Term) -> None:
    """Record forms (``andi.``/``andis.``): CR0 from a signed compare of
    the 64-bit result against zero."""
    lt = B.bvslt(result, B.bv(0, 64))
    eq = B.eq(result, B.bv(0, 64))
    gt = B.and_(B.not_(lt), B.not_(eq))
    _write_cmp_cr(m, 0, lt, gt, eq)


# ---------------------------------------------------------------------------
# Instruction classes.
# ---------------------------------------------------------------------------


@sail_fn
def execute_addi(m, opcode: Term, shifted: bool = False) -> None:
    rt = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    imm = _imm_d_shifted(opcode) if shifted else _imm_d(opcode)
    if ra == 0:
        result = imm  # (RA|0): li / lis forms
    else:
        result = B.bvadd(rGPR(m, ra), imm)
    wGPR(m, rt, m.define("addres", result))
    advance_pc(m)


#: major opcode -> the logical-immediate operation (shifted majors are odd).
_LOGIC_IMM_OPS = {
    24: B.bvor, 25: B.bvor, 26: B.bvxor, 27: B.bvxor, 28: B.bvand, 29: B.bvand,
}


@sail_fn
def execute_logic_imm(m, opcode: Term) -> None:
    major = fld_int(opcode, 31, 26)
    rs = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    imm = _imm_ui_shifted(opcode) if major in (25, 27, 29) else _imm_ui(opcode)
    result = m.define("logres", _LOGIC_IMM_OPS[major](rGPR(m, rs), imm))
    wGPR(m, ra, result)
    if major in (28, 29):  # andi. / andis. are record forms
        _record_cr0(m, result)
    advance_pc(m)


def _compare(m, opcode: Term, b_of, unsigned: bool) -> None:
    """Shared cmp/cmpi body: ``b_of(width)`` supplies the second operand."""
    bf = fld_int(opcode, 25, 23)
    if fld_int(opcode, 22, 22):
        m.unreachable("reserved compare bit 22")
        return
    ell = fld_int(opcode, 21, 21)
    ra = fld_int(opcode, 20, 16)
    if ell:  # L=1: full 64-bit compare
        a, b = rGPR(m, ra), b_of(64)
    else:  # L=0: compare the low 32-bit views
        a, b = B.extract(31, 0, rGPR(m, ra)), b_of(32)
    lt = B.bvult(a, b) if unsigned else B.bvslt(a, b)
    eq = B.eq(a, b)
    gt = B.and_(B.not_(lt), B.not_(eq))
    _write_cmp_cr(m, bf, lt, gt, eq)
    advance_pc(m)


@sail_fn
def execute_cmpi(m, opcode: Term, unsigned: bool = False) -> None:
    ext = P.zero_extend if unsigned else P.sign_extend
    _compare(m, opcode, lambda width: ext(fld(opcode, 15, 0), width), unsigned)


@sail_fn
def execute_cmp(m, opcode: Term, unsigned: bool = False) -> None:
    rb = fld_int(opcode, 15, 11)

    def operand(width: int) -> Term:
        value = rGPR(m, rb)
        return B.extract(31, 0, value) if width == 32 else value

    _compare(m, opcode, operand, unsigned)


@sail_fn
def execute_load(m, opcode: Term, nbytes: int, ds_form: bool = False) -> None:
    rt = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    disp = _imm_ds(opcode) if ds_form else _imm_d(opcode)
    addr = m.define("addr", B.bvadd(rA_or_zero(m, ra), disp))
    data = m.read_mem(addr, nbytes)
    wGPR(m, rt, m.define("loaded", P.zero_extend(data, 64)))
    advance_pc(m)


@sail_fn
def execute_store(m, opcode: Term, nbytes: int, ds_form: bool = False) -> None:
    rs = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    disp = _imm_ds(opcode) if ds_form else _imm_d(opcode)
    addr = m.define("addr", B.bvadd(rA_or_zero(m, ra), disp))
    data = rGPR(m, rs)
    m.write_mem(addr, B.extract(8 * nbytes - 1, 0, data), nbytes)
    advance_pc(m)


# -- branches ----------------------------------------------------------------


def _branch_condition(m, bo: int, bi: int) -> Term | None:
    """The taken-condition of a BO/BI pair, or None when unconditional.

    Decrements CTR when BO asks for it (always, taken or not); the CTR
    test reads the *new* value, per the ISA.
    """
    ignore_cond = bool(bo & 0b10000)
    cond_sense = bool(bo & 0b01000)
    no_ctr = bool(bo & 0b00100)
    ctr_sense = bool(bo & 0b00010)
    conds = []
    if not no_ctr:
        ctr = m.define("ctr", B.bvsub(m.read_reg(CTR), B.bv(1, 64)))
        m.write_reg(CTR, ctr)
        zero = B.eq(ctr, B.bv(0, 64))
        conds.append(zero if ctr_sense else B.not_(zero))
    if not ignore_cond:
        crf = m.read_reg(cr_field(bi >> 2))
        bit = P.bit(crf, 3 - (bi & 3))  # BI counts LT,GT,EQ,SO from the MSB
        conds.append(B.eq(bit, B.bv(1 if cond_sense else 0, 1)))
    if not conds:
        return None
    cond = conds[0]
    for extra in conds[1:]:
        cond = B.and_(cond, extra)
    return cond


def _conditional_branch(m, bo: int, bi: int, pc: Term, target: Term) -> None:
    cond = _branch_condition(m, bo, bi)
    if cond is None:
        m.write_reg(PC, target)
    elif m.branch(cond, "branch taken"):
        m.write_reg(PC, target)
    else:
        advance_pc(m, pc)


@sail_fn
def execute_b(m, opcode: Term) -> None:
    if fld_int(opcode, 1, 1):
        m.unreachable("absolute branches not modelled")
        return
    pc = m.read_reg(PC)
    if fld_int(opcode, 0, 0):
        m.write_reg(LR, B.bvadd(pc, B.bv(4, 64)))
    m.write_reg(PC, m.define("target", B.bvadd(pc, _imm_li(opcode))))


@sail_fn
def execute_bc(m, opcode: Term) -> None:
    if fld_int(opcode, 1, 1):
        m.unreachable("absolute branches not modelled")
        return
    bo = fld_int(opcode, 25, 21)
    bi = fld_int(opcode, 20, 16)
    pc = m.read_reg(PC)
    if fld_int(opcode, 0, 0):
        # LK writes CIA+4 to LR whether or not the branch is taken.
        m.write_reg(LR, B.bvadd(pc, B.bv(4, 64)))
    target = m.define("target", B.bvadd(pc, _imm_ds(opcode)))
    _conditional_branch(m, bo, bi, pc, target)


@sail_fn
def execute_bclr(m, opcode: Term) -> None:
    bo = fld_int(opcode, 25, 21)
    bi = fld_int(opcode, 20, 16)
    pc = m.read_reg(PC)
    # Target comes from the *old* LR even when LK overwrites it.
    target = m.define("target", B.bvand(m.read_reg(LR), B.bv(~0b11, 64)))
    if fld_int(opcode, 0, 0):
        m.write_reg(LR, B.bvadd(pc, B.bv(4, 64)))
    _conditional_branch(m, bo, bi, pc, target)


@sail_fn
def execute_bcctr(m, opcode: Term) -> None:
    bo = fld_int(opcode, 25, 21)
    if not bo & 0b00100:
        m.unreachable("bcctr with CTR decrement is invalid")
        return
    bi = fld_int(opcode, 20, 16)
    pc = m.read_reg(PC)
    target = m.define("target", B.bvand(m.read_reg(CTR), B.bv(~0b11, 64)))
    if fld_int(opcode, 0, 0):
        m.write_reg(LR, B.bvadd(pc, B.bv(4, 64)))
    _conditional_branch(m, bo, bi, pc, target)


@sail_fn
def execute_xl(m, opcode: Term) -> None:
    xo = fld_int(opcode, 10, 1)
    if fld_int(opcode, 15, 11):
        m.unreachable("reserved XL-form BH/reserved bits not modelled")
        return
    if xo == 16:
        execute_bclr(m, opcode)
    elif xo == 528:
        execute_bcctr(m, opcode)
    else:
        m.unreachable(f"XL-form XO {xo} not modelled")


# -- major 31 (X / XO forms) -------------------------------------------------


@sail_fn
def execute_xo_arith(m, opcode: Term, sub: bool = False) -> None:
    rt = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    rb = fld_int(opcode, 15, 11)
    a, b = rGPR(m, ra), rGPR(m, rb)
    result = B.bvsub(b, a) if sub else B.bvadd(a, b)  # subf: RB - RA
    wGPR(m, rt, m.define("alures", result))
    advance_pc(m)


_X_LOGIC_OPS = {28: B.bvand, 316: B.bvxor, 444: B.bvor}


@sail_fn
def execute_x_logic(m, opcode: Term) -> None:
    xo = fld_int(opcode, 10, 1)
    rs = fld_int(opcode, 25, 21)
    ra = fld_int(opcode, 20, 16)
    rb = fld_int(opcode, 15, 11)
    result = _X_LOGIC_OPS[xo](rGPR(m, rs), rGPR(m, rb))
    wGPR(m, ra, m.define("logres", result))
    advance_pc(m)


@sail_fn
def execute_mtspr(m, opcode: Term) -> None:
    rs = fld_int(opcode, 25, 21)
    field = fld_int(opcode, 20, 11)
    spr = FIELD_SPR.get(field)
    if spr is None:
        m.unreachable(f"SPR field {field:#05x} not modelled")
        return
    m.write_reg(Reg(SPR_REGISTERS[spr]), rGPR(m, rs))
    advance_pc(m)


@sail_fn
def execute_mfspr(m, opcode: Term) -> None:
    rt = fld_int(opcode, 25, 21)
    field = fld_int(opcode, 20, 11)
    spr = FIELD_SPR.get(field)
    if spr is None:
        m.unreachable(f"SPR field {field:#05x} not modelled")
        return
    wGPR(m, rt, m.read_reg(Reg(SPR_REGISTERS[spr])))
    advance_pc(m)


@sail_fn
def execute_major31(m, opcode: Term) -> None:
    xo = fld_int(opcode, 10, 1)
    rc = fld_int(opcode, 0, 0)
    if xo in (266, 40):  # add / subf (OE=1 lands outside these XO values)
        if rc:
            m.unreachable("record-form add/subf not modelled")
            return
        execute_xo_arith(m, opcode, sub=(xo == 40))
    elif xo in _X_LOGIC_OPS:
        if rc:
            m.unreachable("record-form logicals not modelled")
            return
        execute_x_logic(m, opcode)
    elif xo in (0, 32):  # cmp / cmpl
        if rc:
            m.unreachable("reserved compare bit 0")
            return
        execute_cmp(m, opcode, unsigned=(xo == 32))
    elif xo == 467:
        if rc:
            m.unreachable("reserved mtspr bit 0")
            return
        execute_mtspr(m, opcode)
    elif xo == 339:
        if rc:
            m.unreachable("reserved mfspr bit 0")
            return
        execute_mfspr(m, opcode)
    else:
        m.unreachable(f"X/XO-form XO {xo} not modelled")


class PpcModel(IsaModel):
    """The ppc64le fixed-point model."""

    name = "ppc64"
    pc_reg = PC
    instr_bytes = 4

    def _declare_registers(self, regfile: RegisterFile) -> None:
        declare_ppc_registers(regfile)

    def parametric_profile(self):
        from ...isla.parametric import ParametricProfile
        from . import decode

        cached = getattr(self, "_parametric_profile", None)
        if cached is not None:
            return cached
        # r0 is a real register, but (RA|0) addressing contexts read it as
        # a literal zero (``rA_or_zero`` special-cases index 0), so it is
        # never a renameable placeholder and canonical indices start at 1.
        self._parametric_profile = ParametricProfile(
            arch=self.name,
            decode_fields=decode.decode_fields,
            reg_prefix="r",
            special_indices=frozenset({0}),
            canonical_indices=(1, 2, 3, 4, 5, 6, 7, 8),
        )
        return self._parametric_profile

    def execute(self, m: MachineInterface, opcode: Term) -> None:
        major = fld_int(opcode, 31, 26)
        if major == 10:
            execute_cmpi(m, opcode, unsigned=True)
        elif major == 11:
            execute_cmpi(m, opcode)
        elif major == 14:
            execute_addi(m, opcode)
        elif major == 15:
            execute_addi(m, opcode, shifted=True)
        elif major == 16:
            execute_bc(m, opcode)
        elif major == 18:
            execute_b(m, opcode)
        elif major == 19:
            execute_xl(m, opcode)
        elif major in _LOGIC_IMM_OPS:
            execute_logic_imm(m, opcode)
        elif major == 31:
            execute_major31(m, opcode)
        elif major == 32:
            execute_load(m, opcode, 4)  # lwz
        elif major == 34:
            execute_load(m, opcode, 1)  # lbz
        elif major == 36:
            execute_store(m, opcode, 4)  # stw
        elif major == 38:
            execute_store(m, opcode, 1)  # stb
        elif major == 58:
            if fld_int(opcode, 1, 0):
                m.unreachable("DS-form load XO not modelled (only ld)")
            else:
                execute_load(m, opcode, 8, ds_form=True)
        elif major == 62:
            if fld_int(opcode, 1, 0):
                m.unreachable("DS-form store XO not modelled (only std)")
            else:
                execute_store(m, opcode, 8, ds_form=True)
        else:
            m.unreachable(f"primary opcode {major} not modelled")
