"""OpenPOWER register file for the modelled fixed-point subset.

Thirty-two 64-bit general-purpose registers (``r0``..``r31`` — unlike
RISC-V's ``x0``, ``r0`` is a real register; only *addressing* contexts
read it as zero), the program counter, the branch facility registers
``CTR`` and ``LR``, the fixed-point exception register ``XER``, and the
condition register as eight independent 4-bit fields ``CR0``..``CR7``.

Bit conventions: we use LSB-0 numbering throughout (the Power ISA manual
numbers bits MSB-0; our bit *i* is the manual's bit ``63 - i`` /
``31 - i``).  Within a 4-bit CR field the manual's order LT, GT, EQ, SO
maps to our bits 3, 2, 1, 0.  ``XER.SO`` (summary overflow) is our XER
bit 31.
"""

from __future__ import annotations

from ...itl.events import Reg
from ...sail.registers import RegisterFile

#: Bit positions inside a 4-bit CR field (LSB-0).
CR_LT = 3
CR_GT = 2
CR_EQ = 1
CR_SO = 0

#: XER summary-overflow bit position (LSB-0).
XER_SO_BIT = 31

#: SPR numbers of the modelled special-purpose registers (mtspr/mfspr).
SPR_XER = 1
SPR_LR = 8
SPR_CTR = 9

#: SPR number -> register name.  The instruction field swaps the two 5-bit
#: halves of the SPR number, so SPR n < 32 appears in bits [20:11] as n<<5.
SPR_REGISTERS = {SPR_XER: "XER", SPR_LR: "LR", SPR_CTR: "CTR"}

#: SPR instruction-field values (spr[4:0] || spr[9:5] swapped halves).
SPR_FIELD = {n: ((n & 0x1F) << 5) | (n >> 5) for n in SPR_REGISTERS}
FIELD_SPR = {field: n for n, field in SPR_FIELD.items()}

PC = Reg("PC")
CTR = Reg("CTR")
LR = Reg("LR")
XER = Reg("XER")


def declare_ppc_registers(regfile: RegisterFile) -> None:
    """Declare the full ppc64 register file we model."""
    for i in range(32):
        regfile.declare(f"r{i}", 64)
    regfile.declare("PC", 64)
    regfile.declare("CTR", 64)
    regfile.declare("LR", 64)
    regfile.declare("XER", 64)
    for i in range(8):
        regfile.declare(f"CR{i}", 4)


def gpr(n: int) -> Reg:
    """The n-th general-purpose register (n in 0..31)."""
    if not 0 <= n <= 31:
        raise ValueError(f"r{n} is not a general-purpose register")
    return Reg(f"r{n}")


def cr_field(n: int) -> Reg:
    """The n-th 4-bit condition-register field (n in 0..7)."""
    if not 0 <= n <= 7:
        raise ValueError(f"CR{n} is not a condition-register field")
    return Reg(f"CR{n}")
