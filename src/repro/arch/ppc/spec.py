"""Declarative ISA specification for the modelled OpenPOWER subset.

This is the input to :mod:`repro.analysis.isaspec`: every decode arm of
:mod:`repro.arch.ppc.decode` restated as an exact bitvector claim, plus
the defined-invalid space (unallocated primary opcodes; reserved minor
encodings fall out as region residuals).  The validator proves the claims
pairwise disjoint and jointly covering, round-trips the encoder packing
symbolically, and grounds everything against the real Python
decoder/encoder on witness and probe words.

The tables here are deliberately *independent* re-derivations from the
Power ISA manual's shapes — agreement with ``decode.py``/``encode.py`` is
proved, not assumed.
"""

from __future__ import annotations

from ...analysis.isaspec import ArmSpec, EncoderSpec, InvalidRegion, IsaSpec
from . import decode, encode

# Primary opcodes (bits [31:26]) of the modelled subset.
_MAJORS = {
    "cmpli": 10, "cmpi": 11, "addi": 14, "addis": 15, "bc": 16, "b": 18,
    "xl": 19, "ori": 24, "oris": 25, "xori": 26, "xoris": 27, "andi": 28,
    "andis": 29, "x": 31, "lwz": 32, "lbz": 34, "stw": 36, "stb": 38,
    "ld": 58, "std": 62,
}

#: Extended opcodes of major 31 (bits [10:1]).
_XOS = {"cmp": 0, "and": 28, "cmpl": 32, "subf": 40, "add": 266,
        "xor": 316, "mfspr": 339, "or": 444, "mtspr": 467}

#: SPR instruction-field values for XER(1), LR(8), CTR(9) — swapped halves.
_SPR_FIELDS = (32, 256, 288)

_MAJOR_MASK = 0x3F << 26


def _major(name: str) -> tuple:
    return ("eq", 31, 26, _MAJORS[name])


def _d_encoder(major: int, top: str, imm: str) -> EncoderSpec:
    return EncoderSpec(
        fixed=major << 26, fixed_mask=_MAJOR_MASK,
        places=((top, 21, 5), ("ra", 16, 5), (imm, 0, 16)),
    )


def _x_encoder(xo: int, places: tuple) -> EncoderSpec:
    return EncoderSpec(
        fixed=(31 << 26) | (xo << 1),
        fixed_mask=_MAJOR_MASK | (0x3FF << 1) | 1,
        places=places,
    )


_GPR3 = (("rt", 21, 5), ("ra", 16, 5), ("rb", 11, 5))
_XL_PLACES = (("bo", 21, 5), ("bi", 16, 5), ("lk", 0, 1))


def _arms() -> tuple:
    arms = [
        # -- D-form arithmetic / logical immediates (whole-major claims) --
        ArmSpec(name="addi", match=(_major("addi"),),
                encoder=_d_encoder(14, "rt", "si")),
        ArmSpec(name="addis", match=(_major("addis"),),
                encoder=_d_encoder(15, "rt", "si")),
        ArmSpec(name="ori", match=(_major("ori"),),
                encoder=_d_encoder(24, "rs", "ui")),
        ArmSpec(name="oris", match=(_major("oris"),),
                encoder=_d_encoder(25, "rs", "ui")),
        ArmSpec(name="xori", match=(_major("xori"),),
                encoder=_d_encoder(26, "rs", "ui")),
        ArmSpec(name="xoris", match=(_major("xoris"),),
                encoder=_d_encoder(27, "rs", "ui")),
        ArmSpec(name="andi", match=(_major("andi"),),
                encoder=_d_encoder(28, "rs", "ui")),
        ArmSpec(name="andis", match=(_major("andis"),),
                encoder=_d_encoder(29, "rs", "ui")),
        # -- D-form compares (bit 22 reserved-zero) --
        ArmSpec(
            name="cmpi",
            match=(_major("cmpi"), ("eq", 22, 22, 0)),
            region=(_major("cmpi"),),
            encoder=EncoderSpec(
                fixed=11 << 26, fixed_mask=_MAJOR_MASK | (1 << 22),
                places=(("bf", 23, 3), ("l", 21, 1), ("ra", 16, 5),
                        ("si", 0, 16)),
            ),
        ),
        ArmSpec(
            name="cmpli",
            match=(_major("cmpli"), ("eq", 22, 22, 0)),
            region=(_major("cmpli"),),
            encoder=EncoderSpec(
                fixed=10 << 26, fixed_mask=_MAJOR_MASK | (1 << 22),
                places=(("bf", 23, 3), ("l", 21, 1), ("ra", 16, 5),
                        ("si", 0, 16)),
            ),
        ),
        # -- D-form loads / stores (whole-major claims) --
        ArmSpec(name="lwz", match=(_major("lwz"),),
                encoder=_d_encoder(32, "rt", "d")),
        ArmSpec(name="lbz", match=(_major("lbz"),),
                encoder=_d_encoder(34, "rt", "d")),
        ArmSpec(name="stw", match=(_major("stw"),),
                encoder=_d_encoder(36, "rs", "d")),
        ArmSpec(name="stb", match=(_major("stb"),),
                encoder=_d_encoder(38, "rs", "d")),
        # -- DS-form doubleword loads / stores (XO bits [1:0] zero) --
        ArmSpec(
            name="ld",
            match=(_major("ld"), ("eq", 1, 0, 0)),
            region=(_major("ld"),),
            encoder=EncoderSpec(
                fixed=58 << 26, fixed_mask=_MAJOR_MASK | 0b11,
                places=(("rt", 21, 5), ("ra", 16, 5), ("ds", 2, 14)),
            ),
        ),
        ArmSpec(
            name="std",
            match=(_major("std"), ("eq", 1, 0, 0)),
            region=(_major("std"),),
            encoder=EncoderSpec(
                fixed=62 << 26, fixed_mask=_MAJOR_MASK | 0b11,
                places=(("rs", 21, 5), ("ra", 16, 5), ("ds", 2, 14)),
            ),
        ),
        # -- branches (relative only: AA == 0) --
        ArmSpec(
            name="b",
            match=(_major("b"), ("eq", 1, 1, 0)),
            region=(_major("b"),),
            encoder=EncoderSpec(
                fixed=18 << 26, fixed_mask=_MAJOR_MASK | (1 << 1),
                places=(("li", 2, 24), ("lk", 0, 1)),
            ),
        ),
        ArmSpec(
            name="bc",
            match=(_major("bc"), ("eq", 1, 1, 0)),
            region=(_major("bc"),),
            encoder=EncoderSpec(
                fixed=16 << 26, fixed_mask=_MAJOR_MASK | (1 << 1),
                places=(("bo", 21, 5), ("bi", 16, 5), ("bd", 2, 14),
                        ("lk", 0, 1)),
            ),
        ),
        ArmSpec(
            name="bclr",
            match=(_major("xl"), ("eq", 15, 11, 0), ("eq", 10, 1, 16)),
            region=(_major("xl"),),
            encoder=EncoderSpec(
                fixed=(19 << 26) | (16 << 1),
                fixed_mask=_MAJOR_MASK | (0x1F << 11) | (0x3FF << 1),
                places=_XL_PLACES,
            ),
        ),
        ArmSpec(
            name="bcctr",
            # BO[2] (bit 23) must be set: bcctr may not decrement CTR.
            match=(_major("xl"), ("eq", 15, 11, 0), ("eq", 10, 1, 528),
                   ("eq", 23, 23, 1)),
            region=(_major("xl"),),
            encoder=EncoderSpec(
                fixed=(19 << 26) | (528 << 1),
                fixed_mask=_MAJOR_MASK | (0x1F << 11) | (0x3FF << 1),
                places=_XL_PLACES,
            ),
        ),
        # -- major 31: XO-form arithmetic (OE and Rc reserved-zero) --
        ArmSpec(
            name="add",
            match=(_major("x"), ("eq", 10, 1, _XOS["add"]), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(_XOS["add"], _GPR3),
        ),
        ArmSpec(
            name="subf",
            match=(_major("x"), ("eq", 10, 1, _XOS["subf"]), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(_XOS["subf"], _GPR3),
        ),
        # -- major 31: X-form logicals (Rc reserved-zero) --
        ArmSpec(
            name="and",
            match=(_major("x"), ("eq", 10, 1, _XOS["and"]), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(
                _XOS["and"], (("rs", 21, 5), ("ra", 16, 5), ("rb", 11, 5))
            ),
        ),
        ArmSpec(
            name="or",
            match=(_major("x"), ("eq", 10, 1, _XOS["or"]), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(
                _XOS["or"], (("rs", 21, 5), ("ra", 16, 5), ("rb", 11, 5))
            ),
        ),
        ArmSpec(
            name="xor",
            match=(_major("x"), ("eq", 10, 1, _XOS["xor"]), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(
                _XOS["xor"], (("rs", 21, 5), ("ra", 16, 5), ("rb", 11, 5))
            ),
        ),
        # -- major 31: X-form compares (bit 22 and Rc reserved-zero) --
        ArmSpec(
            name="cmp",
            match=(_major("x"), ("eq", 10, 1, _XOS["cmp"]),
                   ("eq", 22, 22, 0), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=EncoderSpec(
                fixed=(31 << 26) | (_XOS["cmp"] << 1),
                fixed_mask=_MAJOR_MASK | (1 << 22) | (0x3FF << 1) | 1,
                places=(("bf", 23, 3), ("l", 21, 1), ("ra", 16, 5),
                        ("rb", 11, 5)),
            ),
        ),
        ArmSpec(
            name="cmpl",
            match=(_major("x"), ("eq", 10, 1, _XOS["cmpl"]),
                   ("eq", 22, 22, 0), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=EncoderSpec(
                fixed=(31 << 26) | (_XOS["cmpl"] << 1),
                fixed_mask=_MAJOR_MASK | (1 << 22) | (0x3FF << 1) | 1,
                places=(("bf", 23, 3), ("l", 21, 1), ("ra", 16, 5),
                        ("rb", 11, 5)),
            ),
        ),
        # -- major 31: SPR moves (only XER/LR/CTR modelled) --
        ArmSpec(
            name="mtspr",
            match=(_major("x"), ("eq", 10, 1, _XOS["mtspr"]),
                   ("in", 20, 11, _SPR_FIELDS), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(
                _XOS["mtspr"], (("rs", 21, 5), ("spr", 11, 10))
            ),
        ),
        ArmSpec(
            name="mfspr",
            match=(_major("x"), ("eq", 10, 1, _XOS["mfspr"]),
                   ("in", 20, 11, _SPR_FIELDS), ("eq", 0, 0, 0)),
            region=(_major("x"),),
            encoder=_x_encoder(
                _XOS["mfspr"], (("rt", 21, 5), ("spr", 11, 10))
            ),
        ),
    ]
    return tuple(arms)


def _layouts() -> dict:
    d = decode
    return {
        "addi": (d._D_ARITH,), "addis": (d._D_ARITH,),
        "ori": (d._D_LOGIC,), "oris": (d._D_LOGIC,),
        "xori": (d._D_LOGIC,), "xoris": (d._D_LOGIC,),
        "andi": (d._D_LOGIC,), "andis": (d._D_LOGIC,),
        "cmpi": (d._D_CMP,), "cmpli": (d._D_CMP,),
        "cmp": (d._X_CMP,), "cmpl": (d._X_CMP,),
        "lwz": (d._D_LOAD,), "lbz": (d._D_LOAD,),
        "stw": (d._D_STORE,), "stb": (d._D_STORE,),
        "ld": (d._DS_LOAD,), "std": (d._DS_STORE,),
        "b": (d._I_FORM,), "bc": (d._B_FORM,),
        "bclr": (d._XL_FORM,), "bcctr": (d._XL_FORM,),
        "add": (d._XO_FORM,), "subf": (d._XO_FORM,),
        "and": (d._X_LOGIC,), "or": (d._X_LOGIC,), "xor": (d._X_LOGIC,),
        "mtspr": (d._X_MTSPR,), "mfspr": (d._X_MFSPR,),
    }


def _probes() -> dict:
    e = encode
    return {
        "addi": (e.addi(3, 4, -5), e.li(5, 100), e.addi(0, 1, 32767)),
        "addis": (e.addis(3, 4, 17), e.lis(6, -1)),
        "ori": (e.ori(3, 4, 0xFFFF), e.nop()),
        "oris": (e.oris(5, 6, 1),),
        "xori": (e.xori(7, 8, 0xF0F0),),
        "xoris": (e.xoris(9, 10, 0x8000),),
        "andi": (e.andi_(11, 12, 0xFF),),
        "andis": (e.andis_(13, 14, 3),),
        "cmpi": (e.cmpdi(0, 3, -1), e.cmpwi(7, 4, 42)),
        "cmpli": (e.cmpldi(1, 5, 9), e.cmplwi(2, 6, 0xFFFF)),
        "cmp": (e.cmpd(0, 3, 4), e.cmpw(3, 5, 6)),
        "cmpl": (e.cmpld(1, 7, 8), e.cmplw(4, 9, 10)),
        "lwz": (e.lwz(3, 4, 8), e.lwz(5, 0, -4)),
        "lbz": (e.lbz(6, 7, 1),),
        "stw": (e.stw(8, 9, 12),),
        "stb": (e.stb(10, 11, -3),),
        "ld": (e.ld(3, 4, 16), e.ld(5, 6, -8)),
        "std": (e.std(7, 8, 24),),
        "b": (e.b(8), e.bl(-12), e.b(0)),
        "bc": (e.bdnz(-8), e.beq(0, 12), e.bne(2, -16), e.bc(20, 1, 4),
               e.bcl(16, 0, 8)),
        "bclr": (e.blr(), e.blrl(), e.bclr(12, 2)),
        "bcctr": (e.bctr(), e.bctrl(), e.bcctr(12, 6)),
        "add": (e.add(3, 4, 5),),
        "subf": (e.subf(6, 7, 8),),
        "and": (e.and_(9, 10, 11),),
        "or": (e.or_(12, 13, 14), e.mr(15, 16)),
        "xor": (e.xor(17, 18, 19),),
        "mtspr": (e.mtctr(3), e.mtlr(4), e.mtxer(5)),
        "mfspr": (e.mfctr(6), e.mflr(7), e.mfxer(8)),
    }


def build_spec() -> IsaSpec:
    return IsaSpec(
        arch="ppc",
        arms=_arms(),
        invalid=(
            InvalidRegion(
                name="unallocated_major",
                clauses=(("notin", 31, 26, tuple(sorted(_MAJORS.values()))),),
            ),
        ),
        layouts=_layouts(),
        reg_count=32,
        decode_arm=decode.decode_arm,
        decode_fields=decode.decode_fields,
        invalid_exc=decode.UnknownInstruction,
        probes=_probes(),
        coverage_shard=(31, 26),
    )
