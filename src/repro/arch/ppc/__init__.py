"""OpenPOWER (ppc64, little-endian) fixed-point subset."""

from .model import PpcModel
from . import encode

__all__ = ["PpcModel", "encode"]
