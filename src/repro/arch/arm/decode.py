"""A64 decoder / disassembler for the modelled instruction subset.

Produces objdump-style mnemonics for the opcodes the model executes, used by
the frontend's annotated listings and by error messages.  The decoder is
deliberately independent of the encoder (separate tables), so
encode→decode roundtrip tests exercise both.
"""

from __future__ import annotations

from .regs import ENCODING_TO_SYSREG

COND_NAMES = [
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
]


def _x(n: int, sf: int = 1) -> str:
    prefix = "x" if sf else "w"
    if n == 31:
        return f"{prefix}zr"
    return f"{prefix}{n}"


def _sp_or_x(n: int, sf: int = 1) -> str:
    if n == 31:
        return "sp" if sf else "wsp"
    return _x(n, sf)


def _simm(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _f(op: int, hi: int, lo: int) -> int:
    return (op >> lo) & ((1 << (hi - lo + 1)) - 1)


class UnknownInstruction(Exception):
    """The opcode is outside the modelled subset."""


def disassemble(op: int) -> str:
    """Decode one 32-bit opcode to a mnemonic string."""
    for matcher in _DECODERS:
        text = matcher(op)
        if text is not None:
            return text
    raise UnknownInstruction(f"{op:#010x}")


def try_disassemble(op: int) -> str:
    try:
        return disassemble(op)
    except UnknownInstruction:
        return f".word {op:#010x}"


def decode_arm(op: int) -> str:
    """The name of the decoder arm that claims ``op`` (e.g. ``"addsub_imm"``).

    The assembler's round-trip tests use this to assert that their generator
    reaches every arm of the decoder.
    """
    for matcher in _DECODERS:
        if matcher(op) is not None:
            return matcher.__name__.lstrip("_")
    raise UnknownInstruction(f"{op:#010x}")


# -- decoder clauses ----------------------------------------------------------


def _addsub_imm(op: int) -> str | None:
    if _f(op, 28, 23) != 0b100010:
        return None
    sf, is_sub, s = _f(op, 31, 31), _f(op, 30, 30), _f(op, 29, 29)
    imm12, sh = _f(op, 21, 10), _f(op, 22, 22)
    # A shifted zero would print identically to an unshifted zero; spell out
    # the shift in that one degenerate case so the text stays invertible.
    imm = f"#{imm12}, lsl #12" if sh and not imm12 else f"#{imm12 << (12 if sh else 0)}"
    rn, rd = _f(op, 9, 5), _f(op, 4, 0)
    if s and rd == 31:
        return f"cmp {_sp_or_x(rn, sf)}, {imm}" if is_sub else f"cmn {_sp_or_x(rn, sf)}, {imm}"
    name = ("sub" if is_sub else "add") + ("s" if s else "")
    rd_s = _x(rd, sf) if s else _sp_or_x(rd, sf)
    return f"{name} {rd_s}, {_sp_or_x(rn, sf)}, {imm}"


def _addsub_reg(op: int) -> str | None:
    if _f(op, 28, 24) != 0b01011 or _f(op, 21, 21) != 0:
        return None
    sf, is_sub, s = _f(op, 31, 31), _f(op, 30, 30), _f(op, 29, 29)
    rm, rn, rd = _f(op, 20, 16), _f(op, 9, 5), _f(op, 4, 0)
    amount = _f(op, 15, 10)
    shift_type = _f(op, 23, 22)
    if shift_type == 0b11:  # reserved
        return None
    shift = ["lsl", "lsr", "asr"][shift_type]
    # "lsr #0" etc. is printed even for a zero amount: it is a different
    # word from the unshifted form and must not share its text.
    suffix = f", {shift} #{amount}" if amount or shift_type else ""
    if s and rd == 31 and is_sub:
        return f"cmp {_x(rn, sf)}, {_x(rm, sf)}{suffix}"
    name = ("sub" if is_sub else "add") + ("s" if s else "")
    return f"{name} {_x(rd, sf)}, {_x(rn, sf)}, {_x(rm, sf)}{suffix}"


def _logical_reg(op: int) -> str | None:
    if _f(op, 28, 24) != 0b01010:
        return None
    sf, opc = _f(op, 31, 31), _f(op, 30, 29)
    invert = _f(op, 21, 21)
    rm, rn, rd = _f(op, 20, 16), _f(op, 9, 5), _f(op, 4, 0)
    amount = _f(op, 15, 10)
    shift_type = _f(op, 23, 22)
    shift = ["lsl", "lsr", "asr", "ror"][shift_type]
    name = [["and", "bic"], ["orr", "orn"], ["eor", "eon"], ["ands", "bics"]][opc][invert]
    suffix = f", {shift} #{amount}" if amount or shift_type else ""
    if name == "orr" and rn == 31 and not amount and not shift_type:
        return f"mov {_x(rd, sf)}, {_x(rm, sf)}"
    if name == "ands" and rd == 31:
        return f"tst {_x(rn, sf)}, {_x(rm, sf)}{suffix}"
    return f"{name} {_x(rd, sf)}, {_x(rn, sf)}, {_x(rm, sf)}{suffix}"


def _logical_imm(op: int) -> str | None:
    if _f(op, 28, 23) != 0b100100:
        return None
    from .model import decode_bit_masks

    sf, opc = _f(op, 31, 31), _f(op, 30, 29)
    immn, immr, imms = _f(op, 22, 22), _f(op, 21, 16), _f(op, 15, 10)
    rn, rd = _f(op, 9, 5), _f(op, 4, 0)
    if not sf and immn:
        return None  # reserved for 32-bit
    # Reject non-canonical rotations (immr bits above the element size are
    # ignored by DecodeBitMasks, so accepting them would alias encodings).
    combined = (immn << 6) | (~imms & 0x3F)
    esize = 1 << (combined.bit_length() - 1) if combined else 0
    if esize < 2 or immr >= esize:
        return None
    try:
        value = decode_bit_masks(immn, imms, immr, 64 if sf else 32)
    except ValueError:
        return None
    name = ["and", "orr", "eor", "ands"][opc]
    if name == "ands" and rd == 31:
        return f"tst {_x(rn, sf)}, #{value:#x}"
    return f"{name} {_x(rd, sf)}, {_x(rn, sf)}, #{value:#x}"


def _movewide(op: int) -> str | None:
    if _f(op, 28, 23) != 0b100101:
        return None
    sf, opc = _f(op, 31, 31), _f(op, 30, 29)
    hw, imm16, rd = _f(op, 22, 21), _f(op, 20, 5), _f(op, 4, 0)
    name = {0b00: "movn", 0b10: "movz", 0b11: "movk"}.get(opc)
    if name is None:
        return None
    shift = f", lsl #{hw * 16}" if hw else ""
    if name == "movz" and not hw:
        return f"mov {_x(rd, sf)}, #{imm16:#x}"
    return f"{name} {_x(rd, sf)}, #{imm16:#x}{shift}"


def _bitfield(op: int) -> str | None:
    if _f(op, 28, 23) != 0b100110:
        return None
    sf, opc = _f(op, 31, 31), _f(op, 30, 29)
    immr, imms = _f(op, 21, 16), _f(op, 15, 10)
    rn, rd = _f(op, 9, 5), _f(op, 4, 0)
    if _f(op, 22, 22) != sf:  # N must equal sf for valid encodings
        return None
    if not sf and (immr >= 32 or imms >= 32):
        return None
    width = 64 if sf else 32
    if opc == 0b10:  # UBFM aliases
        if imms == width - 1:
            return f"lsr {_x(rd, sf)}, {_x(rn, sf)}, #{immr}"
        if imms + 1 == immr:
            return f"lsl {_x(rd, sf)}, {_x(rn, sf)}, #{width - immr}"
        if not sf and immr == 0 and imms == 7:
            return f"uxtb {_x(rd, 0)}, {_x(rn, 0)}"
        return f"ubfm {_x(rd, sf)}, {_x(rn, sf)}, #{immr}, #{imms}"
    if opc == 0b00:
        if imms == width - 1:
            return f"asr {_x(rd, sf)}, {_x(rn, sf)}, #{immr}"
        return f"sbfm {_x(rd, sf)}, {_x(rn, sf)}, #{immr}, #{imms}"
    return None


def _csel(op: int) -> str | None:
    if _f(op, 28, 21) != 0b11010100 or _f(op, 29, 29) or _f(op, 11, 11):
        return None
    sf, neg = _f(op, 31, 31), _f(op, 30, 30)
    rm, cond = _f(op, 20, 16), _f(op, 15, 12)
    o2, rn, rd = _f(op, 10, 10), _f(op, 9, 5), _f(op, 4, 0)
    name = [["csel", "csinc"], ["csinv", "csneg"]][neg][o2]
    if name == "csinc" and rn == 31 and rm == 31:
        return f"cset {_x(rd, sf)}, {COND_NAMES[cond ^ 1]}"
    return f"{name} {_x(rd, sf)}, {_x(rn, sf)}, {_x(rm, sf)}, {COND_NAMES[cond]}"


def _ccmp(op: int) -> str | None:
    if _f(op, 29, 21) != 0b1_11010010 or _f(op, 10, 10) or _f(op, 4, 4):
        return None
    sf = _f(op, 31, 31)
    name = "ccmp" if _f(op, 30, 30) else "ccmn"
    rn, nzcv, cond = _f(op, 9, 5), _f(op, 3, 0), COND_NAMES[_f(op, 15, 12)]
    if _f(op, 11, 11):
        return f"{name} {_x(rn, sf)}, #{_f(op, 20, 16)}, #{nzcv}, {cond}"
    return f"{name} {_x(rn, sf)}, {_x(_f(op, 20, 16), sf)}, #{nzcv}, {cond}"


def _div(op: int) -> str | None:
    if _f(op, 30, 21) != 0b00_11010110 or _f(op, 15, 11) != 0b00001:
        return None
    sf = _f(op, 31, 31)
    name = "sdiv" if _f(op, 10, 10) else "udiv"
    return (
        f"{name} {_x(_f(op, 4, 0), sf)}, {_x(_f(op, 9, 5), sf)}, "
        f"{_x(_f(op, 20, 16), sf)}"
    )


def _rbit(op: int) -> str | None:
    if _f(op, 30, 10) != 0b1_0_11010110_00000_000000:
        return None
    sf = _f(op, 31, 31)
    return f"rbit {_x(_f(op, 4, 0), sf)}, {_x(_f(op, 9, 5), sf)}"


_LDST_NAMES = {
    (0b00, 0b00): "strb", (0b00, 0b01): "ldrb", (0b00, 0b10): "ldrsb",
    (0b01, 0b00): "strh", (0b01, 0b01): "ldrh", (0b01, 0b10): "ldrsh",
    (0b10, 0b00): "str", (0b10, 0b01): "ldr", (0b10, 0b10): "ldrsw",
    (0b11, 0b00): "str", (0b11, 0b01): "ldr",
}

# Unscaled (imm9, no-writeback) forms get distinct objdump-style names so a
# scaled "ldrh w0, [x1, #2]" and its unscaled twin never share text.
_UNSCALED_NAMES = {
    "ldr": "ldur", "str": "stur", "ldrb": "ldurb", "strb": "sturb",
    "ldrh": "ldurh", "strh": "sturh", "ldrsb": "ldursb",
    "ldrsh": "ldursh", "ldrsw": "ldursw",
}


def _ldst_imm(op: int) -> str | None:
    if _f(op, 29, 24) != 0b111001:
        return None
    size, opc = _f(op, 31, 30), _f(op, 23, 22)
    name = _LDST_NAMES.get((size, opc))
    if name is None:
        return None
    rt, rn = _f(op, 4, 0), _f(op, 9, 5)
    offset = _f(op, 21, 10) << size
    sf = 1 if size == 0b11 or name.endswith("sw") or opc == 0b10 else 0
    off = f", #{offset}" if offset else ""
    return f"{name} {_x(rt, sf)}, [{_sp_or_x(rn)}{off}]"


def _ldst_reg(op: int) -> str | None:
    if _f(op, 29, 24) != 0b111000 or _f(op, 21, 21) != 1 or _f(op, 11, 10) != 0b10:
        return None
    size, opc = _f(op, 31, 30), _f(op, 23, 22)
    name = _LDST_NAMES.get((size, opc))
    if name is None:
        return None
    rt, rn, rm = _f(op, 4, 0), _f(op, 9, 5), _f(op, 20, 16)
    s = _f(op, 12, 12)
    option = _f(op, 15, 13)
    sf = 1 if size == 0b11 else 0
    ext = {0b011: "lsl", 0b010: "uxtw", 0b110: "sxtw"}.get(option)
    if ext is None:  # reserved extend options
        return None
    # S chooses between shift #0 and no shift — distinct words, so the
    # amount is printed whenever S is set, even when it is zero.
    amount = f" #{size}" if s else ""
    mod = f", {ext}{amount}" if s or ext != "lsl" else ""
    return f"{name} {_x(rt, sf)}, [{_sp_or_x(rn)}, {_x(rm)}{mod}]"


def _ldst_imm9(op: int) -> str | None:
    if _f(op, 29, 24) != 0b111000 or _f(op, 21, 21) != 0:
        return None
    mode = _f(op, 11, 10)
    if mode == 0b10:
        return None
    size, opc = _f(op, 31, 30), _f(op, 23, 22)
    name = _LDST_NAMES.get((size, opc))
    if name is None:
        return None
    rt, rn = _f(op, 4, 0), _f(op, 9, 5)
    imm = _simm(_f(op, 20, 12), 9)
    sf = 1 if size == 0b11 or opc == 0b10 else 0
    if mode == 0b00:
        base = _UNSCALED_NAMES.get(name, name)
        return f"{base} {_x(rt, sf)}, [{_sp_or_x(rn)}, #{imm}]"
    if mode == 0b01:
        return f"{name} {_x(rt, sf)}, [{_sp_or_x(rn)}], #{imm}"
    return f"{name} {_x(rt, sf)}, [{_sp_or_x(rn)}, #{imm}]!"


def _ldst_pair(op: int) -> str | None:
    if _f(op, 29, 26) != 0b1010 or _f(op, 31, 30) not in (0b00, 0b10):
        return None
    mode = _f(op, 25, 23)
    if mode not in (0b001, 0b010, 0b011):
        return None
    sf = 1 if _f(op, 31, 30) == 0b10 else 0
    name = "ldp" if _f(op, 22, 22) else "stp"
    scale = 3 if sf else 2
    imm = _simm(_f(op, 21, 15), 7) << scale
    rt, rt2, rn = _f(op, 4, 0), _f(op, 14, 10), _f(op, 9, 5)
    regs = f"{_x(rt, sf)}, {_x(rt2, sf)}"
    if mode == 0b001:
        return f"{name} {regs}, [{_sp_or_x(rn)}], #{imm}"
    if mode == 0b011:
        return f"{name} {regs}, [{_sp_or_x(rn)}, #{imm}]!"
    off = f", #{imm}" if imm else ""
    return f"{name} {regs}, [{_sp_or_x(rn)}{off}]"


def _adr(op: int) -> str | None:
    if _f(op, 28, 24) != 0b10000:
        return None
    imm = _simm((_f(op, 23, 5) << 2) | _f(op, 30, 29), 21)
    rd = _f(op, 4, 0)
    if _f(op, 31, 31):
        return f"adrp {_x(rd)}, #{imm * 4096}"
    return f"adr {_x(rd)}, #{imm}"


def _madd(op: int) -> str | None:
    if _f(op, 30, 21) != 0b00_11011_000:
        return None
    sf = _f(op, 31, 31)
    rm, ra = _f(op, 20, 16), _f(op, 14, 10)
    rn, rd = _f(op, 9, 5), _f(op, 4, 0)
    name = "msub" if _f(op, 15, 15) else "madd"
    if ra == 31 and name == "madd":
        return f"mul {_x(rd, sf)}, {_x(rn, sf)}, {_x(rm, sf)}"
    return f"{name} {_x(rd, sf)}, {_x(rn, sf)}, {_x(rm, sf)}, {_x(ra, sf)}"


def _cbz(op: int) -> str | None:
    if _f(op, 30, 25) != 0b011010:
        return None
    sf, is_nz = _f(op, 31, 31), _f(op, 24, 24)
    offset = _simm(_f(op, 23, 5), 19) * 4
    name = "cbnz" if is_nz else "cbz"
    return f"{name} {_x(_f(op, 4, 0), sf)}, #{offset}"


def _tbz(op: int) -> str | None:
    if _f(op, 30, 25) != 0b011011:
        return None
    bit = (_f(op, 31, 31) << 5) | _f(op, 23, 19)
    offset = _simm(_f(op, 18, 5), 14) * 4
    name = "tbnz" if _f(op, 24, 24) else "tbz"
    sf = 1 if bit >= 32 else 0
    return f"{name} {_x(_f(op, 4, 0), sf)}, #{bit}, #{offset}"


def _bcond(op: int) -> str | None:
    if _f(op, 31, 24) != 0b01010100 or _f(op, 4, 4):
        return None
    offset = _simm(_f(op, 23, 5), 19) * 4
    return f"b.{COND_NAMES[_f(op, 3, 0)]} #{offset}"


def _b_bl(op: int) -> str | None:
    if _f(op, 30, 26) != 0b00101:
        return None
    offset = _simm(_f(op, 25, 0), 26) * 4
    return f"{'bl' if _f(op, 31, 31) else 'b'} #{offset}"


def _br_blr_ret(op: int) -> str | None:
    if _f(op, 31, 25) != 0b1101011 or _f(op, 20, 10) != 0b11111_000000 or _f(op, 4, 0):
        return None
    opc, rn = _f(op, 24, 21), _f(op, 9, 5)
    if opc == 0b0000:
        return f"br {_x(rn)}"
    if opc == 0b0001:
        return f"blr {_x(rn)}"
    if opc == 0b0010:
        return "ret" if rn == 30 else f"ret {_x(rn)}"
    if opc == 0b0100 and rn == 31:
        return "eret"
    return None


def _hint(op: int) -> str | None:
    if _f(op, 31, 12) != 0b11010101000000110010 or _f(op, 4, 0) != 0b11111:
        return None
    return "nop" if op == 0xD503201F else f"hint #{_f(op, 11, 5)}"


def _sysreg(op: int) -> str | None:
    if _f(op, 31, 22) != 0b1101010100 or _f(op, 20, 20) != 1:
        return None
    is_read = _f(op, 21, 21)
    enc = (2 + _f(op, 19, 19), _f(op, 18, 16), _f(op, 15, 12), _f(op, 11, 8), _f(op, 7, 5))
    rt = _f(op, 4, 0)
    name = ENCODING_TO_SYSREG.get(enc)
    if name is None:
        sysname = f"s{enc[0]}_{enc[1]}_c{enc[2]}_c{enc[3]}_{enc[4]}"
    else:
        sysname = name.lower()
    if is_read:
        return f"mrs {_x(rt)}, {sysname}"
    return f"msr {sysname}, {_x(rt)}"


def _hvc(op: int) -> str | None:
    if _f(op, 31, 21) != 0b11010100_000:
        return None
    low = _f(op, 4, 0)
    if low == 0b00010:
        return f"hvc #{_f(op, 20, 5):#x}"
    if low == 0b00001:
        return f"svc #{_f(op, 20, 5):#x}"
    return None


_DECODERS = [
    _addsub_imm, _addsub_reg, _logical_reg, _logical_imm, _movewide,
    _bitfield, _csel, _ccmp, _div, _rbit, _ldst_imm, _ldst_reg, _ldst_imm9, _ldst_pair,
    _adr, _madd, _cbz, _tbz, _bcond, _b_bl, _br_blr_ret, _hint, _sysreg, _hvc,
]

#: Every decode-arm name, in decoder priority order.  The architecture
#: registry exposes this as the authoritative arm list for coverage maps.
DECODE_ARMS = tuple(fn.__name__.lstrip("_") for fn in _DECODERS)


# -- structured operand fields ------------------------------------------------
#
# Per-arm bit layouts as (name, hi, lo, kind) tuples, MSB-first, tiling all
# 32 bits.  Kinds:
#
# - ``reg``    an operand register index (renameable across a family);
# - ``imm``    an immediate the model reads *symbolically* (``fld``) — only
#              these may stay free in a parametric family build;
# - ``struct`` everything else: pattern bits, sub-opcode selectors, and any
#              immediate the model consumes as a Python int (``fld_int``),
#              which therefore pins the family.
#
# The split between ``imm`` and ``struct`` mirrors ``arch.arm.model``: only
# addsub_imm's imm12 and movewide's imm16 are read via symbolic ``fld``; every
# other immediate feeds Python-side arithmetic (PC-relative offsets, rotation
# amounts, ...) and must be concrete per family.

_FIELD_TABLES: dict[str, tuple] = {
    "addsub_imm": (
        ("sf", 31, 31, "struct"), ("op", 30, 30, "struct"),
        ("s", 29, 29, "struct"), ("fixed", 28, 23, "struct"),
        ("sh", 22, 22, "struct"), ("imm12", 21, 10, "imm"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "addsub_reg": (
        ("sf", 31, 31, "struct"), ("op", 30, 30, "struct"),
        ("s", 29, 29, "struct"), ("fixed", 28, 24, "struct"),
        ("shift", 23, 22, "struct"), ("fixed21", 21, 21, "struct"),
        ("rm", 20, 16, "reg"), ("imm6", 15, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "logical_reg": (
        ("sf", 31, 31, "struct"), ("opc", 30, 29, "struct"),
        ("fixed", 28, 24, "struct"), ("shift", 23, 22, "struct"),
        ("n", 21, 21, "struct"), ("rm", 20, 16, "reg"),
        ("imm6", 15, 10, "struct"), ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "logical_imm": (
        ("sf", 31, 31, "struct"), ("opc", 30, 29, "struct"),
        ("fixed", 28, 23, "struct"), ("n", 22, 22, "struct"),
        ("immr", 21, 16, "struct"), ("imms", 15, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "movewide": (
        ("sf", 31, 31, "struct"), ("opc", 30, 29, "struct"),
        ("fixed", 28, 23, "struct"), ("hw", 22, 21, "struct"),
        ("imm16", 20, 5, "imm"), ("rd", 4, 0, "reg"),
    ),
    "bitfield": (
        ("sf", 31, 31, "struct"), ("opc", 30, 29, "struct"),
        ("fixed", 28, 23, "struct"), ("n", 22, 22, "struct"),
        ("immr", 21, 16, "struct"), ("imms", 15, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "csel": (
        ("sf", 31, 31, "struct"), ("neg", 30, 30, "struct"),
        ("fixed29", 29, 29, "struct"), ("fixed", 28, 21, "struct"),
        ("rm", 20, 16, "reg"), ("cond", 15, 12, "struct"),
        ("fixed11", 11, 11, "struct"), ("o2", 10, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "div": (
        ("sf", 31, 31, "struct"), ("fixed", 30, 21, "struct"),
        ("rm", 20, 16, "reg"), ("fixed2", 15, 11, "struct"),
        ("o1", 10, 10, "struct"), ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "rbit": (
        ("sf", 31, 31, "struct"), ("fixed", 30, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "ldst_imm": (
        ("size", 31, 30, "struct"), ("fixed", 29, 24, "struct"),
        ("opc", 23, 22, "struct"), ("imm12", 21, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rt", 4, 0, "reg"),
    ),
    "ldst_reg": (
        ("size", 31, 30, "struct"), ("fixed", 29, 24, "struct"),
        ("opc", 23, 22, "struct"), ("fixed21", 21, 21, "struct"),
        ("rm", 20, 16, "reg"), ("option", 15, 13, "struct"),
        ("s", 12, 12, "struct"), ("fixed2", 11, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rt", 4, 0, "reg"),
    ),
    "ldst_imm9": (
        ("size", 31, 30, "struct"), ("fixed", 29, 24, "struct"),
        ("opc", 23, 22, "struct"), ("fixed21", 21, 21, "struct"),
        ("imm9", 20, 12, "struct"), ("mode", 11, 10, "struct"),
        ("rn", 9, 5, "reg"), ("rt", 4, 0, "reg"),
    ),
    "ldst_pair": (
        ("opc", 31, 30, "struct"), ("fixed", 29, 26, "struct"),
        ("mode", 25, 23, "struct"), ("l", 22, 22, "struct"),
        ("imm7", 21, 15, "struct"), ("rt2", 14, 10, "reg"),
        ("rn", 9, 5, "reg"), ("rt", 4, 0, "reg"),
    ),
    "adr": (
        ("page", 31, 31, "struct"), ("immlo", 30, 29, "struct"),
        ("fixed", 28, 24, "struct"), ("immhi", 23, 5, "struct"),
        ("rd", 4, 0, "reg"),
    ),
    "madd": (
        ("sf", 31, 31, "struct"), ("fixed", 30, 21, "struct"),
        ("rm", 20, 16, "reg"), ("o0", 15, 15, "struct"),
        ("ra", 14, 10, "reg"), ("rn", 9, 5, "reg"), ("rd", 4, 0, "reg"),
    ),
    "cbz": (
        ("sf", 31, 31, "struct"), ("fixed", 30, 25, "struct"),
        ("op", 24, 24, "struct"), ("imm19", 23, 5, "struct"),
        ("rt", 4, 0, "reg"),
    ),
    "tbz": (
        ("b5", 31, 31, "struct"), ("fixed", 30, 25, "struct"),
        ("op", 24, 24, "struct"), ("b40", 23, 19, "struct"),
        ("imm14", 18, 5, "struct"), ("rt", 4, 0, "reg"),
    ),
    "bcond": (
        ("fixed", 31, 24, "struct"), ("imm19", 23, 5, "struct"),
        ("fixed4", 4, 4, "struct"), ("cond", 3, 0, "struct"),
    ),
    "b_bl": (
        ("op", 31, 31, "struct"), ("fixed", 30, 26, "struct"),
        ("imm26", 25, 0, "struct"),
    ),
    "br_blr_ret": (
        ("fixed", 31, 25, "struct"), ("opc", 24, 21, "struct"),
        ("fixed2", 20, 10, "struct"), ("rn", 9, 5, "reg"),
        ("fixed3", 4, 0, "struct"),
    ),
    "hint": (
        ("fixed", 31, 12, "struct"), ("crm_op2", 11, 5, "struct"),
        ("fixed2", 4, 0, "struct"),
    ),
    "sysreg": (
        ("fixed", 31, 22, "struct"), ("l", 21, 21, "struct"),
        ("fixed20", 20, 20, "struct"), ("enc", 19, 5, "struct"),
        ("rt", 4, 0, "reg"),
    ),
    "hvc": (
        ("fixed", 31, 21, "struct"), ("imm16", 20, 5, "struct"),
        ("low", 4, 0, "struct"),
    ),
}


def _ccmp_fields(op: int) -> tuple:
    # Bit 11 selects the register vs immediate form: bits [20:16] are an
    # operand register only in the register form.
    rm_kind = "struct" if _f(op, 11, 11) else "reg"
    return (
        ("sf", 31, 31, "struct"), ("op", 30, 30, "struct"),
        ("fixed", 29, 21, "struct"), ("rm_or_imm", 20, 16, rm_kind),
        ("cond", 15, 12, "struct"), ("e", 11, 11, "struct"),
        ("fixed10", 10, 10, "struct"), ("rn", 9, 5, "reg"),
        ("o3", 4, 4, "struct"), ("nzcv", 3, 0, "struct"),
    )


def decode_fields(op: int):
    """The decode arm claiming ``op`` plus its structured bit-field layout.

    Returns ``(arm_name, fields)`` where ``fields`` is a tuple of
    ``(name, hi, lo, kind)`` tuples tiling the full 32-bit word MSB-first,
    with ``kind`` one of ``reg`` / ``imm`` / ``struct`` (see the table
    comment above), or ``None`` when the opcode is outside the modelled
    subset.
    """
    for matcher in _DECODERS:
        if matcher(op) is not None:
            arm = matcher.__name__.lstrip("_")
            fields = (
                _ccmp_fields(op) if arm == "ccmp" else _FIELD_TABLES[arm]
            )
            return arm, fields
    return None


def decode_operands(op: int) -> dict[str, int] | None:
    """The operand fields (``reg`` and ``imm`` kinds) of ``op`` as a dict.

    ``None`` when the opcode is outside the modelled subset.
    """
    decoded = decode_fields(op)
    if decoded is None:
        return None
    _, fields = decoded
    return {
        name: _f(op, hi, lo)
        for name, hi, lo, kind in fields
        if kind in ("reg", "imm")
    }
