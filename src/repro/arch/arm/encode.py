"""A64 instruction encoder (assembler).

Produces the 32-bit opcodes the case studies verify.  Register operands are
integers 0..31 (31 = XZR/WZR or SP depending on context, as in the real
encoding).  All encoders return ints; :func:`assemble` packs a sequence into
little-endian bytes.
"""

from __future__ import annotations

from .regs import SYSREG_ENCODINGS

XZR = 31
SP = 31
LR = 30

COND = {
    "eq": 0, "ne": 1, "cs": 2, "hs": 2, "cc": 3, "lo": 3, "mi": 4, "pl": 5,
    "vs": 6, "vc": 7, "hi": 8, "ls": 9, "ge": 10, "lt": 11, "gt": 12,
    "le": 13, "al": 14,
}


def _check_reg(r: int) -> int:
    if not 0 <= r <= 31:
        raise ValueError(f"register out of range: {r}")
    return r


def _check_range(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{what} out of range: {value}")
    return value


def _branch_offset(offset_bytes: int, bits: int) -> int:
    if offset_bytes % 4:
        raise ValueError("branch offset must be a multiple of 4")
    words = offset_bytes // 4
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= words <= hi:
        raise ValueError(f"branch offset {offset_bytes} out of range")
    return words & ((1 << bits) - 1)


# -- arithmetic --------------------------------------------------------------


def add_imm(rd: int, rn: int, imm12: int, sf: int = 1, shift12: bool = False) -> int:
    return (
        (sf << 31) | (0b00100010 << 23) | (int(shift12) << 22)
        | (_check_range(imm12, 12, "imm12") << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def sub_imm(rd: int, rn: int, imm12: int, sf: int = 1) -> int:
    return add_imm(rd, rn, imm12, sf) | (1 << 30)


def adds_imm(rd: int, rn: int, imm12: int, sf: int = 1) -> int:
    return add_imm(rd, rn, imm12, sf) | (1 << 29)


def subs_imm(rd: int, rn: int, imm12: int, sf: int = 1) -> int:
    return add_imm(rd, rn, imm12, sf) | (1 << 30) | (1 << 29)


def cmp_imm(rn: int, imm12: int, sf: int = 1) -> int:
    return subs_imm(XZR, rn, imm12, sf)


def add_reg(rd: int, rn: int, rm: int, sf: int = 1, shift: int = 0, amount: int = 0) -> int:
    return (
        (sf << 31) | (0b0001011 << 24) | (shift << 22)
        | (_check_reg(rm) << 16) | (_check_range(amount, 6, "shift") << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def sub_reg(rd: int, rn: int, rm: int, sf: int = 1) -> int:
    return add_reg(rd, rn, rm, sf) | (1 << 30)


def subs_reg(rd: int, rn: int, rm: int, sf: int = 1) -> int:
    return add_reg(rd, rn, rm, sf) | (1 << 30) | (1 << 29)


def adds_reg(rd: int, rn: int, rm: int, sf: int = 1) -> int:
    return add_reg(rd, rn, rm, sf) | (1 << 29)


def cmp_reg(rn: int, rm: int, sf: int = 1) -> int:
    return subs_reg(XZR, rn, rm, sf)


# -- logical -------------------------------------------------------------------


def _logical_reg(opc: int, rd: int, rn: int, rm: int, sf: int, shift: int, amount: int, invert: int = 0) -> int:
    return (
        (sf << 31) | (opc << 29) | (0b01010 << 24) | (shift << 22) | (invert << 21)
        | (_check_reg(rm) << 16) | (_check_range(amount, 6, "shift") << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def and_reg(rd, rn, rm, sf=1):
    return _logical_reg(0b00, rd, rn, rm, sf, 0, 0)


def orr_reg(rd, rn, rm, sf=1, amount=0, shift=0):
    return _logical_reg(0b01, rd, rn, rm, sf, shift, amount)


def eor_reg(rd, rn, rm, sf=1):
    return _logical_reg(0b10, rd, rn, rm, sf, 0, 0)


def ands_reg(rd, rn, rm, sf=1):
    return _logical_reg(0b11, rd, rn, rm, sf, 0, 0)


def tst_reg(rn, rm, sf=1):
    return ands_reg(XZR, rn, rm, sf)


def mov_reg(rd: int, rm: int, sf: int = 1) -> int:
    """MOV (register) = ORR rd, xzr, rm."""
    return orr_reg(rd, XZR, rm, sf)


def encode_bitmask_immediate(value: int, datasize: int) -> tuple[int, int, int]:
    """Inverse of DecodeBitMasks: find (N, immr, imms) encoding ``value``.

    Raises ValueError when the value is not encodable as a logical immediate.
    """
    from .model import decode_bit_masks

    for esize_log in range(1, 7):
        esize = 1 << esize_log
        if esize > datasize:
            break
        for s in range(esize - 1):
            for r in range(esize):
                immn = 1 if esize == 64 else 0
                imms = ((~(esize * 2 - 1) & 0x3F) | s) & 0x3F
                if esize == 64:
                    imms = s
                try:
                    if decode_bit_masks(immn, imms, r, datasize) == value:
                        return immn, r, imms
                except ValueError:
                    continue
    raise ValueError(f"0x{value:x} is not a logical immediate")


def and_imm(rd: int, rn: int, value: int, sf: int = 1) -> int:
    datasize = 64 if sf else 32
    immn, immr, imms = encode_bitmask_immediate(value, datasize)
    return (
        (sf << 31) | (0b00 << 29) | (0b100100 << 23) | (immn << 22)
        | (immr << 16) | (imms << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def ands_imm(rd: int, rn: int, value: int, sf: int = 1) -> int:
    return and_imm(rd, rn, value, sf) | (0b11 << 29)


def tst_imm(rn: int, value: int, sf: int = 1) -> int:
    return ands_imm(XZR, rn, value, sf)


# -- move wide --------------------------------------------------------------------


def _movewide(opc: int, rd: int, imm16: int, hw: int, sf: int) -> int:
    return (
        (sf << 31) | (opc << 29) | (0b100101 << 23)
        | (_check_range(hw, 2, "hw") << 21)
        | (_check_range(imm16, 16, "imm16") << 5) | _check_reg(rd)
    )


def movz(rd: int, imm16: int, hw: int = 0, sf: int = 1) -> int:
    return _movewide(0b10, rd, imm16, hw, sf)


def movn(rd: int, imm16: int, hw: int = 0, sf: int = 1) -> int:
    return _movewide(0b00, rd, imm16, hw, sf)


def movk(rd: int, imm16: int, hw: int = 0, sf: int = 1) -> int:
    return _movewide(0b11, rd, imm16, hw, sf)


def mov_imm(rd: int, value: int, sf: int = 1) -> int:
    """MOV (wide immediate): MOVZ with an optional 16-bit shift."""
    for hw in range(4 if sf else 2):
        if value == (value & (0xFFFF << (16 * hw))):
            return movz(rd, value >> (16 * hw), hw, sf)
    raise ValueError(f"0x{value:x} not encodable as a single MOVZ")


# -- bitfield ---------------------------------------------------------------------


def ubfm(rd: int, rn: int, immr: int, imms: int, sf: int = 1) -> int:
    n = sf
    return (
        (sf << 31) | (0b10 << 29) | (0b100110 << 23) | (n << 22)
        | (immr << 16) | (imms << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def lsr_imm(rd: int, rn: int, shift: int, sf: int = 1) -> int:
    datasize = 64 if sf else 32
    return ubfm(rd, rn, shift, datasize - 1, sf)


def lsl_imm(rd: int, rn: int, shift: int, sf: int = 1) -> int:
    datasize = 64 if sf else 32
    return ubfm(rd, rn, (datasize - shift) % datasize, datasize - 1 - shift, sf)


def uxtb(rd: int, rn: int) -> int:
    return ubfm(rd, rn, 0, 7, sf=0)


# -- conditional select ----------------------------------------------------------------


def csel(rd: int, rn: int, rm: int, cond: str, sf: int = 1) -> int:
    return (
        (sf << 31) | (0b0011010100 << 21) | (_check_reg(rm) << 16)
        | (COND[cond] << 12) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def csinc(rd: int, rn: int, rm: int, cond: str, sf: int = 1) -> int:
    return csel(rd, rn, rm, cond, sf) | (1 << 10)


def cset(rd: int, cond: str, sf: int = 1) -> int:
    inverted = COND[cond] ^ 1
    code = (
        (sf << 31) | (0b0011010100 << 21) | (XZR << 16)
        | (inverted << 12) | (XZR << 5) | _check_reg(rd) | (1 << 10)
    )
    return code


# -- loads / stores ---------------------------------------------------------------------


def _ldst_imm(size: int, opc: int, rt: int, rn: int, imm: int) -> int:
    scale = size
    if imm % (1 << scale):
        raise ValueError("unscaled immediate offset")
    imm12 = _check_range(imm >> scale, 12, "imm12")
    return (
        (size << 30) | (0b111001 << 24) | (opc << 22) | (imm12 << 10)
        | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def strb_imm(rt, rn, imm=0):
    return _ldst_imm(0b00, 0b00, rt, rn, imm)


def ldrb_imm(rt, rn, imm=0):
    return _ldst_imm(0b00, 0b01, rt, rn, imm)


def str32_imm(rt, rn, imm=0):
    return _ldst_imm(0b10, 0b00, rt, rn, imm)


def ldr32_imm(rt, rn, imm=0):
    return _ldst_imm(0b10, 0b01, rt, rn, imm)


def str64_imm(rt, rn, imm=0):
    return _ldst_imm(0b11, 0b00, rt, rn, imm)


def ldr64_imm(rt, rn, imm=0):
    return _ldst_imm(0b11, 0b01, rt, rn, imm)


def _ldst_reg(size: int, opc: int, rt: int, rn: int, rm: int, option: int, s: int) -> int:
    return (
        (size << 30) | (0b111000 << 24) | (opc << 22) | (1 << 21)
        | (_check_reg(rm) << 16) | (option << 13) | (s << 12) | (0b10 << 10)
        | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def ldrb_reg(rt, rn, rm):
    return _ldst_reg(0b00, 0b01, rt, rn, rm, 0b011, 0)


def strb_reg(rt, rn, rm):
    return _ldst_reg(0b00, 0b00, rt, rn, rm, 0b011, 0)


def ldr64_reg(rt, rn, rm, scaled=True):
    return _ldst_reg(0b11, 0b01, rt, rn, rm, 0b011, 1 if scaled else 0)


def str64_reg(rt, rn, rm, scaled=True):
    return _ldst_reg(0b11, 0b00, rt, rn, rm, 0b011, 1 if scaled else 0)


# -- load/store pairs and indexed addressing ----------------------------------------------


def _ldst_imm9(size: int, opc: int, rt: int, rn: int, imm9: int, mode: int) -> int:
    if not -256 <= imm9 <= 255:
        raise ValueError(f"imm9 out of range: {imm9}")
    return (
        (size << 30) | (0b111000 << 24) | (opc << 22)
        | ((imm9 & 0x1FF) << 12) | (mode << 10)
        | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def str64_pre(rt, rn, imm):
    """str xt, [xn, #imm]!"""
    return _ldst_imm9(0b11, 0b00, rt, rn, imm, 0b11)


def str64_post(rt, rn, imm):
    """str xt, [xn], #imm"""
    return _ldst_imm9(0b11, 0b00, rt, rn, imm, 0b01)


def ldr64_pre(rt, rn, imm):
    return _ldst_imm9(0b11, 0b01, rt, rn, imm, 0b11)


def ldr64_post(rt, rn, imm):
    return _ldst_imm9(0b11, 0b01, rt, rn, imm, 0b01)


def stur64(rt, rn, imm):
    return _ldst_imm9(0b11, 0b00, rt, rn, imm, 0b00)


def ldur64(rt, rn, imm):
    return _ldst_imm9(0b11, 0b01, rt, rn, imm, 0b00)


def _ldst_pair(opc: int, load: int, rt: int, rt2: int, rn: int, imm: int, mode: int) -> int:
    scale = 3 if opc == 0b10 else 2
    if imm % (1 << scale):
        raise ValueError("pair offset must be scaled")
    imm7 = imm >> scale
    if not -64 <= imm7 <= 63:
        raise ValueError(f"pair offset out of range: {imm}")
    return (
        (opc << 30) | (0b101_0 << 26) | (mode << 23) | (load << 22)
        | ((imm7 & 0x7F) << 15) | (_check_reg(rt2) << 10)
        | (_check_reg(rn) << 5) | _check_reg(rt)
    )


def stp64(rt, rt2, rn, imm=0):
    """stp xt, xt2, [xn, #imm]"""
    return _ldst_pair(0b10, 0, rt, rt2, rn, imm, 0b010)


def ldp64(rt, rt2, rn, imm=0):
    return _ldst_pair(0b10, 1, rt, rt2, rn, imm, 0b010)


def stp64_pre(rt, rt2, rn, imm):
    """stp xt, xt2, [xn, #imm]!  (the standard prologue idiom)"""
    return _ldst_pair(0b10, 0, rt, rt2, rn, imm, 0b011)


def ldp64_post(rt, rt2, rn, imm):
    """ldp xt, xt2, [xn], #imm  (the standard epilogue idiom)"""
    return _ldst_pair(0b10, 1, rt, rt2, rn, imm, 0b001)


# -- conditional compare and division ------------------------------------------------------


def _condcmp(op_bit: int, rn: int, op2: int, nzcv: int, cond: str, imm: int, sf: int) -> int:
    return (
        (sf << 31) | (op_bit << 30) | (1 << 29) | (0b11010010 << 21)
        | (_check_range(op2, 5, "op2") << 16) | (COND[cond] << 12)
        | (imm << 11) | (_check_reg(rn) << 5) | _check_range(nzcv, 4, "nzcv")
    )


def ccmp_reg(rn: int, rm: int, nzcv: int, cond: str, sf: int = 1) -> int:
    return _condcmp(1, rn, _check_reg(rm), nzcv, cond, 0, sf)


def ccmp_imm(rn: int, imm5: int, nzcv: int, cond: str, sf: int = 1) -> int:
    return _condcmp(1, rn, imm5, nzcv, cond, 1, sf)


def ccmn_reg(rn: int, rm: int, nzcv: int, cond: str, sf: int = 1) -> int:
    return _condcmp(0, rn, _check_reg(rm), nzcv, cond, 0, sf)


def udiv(rd: int, rn: int, rm: int, sf: int = 1) -> int:
    return (
        (sf << 31) | (0b0011010110 << 21) | (_check_reg(rm) << 16)
        | (0b00001 << 11) | (0 << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def sdiv(rd: int, rn: int, rm: int, sf: int = 1) -> int:
    return udiv(rd, rn, rm, sf) | (1 << 10)


# -- PC-relative and multiply ------------------------------------------------------------


def adr(rd: int, offset: int) -> int:
    if not -(1 << 20) <= offset < (1 << 20):
        raise ValueError(f"adr offset out of range: {offset}")
    imm = offset & ((1 << 21) - 1)
    return (
        ((imm & 0b11) << 29) | (0b10000 << 24) | ((imm >> 2) << 5) | _check_reg(rd)
    )


def adrp(rd: int, offset_pages: int) -> int:
    return adr(rd, offset_pages) | (1 << 31)


def madd(rd, rn, rm, ra, sf=1):
    return (
        (sf << 31) | (0b0011011000 << 21) | (_check_reg(rm) << 16)
        | (_check_reg(ra) << 10) | (_check_reg(rn) << 5) | _check_reg(rd)
    )


def msub(rd, rn, rm, ra, sf=1):
    return madd(rd, rn, rm, ra, sf) | (1 << 15)


def mul(rd, rn, rm, sf=1):
    return madd(rd, rn, rm, XZR, sf)


# -- branches -------------------------------------------------------------------------------


def b(offset: int) -> int:
    return (0b000101 << 26) | _branch_offset(offset, 26)


def bl(offset: int) -> int:
    return (0b100101 << 26) | _branch_offset(offset, 26)


def b_cond(cond: str, offset: int) -> int:
    return (0b01010100 << 24) | (_branch_offset(offset, 19) << 5) | COND[cond]


def cbz(rt: int, offset: int, sf: int = 1) -> int:
    return (sf << 31) | (0b011010 << 25) | (_branch_offset(offset, 19) << 5) | _check_reg(rt)


def cbnz(rt: int, offset: int, sf: int = 1) -> int:
    return cbz(rt, offset, sf) | (1 << 24)


def tbz(rt: int, bit: int, offset: int) -> int:
    if not 0 <= bit < 64:
        raise ValueError(f"bit out of range: {bit}")
    b5, b40 = bit >> 5, bit & 0x1F
    return (
        (b5 << 31) | (0b011011 << 25) | (b40 << 19)
        | (_branch_offset(offset, 14) << 5) | _check_reg(rt)
    )


def tbnz(rt: int, bit: int, offset: int) -> int:
    return tbz(rt, bit, offset) | (1 << 24)


def br(rn: int) -> int:
    return (0b1101011_0000_11111_000000 << 10) | (_check_reg(rn) << 5)


def blr(rn: int) -> int:
    return (0b1101011_0001_11111_000000 << 10) | (_check_reg(rn) << 5)


def ret(rn: int = LR) -> int:
    return (0b1101011_0010_11111_000000 << 10) | (_check_reg(rn) << 5)


# -- system ------------------------------------------------------------------------------------


def nop() -> int:
    return 0xD503201F


def _sysreg_op(name: str) -> tuple[int, int, int, int, int]:
    try:
        return SYSREG_ENCODINGS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown system register {name}") from None


def msr(sysreg: str, rt: int) -> int:
    op0, op1, crn, crm, op2 = _sysreg_op(sysreg)
    return (
        (0b1101010100 << 22) | (0 << 21) | (1 << 20) | ((op0 - 2) << 19)
        | (op1 << 16) | (crn << 12) | (crm << 8) | (op2 << 5) | _check_reg(rt)
    )


def mrs(rt: int, sysreg: str) -> int:
    return msr(sysreg, rt) | (1 << 21)


def hvc(imm16: int = 0) -> int:
    return (0b11010100_000 << 21) | (_check_range(imm16, 16, "imm16") << 5) | 0b00010


def svc(imm16: int = 0) -> int:
    return (0b11010100_000 << 21) | (_check_range(imm16, 16, "imm16") << 5) | 0b00001


def eret() -> int:
    return 0xD69F03E0


def rbit(rd: int, rn: int, sf: int = 1) -> int:
    return (
        (sf << 31) | (0b101101011000000000000 << 10)
        | (_check_reg(rn) << 5) | _check_reg(rd)
    )


# -- program assembly -----------------------------------------------------------------------------


def assemble(opcodes: list[int]) -> bytes:
    """Pack opcodes into little-endian machine code."""
    out = bytearray()
    for op in opcodes:
        if not 0 <= op < (1 << 32):
            raise ValueError(f"opcode out of range: {op:#x}")
        out += op.to_bytes(4, "little")
    return bytes(out)
