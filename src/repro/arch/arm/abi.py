"""AAPCS64 conventions and standard register collections for specifications.

``sys_regs(el, sp)`` is the collection the paper calls ``sys_regs`` (the
pinned system-configuration registers a piece of code relies on);
``cnvz_regs()`` is ``CNVZ_regs`` (the condition flags, typically owned with
wildcard values).
"""

from __future__ import annotations

ARG_REGS = [f"R{i}" for i in range(8)]        # x0-x7 arguments/results
SCRATCH_REGS = [f"R{i}" for i in range(9, 16)]  # x9-x15 temporaries
LINK_REG = "R30"


def sys_regs(el: int, sp: int, sctlr: int | None = None) -> dict[str, int | None]:
    """System-configuration collection: PSTATE.EL/SP pinned, plus SCTLR of
    the current EL when memory is accessed (alignment-check bit)."""
    out: dict[str, int | None] = {"PSTATE.EL": el, "PSTATE.SP": sp}
    if sctlr is not None:
        out[f"SCTLR_EL{el if el else 1}"] = sctlr
    return out


def cnvz_regs() -> dict[str, None]:
    """The condition-flag collection (owned, unknown values)."""
    return {"PSTATE.N": None, "PSTATE.Z": None, "PSTATE.C": None, "PSTATE.V": None}


def daif_regs() -> dict[str, None]:
    return {"PSTATE.D": None, "PSTATE.A": None, "PSTATE.I": None, "PSTATE.F": None}
