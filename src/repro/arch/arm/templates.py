"""Directed instruction templates for Armv8-A test generation.

Two consumers share this module through the architecture registry:

- :func:`cosim_templates` — one random-assembly-line factory per decode
  arm, used by the co-sim :class:`~repro.cosim.generate.ProgramGenerator`
  to bias program slots toward low-coverage arms;
- :data:`CONFORMANCE_TEMPLATES` — directed single lines for the
  differential conformance suite, covering encodings random word sampling
  is unlikely to reach.

``slot`` is duck-typed: any object with ``branch_offset(rng, scale=4)``
(see :class:`repro.cosim.generate._Slot`) works.
"""

from __future__ import annotations

import random

#: Condition names for b.cond / csel templates.
_CONDS = ["eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le"]

#: Known-good system registers for mrs/msr templates (always encodable,
#: never pinned by the co-sim domain).
_SYSREGS = ["elr_el2", "spsr_el2", "far_el2", "esr_el2", "vbar_el2", "tpidr_el2"]


def _xr(rng: random.Random) -> str:
    return f"x{rng.randrange(31)}"


def _wr_(rng: random.Random) -> str:
    return f"w{rng.randrange(31)}"


def _bitmask_imm(rng: random.Random) -> int:
    """A random encodable 64-bit logical immediate: a rotated run of ones."""
    ones = rng.randrange(1, 64)
    rot = rng.randrange(64)
    run = (1 << ones) - 1
    return ((run >> rot) | (run << (64 - rot))) & ((1 << 64) - 1)


def cosim_templates(rng: random.Random, slot) -> dict:
    """One random assembly line per ARM decode arm."""
    mem_off = 8 * rng.randrange(8)
    return {
        "addsub_imm": lambda: (
            f"{rng.choice(['add', 'adds', 'sub', 'subs'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{rng.randrange(1 << 12)}"
        ),
        "addsub_reg": lambda: (
            f"{rng.choice(['add', 'adds', 'sub', 'subs'])} {_xr(rng)}, {_xr(rng)}, "
            f"{_xr(rng)}, {rng.choice(['lsl', 'lsr', 'asr'])} #{rng.randrange(64)}"
        ),
        "logical_reg": lambda: (
            f"{rng.choice(['and', 'orr', 'eor', 'ands', 'bic', 'orn', 'eon', 'bics'])} "
            f"{_xr(rng)}, {_xr(rng)}, {_xr(rng)}, "
            f"{rng.choice(['lsl', 'lsr', 'asr', 'ror'])} #{rng.randrange(64)}"
        ),
        "logical_imm": lambda: (
            f"{rng.choice(['and', 'orr', 'eor', 'ands'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{_bitmask_imm(rng):#x}"
        ),
        "movewide": lambda: (
            f"{rng.choice(['movn', 'movz', 'movk'])} {_xr(rng)}, "
            f"#{rng.randrange(1 << 16)}, lsl #{16 * rng.randrange(4)}"
        ),
        "bitfield": lambda: (
            f"{rng.choice(['ubfm', 'sbfm'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{rng.randrange(64)}, #{rng.randrange(64)}"
        ),
        "csel": lambda: (
            f"{rng.choice(['csel', 'csinc', 'csinv', 'csneg'])} {_xr(rng)}, "
            f"{_xr(rng)}, {_xr(rng)}, {rng.choice(_CONDS)}"
        ),
        "ccmp": lambda: (
            f"{rng.choice(['ccmp', 'ccmn'])} {_xr(rng)}, "
            f"{rng.choice([f'#{rng.randrange(32)}', _xr(rng)])}, "
            f"#{rng.randrange(16)}, {rng.choice(_CONDS)}"
        ),
        "div": lambda: f"{rng.choice(['sdiv', 'udiv'])} {_xr(rng)}, {_xr(rng)}, {_xr(rng)}",
        "rbit": lambda: f"rbit {_xr(rng)}, {_xr(rng)}",
        "ldst_imm": lambda: rng.choice([
            f"ldr {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"str {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"ldrb {_wr_(rng)}, [{_xr(rng)}, #{rng.randrange(16)}]",
            f"strb {_wr_(rng)}, [{_xr(rng)}, #{rng.randrange(16)}]",
            f"ldrh {_wr_(rng)}, [{_xr(rng)}, #{2 * rng.randrange(8)}]",
            f"ldrsw {_xr(rng)}, [{_xr(rng)}, #{4 * rng.randrange(8)}]",
        ]),
        "ldst_reg": lambda: rng.choice([
            f"ldr {_xr(rng)}, [{_xr(rng)}, {_xr(rng)}]",
            f"str {_xr(rng)}, [{_xr(rng)}, {_xr(rng)}, lsl #3]",
            f"ldr {_wr_(rng)}, [{_xr(rng)}, {_wr_(rng)}, uxtw #2]",
            f"str {_wr_(rng)}, [{_xr(rng)}, {_wr_(rng)}, sxtw]",
        ]),
        "ldst_imm9": lambda: rng.choice([
            f"ldur {_xr(rng)}, [{_xr(rng)}, #{rng.randrange(-16, 16)}]",
            f"stur {_xr(rng)}, [{_xr(rng)}, #{rng.randrange(-16, 16)}]",
            f"ldr {_xr(rng)}, [{_xr(rng)}], #{8 * rng.randrange(-2, 3)}",
            f"str {_xr(rng)}, [{_xr(rng)}, #{8 * rng.randrange(-2, 3)}]!",
        ]),
        "ldst_pair": lambda: rng.choice([
            f"ldp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"stp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"ldp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}], #{8 * rng.randrange(-2, 3)}",
            f"stp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]!",
        ]),
        "adr": lambda: rng.choice([
            f"adr {_xr(rng)}, #{4 * rng.randrange(-64, 64)}",
            f"adrp {_xr(rng)}, #{4096 * rng.randrange(-8, 8)}",
        ]),
        "madd": lambda: (
            f"{rng.choice(['madd', 'msub'])} {_xr(rng)}, {_xr(rng)}, "
            f"{_xr(rng)}, {_xr(rng)}"
        ),
        "cbz": lambda: (
            f"{rng.choice(['cbz', 'cbnz'])} {_xr(rng)}, #{slot.branch_offset(rng)}"
        ),
        "tbz": lambda: (
            f"{rng.choice(['tbz', 'tbnz'])} {_xr(rng)}, #{rng.randrange(64)}, "
            f"#{slot.branch_offset(rng)}"
        ),
        "bcond": lambda: f"b.{rng.choice(_CONDS)} #{slot.branch_offset(rng)}",
        "b_bl": lambda: f"{rng.choice(['b', 'bl'])} #{slot.branch_offset(rng)}",
        "br_blr_ret": lambda: rng.choice([f"br {_xr(rng)}", f"blr {_xr(rng)}", "ret"]),
        "hint": lambda: rng.choice(["nop", f"hint #{rng.randrange(32)}"]),
        "sysreg": lambda: rng.choice([
            f"mrs {_xr(rng)}, {rng.choice(_SYSREGS)}",
            f"msr {rng.choice(_SYSREGS)}, {_xr(rng)}",
        ]),
        "hvc": lambda: (
            f"{rng.choice(['hvc', 'svc'])} #{rng.randrange(1 << 16)}"
        ),
    }


# Directed templates: assembly lines whose encodings random sampling is
# unlikely to reach (near-constant words), with {r}/{n} filled per draw.
CONFORMANCE_TEMPLATES = [
    "rbit x{r}, x{n}", "rbit w{r}, w{n}",
    "br x{r}", "blr x{r}", "ret", "ret x{r}", "eret",
    "nop", "hint #{h}",
    "mrs x{r}, esr_el2", "mrs x{r}, vbar_el2", "msr elr_el2, x{r}",
    "hvc #{h}", "svc #{h}",
    "ldp x{r}, x{n}, [x{m}]", "stp x{r}, x{n}, [x{m}, #16]",
    "stp x{r}, x{n}, [sp, #-16]!", "ldp x{r}, x{n}, [sp], #16",
    "tbz x{r}, #{h}, #8", "tbnz x{r}, #{h}, #-8",
    "sdiv x{r}, x{n}, x{m}", "udiv w{r}, w{n}, w{m}",
    "ldur x{r}, [x{n}, #-8]", "stur w{r}, [x{n}, #3]",
    "ldursw x{r}, [x{n}, #4]", "sturh w{r}, [x{n}, #-2]",
    "ccmp x{r}, #{h}, #5, ne", "ccmn w{r}, w{n}, #3, lt",
    "tst x{r}, #0xff0", "uxtb w{r}, w{n}",
]
