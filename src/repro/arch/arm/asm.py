"""A64 single-line assembler: the inverse of :mod:`repro.arch.arm.decode`.

``assemble_line`` parses exactly the grammar the disassembler emits and
returns the 32-bit word.  The round-trip property
``assemble_line(disassemble(op)) == op`` holds for every word the decoder
accepts; the conformance tests fuzz it over random words and assert that
every decoder arm is reached.

This is deliberately a separate table from both the encoder
(:mod:`repro.arch.arm.encode`) and the decoder, so round-trip tests
exercise independent implementations.
"""

from __future__ import annotations

from .decode import COND_NAMES
from .encode import encode_bitmask_immediate
from .regs import ENCODING_TO_SYSREG


class AsmError(Exception):
    """The line is not in the disassembler's output grammar."""


def _split_ops(text: str) -> list[str]:
    out: list[str] = []
    depth = 0
    cur = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if cur.strip():
        out.append(cur.strip())
    return out


def _reg(tok: str) -> tuple[int, int]:
    """Parse an x/w register (or sp/wsp/xzr/wzr) to ``(num, sf)``."""
    if tok in ("sp", "xzr"):
        return 31, 1
    if tok in ("wsp", "wzr"):
        return 31, 0
    if tok and tok[0] in "xw" and tok[1:].isdigit():
        n = int(tok[1:])
        if 0 <= n <= 30:
            return n, 1 if tok[0] == "x" else 0
    raise AsmError(f"bad register {tok!r}")


def _imm(tok: str) -> int:
    if not tok.startswith("#"):
        raise AsmError(f"expected immediate, got {tok!r}")
    return int(tok[1:], 0)


def _cond(tok: str) -> int:
    try:
        return COND_NAMES.index(tok)
    except ValueError:
        raise AsmError(f"bad condition {tok!r}") from None


_SHIFTS = {"lsl": 0, "lsr": 1, "asr": 2, "ror": 3}


def _shift_suffix(ops: list[str]) -> tuple[int, int]:
    """Pop a trailing ``lsl #n`` operand; returns ``(shift_type, amount)``."""
    if ops and ops[-1].split()[0] in _SHIFTS:
        kind, amount = ops.pop().split()
        return _SHIFTS[kind], _imm(amount)
    return 0, 0


# -- instruction families ----------------------------------------------------


def _addsub_imm(is_sub: int, s: int, rd: int, rn: int, sf: int, ops: list[str]) -> int:
    shift_type, amount = _shift_suffix(ops)
    value = _imm(ops[-1])
    if shift_type:
        sh, imm12 = 1, value
    elif value > 0xFFF:
        sh, imm12 = 1, value >> 12
        if imm12 << 12 != value or imm12 > 0xFFF:
            raise AsmError(f"immediate {value:#x} not encodable")
    else:
        sh, imm12 = 0, value
    return (
        (sf << 31) | (is_sub << 30) | (s << 29) | (0b100010 << 23)
        | (sh << 22) | (imm12 << 10) | (rn << 5) | rd
    )


def _addsub_reg(is_sub: int, s: int, rd: int, rn: int, rm: int, sf: int,
                shift_type: int, amount: int) -> int:
    return (
        (sf << 31) | (is_sub << 30) | (s << 29) | (0b01011 << 24)
        | (shift_type << 22) | (rm << 16) | (amount << 10) | (rn << 5) | rd
    )


_LOGICAL_OPS = {
    "and": (0b00, 0), "bic": (0b00, 1), "orr": (0b01, 0), "orn": (0b01, 1),
    "eor": (0b10, 0), "eon": (0b10, 1), "ands": (0b11, 0), "bics": (0b11, 1),
}


def _logical_reg(name: str, rd: int, rn: int, rm: int, sf: int,
                 shift_type: int, amount: int) -> int:
    opc, invert = _LOGICAL_OPS[name]
    return (
        (sf << 31) | (opc << 29) | (0b01010 << 24) | (shift_type << 22)
        | (invert << 21) | (rm << 16) | (amount << 10) | (rn << 5) | rd
    )


def _logical_imm(name: str, rd: int, rn: int, sf: int, value: int) -> int:
    opc = {"and": 0b00, "orr": 0b01, "eor": 0b10, "ands": 0b11}[name]
    immn, immr, imms = encode_bitmask_immediate(value, 64 if sf else 32)
    return (
        (sf << 31) | (opc << 29) | (0b100100 << 23) | (immn << 22)
        | (immr << 16) | (imms << 10) | (rn << 5) | rd
    )


def _bitfield(opc: int, rd: int, rn: int, sf: int, immr: int, imms: int) -> int:
    return (
        (sf << 31) | (opc << 29) | (0b100110 << 23) | (sf << 22)
        | (immr << 16) | (imms << 10) | (rn << 5) | rd
    )


_LDST_KEYS = {
    "strb": (0b00, 0b00), "ldrb": (0b00, 0b01), "ldrsb": (0b00, 0b10),
    "strh": (0b01, 0b00), "ldrh": (0b01, 0b01), "ldrsh": (0b01, 0b10),
    "ldrsw": (0b10, 0b10),
}
_UNSCALED_TO_SCALED = {
    "ldur": "ldr", "stur": "str", "ldurb": "ldrb", "sturb": "strb",
    "ldurh": "ldrh", "sturh": "strh", "ldursb": "ldrsb",
    "ldursh": "ldrsh", "ldursw": "ldrsw",
}
_LDST_EXTENDS = {"lsl": 0b011, "uxtw": 0b010, "sxtw": 0b110}


def _ldst_key(name: str, rt_sf: int) -> tuple[int, int]:
    if name in _LDST_KEYS:
        return _LDST_KEYS[name]
    if name in ("str", "ldr"):
        return (0b11 if rt_sf else 0b10), (0b00 if name == "str" else 0b01)
    raise AsmError(f"unknown load/store {name!r}")


def _parse_address(tok: str) -> tuple[str, list[str]]:
    """Split ``[...]``/``[...]!`` into (mode, inner operands)."""
    writeback = tok.endswith("!")
    if writeback:
        tok = tok[:-1]
    if not (tok.startswith("[") and tok.endswith("]")):
        raise AsmError(f"bad address {tok!r}")
    return ("pre" if writeback else "offset"), _split_ops(tok[1:-1])


def _ldst(name: str, ops: list[str]) -> int:
    rt, rt_sf = _reg(ops[0])
    unscaled = name in _UNSCALED_TO_SCALED
    size, opc = _ldst_key(_UNSCALED_TO_SCALED.get(name, name), rt_sf)
    if len(ops) == 3:  # post-index: "rt, [rn], #imm"
        mode, inner = _parse_address(ops[1])
        if mode != "offset" or len(inner) != 1:
            raise AsmError(f"bad post-index form {ops!r}")
        rn, _ = _reg(inner[0])
        imm9 = _imm(ops[2]) & 0x1FF
        return (
            (size << 30) | (0b111000 << 24) | (opc << 22) | (imm9 << 12)
            | (0b01 << 10) | (rn << 5) | rt
        )
    mode, inner = _parse_address(ops[1])
    rn, _ = _reg(inner[0])
    if mode == "pre":
        imm9 = _imm(inner[1]) & 0x1FF
        return (
            (size << 30) | (0b111000 << 24) | (opc << 22) | (imm9 << 12)
            | (0b11 << 10) | (rn << 5) | rt
        )
    if unscaled:
        imm9 = _imm(inner[1]) & 0x1FF
        return (
            (size << 30) | (0b111000 << 24) | (opc << 22) | (imm9 << 12)
            | (rn << 5) | rt
        )
    if len(inner) == 1 or inner[1].startswith("#"):  # scaled unsigned offset
        offset = _imm(inner[1]) if len(inner) > 1 else 0
        imm12 = offset >> size
        if imm12 << size != offset:
            raise AsmError(f"offset {offset} not scalable by {1 << size}")
        return (
            (size << 30) | (0b111001 << 24) | (opc << 22) | (imm12 << 10)
            | (rn << 5) | rt
        )
    rm, _ = _reg(inner[1])  # register offset
    s = 0
    option = 0b011
    if len(inner) > 2:
        parts = inner[2].split()
        option = _LDST_EXTENDS[parts[0]]
        if len(parts) > 1:
            s = 1
            if _imm(parts[1]) != size:
                raise AsmError(f"bad shift amount in {inner[2]!r}")
    return (
        (size << 30) | (0b111000 << 24) | (opc << 22) | (1 << 21) | (rm << 16)
        | (option << 13) | (s << 12) | (0b10 << 10) | (rn << 5) | rt
    )


def _ldst_pair(name: str, ops: list[str]) -> int:
    load = 1 if name == "ldp" else 0
    rt, sf = _reg(ops[0])
    rt2, _ = _reg(ops[1])
    scale = 3 if sf else 2
    if len(ops) == 4:  # post-index
        mode, inner = _parse_address(ops[2])
        imm = _imm(ops[3])
        mode_bits = 0b001
    else:
        mode, inner = _parse_address(ops[2])
        imm = _imm(inner[1]) if len(inner) > 1 else 0
        mode_bits = 0b011 if mode == "pre" else 0b010
    rn, _ = _reg(inner[0])
    imm7 = (imm >> scale) & 0x7F
    if (imm7 << scale) - (imm7 >> 6 << (scale + 7)) != imm:
        raise AsmError(f"pair offset {imm} not encodable")
    return (
        ((0b10 if sf else 0b00) << 30) | (0b1010 << 26) | (mode_bits << 23)
        | (load << 22) | (imm7 << 15) | (rt2 << 10) | (rn << 5) | rt
    )


def _sysreg_encoding(tok: str) -> tuple[int, int, int, int, int]:
    for enc, name in ENCODING_TO_SYSREG.items():
        if name.lower() == tok:
            return enc
    parts = tok.split("_")  # s<op0>_<op1>_c<cn>_c<cm>_<op2>
    if len(parts) == 5 and parts[0][:1] == "s":
        return (
            int(parts[0][1:]), int(parts[1]), int(parts[2][1:]),
            int(parts[3][1:]), int(parts[4]),
        )
    raise AsmError(f"unknown system register {tok!r}")


def _mrs_msr(is_read: int, enc, rt: int) -> int:
    op0, op1, cn, cm, op2 = enc
    return (
        (0b1101010100 << 22) | (is_read << 21) | (1 << 20) | ((op0 - 2) << 19)
        | (op1 << 16) | (cn << 12) | (cm << 8) | (op2 << 5) | rt
    )


# -- the entry point ---------------------------------------------------------


def assemble_line(text: str) -> int:
    """Assemble one line of disassembler output back to its 32-bit word."""
    text = text.strip()
    mnemonic, _, rest = text.partition(" ")
    ops = _split_ops(rest)

    if mnemonic == "nop":
        return 0xD503201F
    if mnemonic == "hint":
        return (0b11010101000000110010 << 12) | (_imm(ops[0]) << 5) | 0b11111
    if mnemonic == "eret":
        return (0b1101011 << 25) | (0b0100 << 21) | (0b11111_000000 << 10) | (31 << 5)
    if mnemonic == "ret":
        rn = _reg(ops[0])[0] if ops else 30
        return (0b1101011 << 25) | (0b0010 << 21) | (0b11111_000000 << 10) | (rn << 5)
    if mnemonic in ("br", "blr"):
        opc = 0b0000 if mnemonic == "br" else 0b0001
        return (0b1101011 << 25) | (opc << 21) | (0b11111_000000 << 10) | (_reg(ops[0])[0] << 5)
    if mnemonic in ("b", "bl"):
        return (
            ((1 if mnemonic == "bl" else 0) << 31) | (0b00101 << 26)
            | ((_imm(ops[0]) >> 2) & 0x3FFFFFF)
        )
    if mnemonic.startswith("b."):
        return (
            (0b01010100 << 24) | (((_imm(ops[0]) >> 2) & 0x7FFFF) << 5)
            | _cond(mnemonic[2:])
        )
    if mnemonic in ("cbz", "cbnz"):
        rt, sf = _reg(ops[0])
        return (
            (sf << 31) | (0b011010 << 25) | ((1 if mnemonic == "cbnz" else 0) << 24)
            | (((_imm(ops[1]) >> 2) & 0x7FFFF) << 5) | rt
        )
    if mnemonic in ("tbz", "tbnz"):
        rt, _ = _reg(ops[0])
        bit = _imm(ops[1])
        return (
            ((bit >> 5) << 31) | (0b011011 << 25)
            | ((1 if mnemonic == "tbnz" else 0) << 24) | ((bit & 31) << 19)
            | (((_imm(ops[2]) >> 2) & 0x3FFF) << 5) | rt
        )
    if mnemonic in ("hvc", "svc"):
        low = 0b00010 if mnemonic == "hvc" else 0b00001
        return (0b11010100_000 << 21) | (_imm(ops[0]) << 5) | low
    if mnemonic == "mrs":
        rt, _ = _reg(ops[0])
        return _mrs_msr(1, _sysreg_encoding(ops[1]), rt)
    if mnemonic == "msr":
        rt, _ = _reg(ops[1])
        return _mrs_msr(0, _sysreg_encoding(ops[0]), rt)

    if mnemonic in ("adr", "adrp"):
        rd, _ = _reg(ops[0])
        page = 1 if mnemonic == "adrp" else 0
        raw = (_imm(ops[1]) >> (12 if page else 0)) & 0x1FFFFF
        return (page << 31) | ((raw & 3) << 29) | (0b10000 << 24) | ((raw >> 2) << 5) | rd

    if mnemonic in ("add", "adds", "sub", "subs", "cmp", "cmn"):
        is_sub = 1 if mnemonic in ("sub", "subs", "cmp") else 0
        s = 1 if mnemonic in ("adds", "subs", "cmp", "cmn") else 0
        if mnemonic in ("cmp", "cmn"):
            rn, sf = _reg(ops[0])
            rd = 31
            rest_ops = ops[1:]
        else:
            rd, rd_sf = _reg(ops[0])
            rn, sf = _reg(ops[1])
            sf = rd_sf if ops[1] in ("sp", "wsp") else sf
            rest_ops = ops[2:]
        if rest_ops[0].startswith("#"):
            return _addsub_imm(is_sub, s, rd, rn, sf, rest_ops)
        shift_type, amount = _shift_suffix(rest_ops)
        rm, _ = _reg(rest_ops[0])
        return _addsub_reg(is_sub, s, rd, rn, rm, sf, shift_type, amount)

    if mnemonic == "mov":
        rd, sf = _reg(ops[0])
        if ops[1].startswith("#"):  # movz hw=0 alias
            return (sf << 31) | (0b10 << 29) | (0b100101 << 23) | (_imm(ops[1]) << 5) | rd
        rm, _ = _reg(ops[1])  # orr rd, xzr, rm
        return _logical_reg("orr", rd, 31, rm, sf, 0, 0)
    if mnemonic in ("movn", "movz", "movk"):
        rd, sf = _reg(ops[0])
        opc = {"movn": 0b00, "movz": 0b10, "movk": 0b11}[mnemonic]
        shift_type, amount = _shift_suffix(ops)
        if shift_type or amount:
            if shift_type != 0 or amount % 16:
                raise AsmError(f"bad movewide shift in {text!r}")
        return (
            (sf << 31) | (opc << 29) | (0b100101 << 23) | ((amount // 16) << 21)
            | (_imm(ops[1]) << 5) | rd
        )

    if mnemonic == "tst":
        rn, sf = _reg(ops[0])
        if ops[1].startswith("#"):
            return _logical_imm("ands", 31, rn, sf, _imm(ops[1]))
        shift_type, amount = _shift_suffix(ops)
        rm, _ = _reg(ops[1])
        return _logical_reg("ands", 31, rn, rm, sf, shift_type, amount)
    if mnemonic in _LOGICAL_OPS:
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        if ops[2].startswith("#"):
            return _logical_imm(mnemonic, rd, rn, sf, _imm(ops[2]))
        shift_type, amount = _shift_suffix(ops)
        rm, _ = _reg(ops[2])
        return _logical_reg(mnemonic, rd, rn, rm, sf, shift_type, amount)

    if mnemonic in ("lsr", "asr", "lsl"):
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        width = 64 if sf else 32
        shift = _imm(ops[2])
        opc = 0b00 if mnemonic == "asr" else 0b10
        if mnemonic == "lsl":
            return _bitfield(opc, rd, rn, sf, (width - shift) % width, width - 1 - shift)
        return _bitfield(opc, rd, rn, sf, shift, width - 1)
    if mnemonic == "uxtb":
        rd, _ = _reg(ops[0])
        rn, _ = _reg(ops[1])
        return _bitfield(0b10, rd, rn, 0, 0, 7)
    if mnemonic in ("ubfm", "sbfm"):
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        opc = 0b10 if mnemonic == "ubfm" else 0b00
        return _bitfield(opc, rd, rn, sf, _imm(ops[2]), _imm(ops[3]))

    if mnemonic in ("csel", "csinc", "csinv", "csneg", "cset"):
        rd, sf = _reg(ops[0])
        if mnemonic == "cset":
            rn = rm = 31
            neg, o2, cond = 0, 1, _cond(ops[1]) ^ 1
        else:
            rn, _ = _reg(ops[1])
            rm, _ = _reg(ops[2])
            cond = _cond(ops[3])
            neg = 1 if mnemonic in ("csinv", "csneg") else 0
            o2 = 1 if mnemonic in ("csinc", "csneg") else 0
        return (
            (sf << 31) | (neg << 30) | (0b11010100 << 21) | (rm << 16)
            | (cond << 12) | (o2 << 10) | (rn << 5) | rd
        )
    if mnemonic in ("ccmp", "ccmn"):
        rn, sf = _reg(ops[0])
        nzcv = _imm(ops[2])
        cond = _cond(ops[3])
        op30 = 1 if mnemonic == "ccmp" else 0
        base = (
            (sf << 31) | (op30 << 30) | (0b111010010 << 21) | (cond << 12)
            | (rn << 5) | nzcv
        )
        if ops[1].startswith("#"):
            return base | (_imm(ops[1]) << 16) | (1 << 11)
        return base | (_reg(ops[1])[0] << 16)

    if mnemonic in ("sdiv", "udiv"):
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        rm, _ = _reg(ops[2])
        return (
            (sf << 31) | (0b0011010110 << 21) | (rm << 16) | (0b00001 << 11)
            | ((1 if mnemonic == "sdiv" else 0) << 10) | (rn << 5) | rd
        )
    if mnemonic == "rbit":
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        return (sf << 31) | (0b101101011000000000000 << 10) | (rn << 5) | rd

    if mnemonic in ("mul", "madd", "msub"):
        rd, sf = _reg(ops[0])
        rn, _ = _reg(ops[1])
        rm, _ = _reg(ops[2])
        ra = _reg(ops[3])[0] if mnemonic != "mul" else 31
        sub = 1 if mnemonic == "msub" else 0
        return (
            (sf << 31) | (0b0011011000 << 21) | (rm << 16) | (sub << 15)
            | (ra << 10) | (rn << 5) | rd
        )

    if mnemonic in ("ldp", "stp"):
        return _ldst_pair(mnemonic, ops)
    if mnemonic in _LDST_KEYS or mnemonic in ("ldr", "str") or mnemonic in _UNSCALED_TO_SCALED:
        return _ldst(mnemonic, ops)

    raise AsmError(f"cannot assemble {text!r}")
