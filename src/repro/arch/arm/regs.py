"""AArch64 register file and system-register encodings.

Declares the general-purpose registers, the banked stack pointers
(``SP_EL0``..``SP_EL3`` — the source of the five-way case split the paper
discusses for ``add sp, sp, 64``), the PSTATE fields, and the ~50 system
registers the case studies interact with (the pKVM handler alone touches 49
different system registers, §6).

The MSR/MRS encoding table maps the (op0, op1, CRn, CRm, op2) tuples of the
real A64 system-register space to our register names.
"""

from __future__ import annotations

from ..itl_compat import Reg
from ...sail.registers import RegisterFile

# PSTATE fields we model (name -> width).
PSTATE_FIELDS = {
    "N": 1, "Z": 1, "C": 1, "V": 1,  # condition flags
    "D": 1, "A": 1, "I": 1, "F": 1,  # interrupt masks (DAIF)
    "EL": 2,  # current exception level
    "SP": 1,  # stack-pointer select (0: shared SP_EL0, 1: banked)
    "nRW": 1,  # 0 = AArch64
}

#: system registers: name -> (op0, op1, CRn, CRm, op2)
SYSREG_ENCODINGS: dict[str, tuple[int, int, int, int, int]] = {
    # -- EL2 control state (the hvc / pKVM case studies) --
    "VBAR_EL2": (3, 4, 12, 0, 0),
    "HCR_EL2": (3, 4, 1, 1, 0),
    "SPSR_EL2": (3, 4, 4, 0, 0),
    "ELR_EL2": (3, 4, 4, 0, 1),
    "ESR_EL2": (3, 4, 5, 2, 0),
    "FAR_EL2": (3, 4, 6, 0, 0),
    "HPFAR_EL2": (3, 4, 6, 0, 4),
    "SCTLR_EL2": (3, 4, 1, 0, 0),
    "ACTLR_EL2": (3, 4, 1, 0, 1),
    "CPTR_EL2": (3, 4, 1, 1, 2),
    "HSTR_EL2": (3, 4, 1, 1, 3),
    "MDCR_EL2": (3, 4, 1, 1, 1),
    "TTBR0_EL2": (3, 4, 2, 0, 0),
    "TCR_EL2": (3, 4, 2, 0, 2),
    "VTTBR_EL2": (3, 4, 2, 1, 0),
    "VTCR_EL2": (3, 4, 2, 1, 2),
    "MAIR_EL2": (3, 4, 10, 2, 0),
    "AMAIR_EL2": (3, 4, 10, 3, 0),
    "TPIDR_EL2": (3, 4, 13, 0, 2),
    "CNTHCTL_EL2": (3, 4, 14, 1, 0),
    "CNTVOFF_EL2": (3, 4, 14, 0, 3),
    "VMPIDR_EL2": (3, 4, 0, 0, 5),
    "VPIDR_EL2": (3, 4, 0, 0, 0),
    "AFSR0_EL2": (3, 4, 5, 1, 0),
    "AFSR1_EL2": (3, 4, 5, 1, 1),
    # -- EL1 state saved/restored by hypervisors --
    "SCTLR_EL1": (3, 0, 1, 0, 0),
    "ACTLR_EL1": (3, 0, 1, 0, 1),
    "CPACR_EL1": (3, 0, 1, 0, 2),
    "TTBR0_EL1": (3, 0, 2, 0, 0),
    "TTBR1_EL1": (3, 0, 2, 0, 1),
    "TCR_EL1": (3, 0, 2, 0, 2),
    "SPSR_EL1": (3, 0, 4, 0, 0),
    "ELR_EL1": (3, 0, 4, 0, 1),
    "ESR_EL1": (3, 0, 5, 2, 0),
    "AFSR0_EL1": (3, 0, 5, 1, 0),
    "AFSR1_EL1": (3, 0, 5, 1, 1),
    "FAR_EL1": (3, 0, 6, 0, 0),
    "PAR_EL1": (3, 0, 7, 4, 0),
    "MAIR_EL1": (3, 0, 10, 2, 0),
    "AMAIR_EL1": (3, 0, 10, 3, 0),
    "VBAR_EL1": (3, 0, 12, 0, 0),
    "CONTEXTIDR_EL1": (3, 0, 13, 0, 1),
    "TPIDR_EL1": (3, 0, 13, 0, 4),
    "CNTKCTL_EL1": (3, 0, 14, 1, 0),
    "CSSELR_EL1": (3, 2, 0, 0, 0),
    "MPIDR_EL1": (3, 0, 0, 0, 5),
    "MIDR_EL1": (3, 0, 0, 0, 0),
    # -- EL0 thread registers --
    "TPIDR_EL0": (3, 3, 13, 0, 2),
    "TPIDRRO_EL0": (3, 3, 13, 0, 3),
    # -- stack pointers as system registers (MSR/MRS access) --
    "SP_EL0": (3, 0, 4, 1, 0),
    "SP_EL1": (3, 4, 4, 1, 0),
    "SP_EL2": (3, 6, 4, 1, 0),
}

ENCODING_TO_SYSREG = {enc: name for name, enc in SYSREG_ENCODINGS.items()}

#: Exception-class codes (ESR_ELx.EC) used by the model.
EC_UNKNOWN = 0x00
EC_HVC64 = 0x16
EC_SVC64 = 0x15
EC_DATA_ABORT_LOWER = 0x24
EC_DATA_ABORT_SAME = 0x25
EC_PC_ALIGNMENT = 0x22
EC_SP_ALIGNMENT = 0x26

#: Data Fault Status Code for alignment faults (ISS.DFSC).
DFSC_ALIGNMENT = 0b100001

#: Vector-table offsets (VBAR_ELx + offset), AArch64.
VECTOR_CURRENT_SP0_SYNC = 0x000
VECTOR_CURRENT_SPX_SYNC = 0x200
VECTOR_LOWER_A64_SYNC = 0x400
VECTOR_LOWER_A32_SYNC = 0x600


def declare_arm_registers(regfile: RegisterFile) -> None:
    """Declare the full AArch64 register file we model."""
    for i in range(31):
        regfile.declare(f"R{i}", 64)
    regfile.declare("_PC", 64)
    for el in range(4):
        regfile.declare(f"SP_EL{el}", 64)
    regfile.declare_struct("PSTATE", PSTATE_FIELDS)
    for name in SYSREG_ENCODINGS:
        if not name.startswith("SP_EL"):
            regfile.declare(name, 64)


def gpr(n: int) -> Reg:
    """The n-th general-purpose register (n in 0..30)."""
    if not 0 <= n <= 30:
        raise ValueError(f"X{n} is not a general-purpose register")
    return Reg(f"R{n}")


def sp_for_el(el: int) -> Reg:
    return Reg(f"SP_EL{el}")


def pstate(field: str) -> Reg:
    if field not in PSTATE_FIELDS:
        raise ValueError(f"unknown PSTATE field {field}")
    return Reg("PSTATE", field)


PC = Reg("_PC")
