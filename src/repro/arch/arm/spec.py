"""Declarative ISA specification for the modelled AArch64 subset.

Input to :mod:`repro.analysis.isaspec`: each of the 24 decode arms of
:mod:`repro.arch.arm.decode` restated as an exact bitvector *claim* inside a
coarse ISA-manual *region*, plus hand-authored defined-invalid carve-outs
(SIMD/FP, unallocated op0 rows, reserved minor encodings) that complete the
32-bit word space.  The validator proves pairwise disjointness and joint
coverage, round-trips each encoder packing symbolically, and grounds the
tables against the real Python decoder/encoder on witness and probe words.

The one genuinely non-structural claim is ``logical_imm``'s bitmask
canonicality (ASL ``DecodeBitMasks``): the leading-one pattern of
``immN:NOT(imms)`` picks the element size, the rotation must stay below it,
and the run length must not fill the element.  That predicate is expressed
directly over the word with a :class:`Raw` clause so the solver reasons
about the *exact* accepted set, not an approximation.
"""

from __future__ import annotations

from ...analysis.isaspec import ArmSpec, EncoderSpec, InvalidRegion, IsaSpec, Raw
from ...smt import builder as B
from . import decode, encode
from .regs import SYSREG_ENCODINGS


def _bitmask_canonical(word):
    """The decoder's ``DecodeBitMasks`` acceptance, bit-exactly.

    With ``combined = immN:NOT(imms)`` (7 bits), the highest set bit k picks
    ``esize = 2**k``; accepted iff ``k >= 1``, ``immr < esize`` and the low
    ``k`` bits of ``imms`` are not all ones (``s == levels`` is reserved).
    """
    immn = B.extract(22, 22, word)
    immr = B.extract(21, 16, word)
    imms = B.extract(15, 10, word)
    combined = B.concat(immn, B.bvnot(imms))
    cases = []
    for k in range(1, 7):
        parts = [B.eq(B.extract(6, k, combined), B.bv(1, 7 - k))]
        if k < 6:  # k == 6 -> esize 64; a 6-bit immr is always < 64
            parts.append(B.bvult(immr, B.bv(1 << k, 6)))
        parts.append(B.not_(B.eq(B.extract(k - 1, 0, imms), B.bv((1 << k) - 1, k))))
        cases.append(B.and_(*parts))
    return B.or_(*cases)


#: (size, opc) pairs with a load/store mnemonic (``_LDST_NAMES``): opc<2
#: always, opc==2 except for the 64-bit row (no ldrsw of 64-bit data).
_LDST_SIZED = ("or", ("lt", 23, 22, 2),
               ("and", ("eq", 23, 22, 2), ("ne", 31, 30, 3)))


def _arms() -> tuple:
    return (
        ArmSpec(
            name="addsub_imm",
            match=(("eq", 28, 23, 0b100010),),
            encoder=EncoderSpec(
                fixed=0b100010 << 23, fixed_mask=0b111111 << 23,
                places=(("sf", 31, 1), ("op", 30, 1), ("s", 29, 1),
                        ("sh", 22, 1), ("imm12", 10, 12),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="addsub_reg",
            match=(("eq", 28, 24, 0b01011), ("eq", 21, 21, 0),
                   ("ne", 23, 22, 0b11)),
            region=(("eq", 28, 24, 0b01011), ("eq", 21, 21, 0)),
            encoder=EncoderSpec(
                fixed=0b01011 << 24, fixed_mask=(0b11111 << 24) | (1 << 21),
                places=(("sf", 31, 1), ("op", 30, 1), ("s", 29, 1),
                        ("shift", 22, 2), ("rm", 16, 5), ("imm6", 10, 6),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="logical_reg",
            match=(("eq", 28, 24, 0b01010),),
            encoder=EncoderSpec(
                fixed=0b01010 << 24, fixed_mask=0b11111 << 24,
                places=(("sf", 31, 1), ("opc", 29, 2), ("shift", 22, 2),
                        ("n", 21, 1), ("rm", 16, 5), ("imm6", 10, 6),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="logical_imm",
            match=(("eq", 28, 23, 0b100100),
                   ("not", ("and", ("eq", 31, 31, 0), ("eq", 22, 22, 1))),
                   Raw("bitmask_canonical", _bitmask_canonical)),
            region=(("eq", 28, 23, 0b100100),),
            encoder=EncoderSpec(
                fixed=0b100100 << 23, fixed_mask=0b111111 << 23,
                places=(("sf", 31, 1), ("opc", 29, 2), ("n", 22, 1),
                        ("immr", 16, 6), ("imms", 10, 6),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="movewide",
            match=(("eq", 28, 23, 0b100101), ("in", 30, 29, (0b00, 0b10, 0b11))),
            region=(("eq", 28, 23, 0b100101),),
            encoder=EncoderSpec(
                fixed=0b100101 << 23, fixed_mask=0b111111 << 23,
                places=(("sf", 31, 1), ("opc", 29, 2), ("hw", 21, 2),
                        ("imm16", 5, 16), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="bitfield",
            match=(("eq", 28, 23, 0b100110), ("in", 30, 29, (0b00, 0b10)),
                   Raw("n_eq_sf", lambda w: B.eq(
                       B.extract(22, 22, w), B.extract(31, 31, w))),
                   ("or", ("eq", 31, 31, 1),
                    ("and", ("lt", 21, 16, 32), ("lt", 15, 10, 32)))),
            region=(("eq", 28, 23, 0b100110),),
            encoder=EncoderSpec(
                fixed=0b100110 << 23, fixed_mask=0b111111 << 23,
                places=(("sf", 31, 1), ("opc", 29, 2), ("n", 22, 1),
                        ("immr", 16, 6), ("imms", 10, 6),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="csel",
            match=(("eq", 28, 21, 0b11010100), ("eq", 29, 29, 0),
                   ("eq", 11, 11, 0)),
            region=(("eq", 28, 21, 0b11010100), ("eq", 29, 29, 0)),
            encoder=EncoderSpec(
                fixed=0b11010100 << 21,
                fixed_mask=(1 << 29) | (0xFF << 21) | (1 << 11),
                places=(("sf", 31, 1), ("neg", 30, 1), ("rm", 16, 5),
                        ("cond", 12, 4), ("o2", 10, 1),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="ccmp",
            match=(("eq", 29, 21, 0b111010010), ("eq", 10, 10, 0),
                   ("eq", 4, 4, 0)),
            region=(("eq", 29, 21, 0b111010010),),
            encoder=EncoderSpec(
                fixed=0b111010010 << 21,
                fixed_mask=(0x1FF << 21) | (1 << 10) | (1 << 4),
                places=(("sf", 31, 1), ("op", 30, 1), ("rm_or_imm", 16, 5),
                        ("cond", 12, 4), ("e", 11, 1),
                        ("rn", 5, 5), ("nzcv", 0, 4)),
            ),
        ),
        ArmSpec(
            name="div",
            match=(("eq", 30, 21, 0b0011010110), ("eq", 15, 11, 0b00001)),
            region=(("eq", 30, 21, 0b0011010110),),
            encoder=EncoderSpec(
                fixed=(0b0011010110 << 21) | (0b00001 << 11),
                fixed_mask=(0x3FF << 21) | (0x1F << 11),
                places=(("sf", 31, 1), ("rm", 16, 5), ("o1", 10, 1),
                        ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="rbit",
            match=(("eq", 30, 10, 0b1_0_11010110_00000_000000),),
            region=(("eq", 30, 29, 0b10), ("eq", 28, 21, 0b11010110)),
            encoder=EncoderSpec(
                fixed=0b1_0_11010110_00000_000000 << 10,
                fixed_mask=((1 << 21) - 1) << 10,
                places=(("sf", 31, 1), ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="ldst_imm",
            match=(("eq", 29, 24, 0b111001), _LDST_SIZED),
            region=(("eq", 29, 24, 0b111001),),
            encoder=EncoderSpec(
                fixed=0b111001 << 24, fixed_mask=0b111111 << 24,
                places=(("size", 30, 2), ("opc", 22, 2), ("imm12", 10, 12),
                        ("rn", 5, 5), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="ldst_reg",
            match=(("eq", 29, 24, 0b111000), ("eq", 21, 21, 1),
                   ("eq", 11, 10, 0b10), _LDST_SIZED,
                   ("in", 15, 13, (0b011, 0b010, 0b110))),
            region=(("eq", 29, 24, 0b111000), ("eq", 21, 21, 1),
                    ("eq", 11, 10, 0b10)),
            encoder=EncoderSpec(
                fixed=(0b111000 << 24) | (1 << 21) | (0b10 << 10),
                fixed_mask=(0b111111 << 24) | (1 << 21) | (0b11 << 10),
                places=(("size", 30, 2), ("opc", 22, 2), ("rm", 16, 5),
                        ("option", 13, 3), ("s", 12, 1),
                        ("rn", 5, 5), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="ldst_imm9",
            match=(("eq", 29, 24, 0b111000), ("eq", 21, 21, 0),
                   ("ne", 11, 10, 0b10), _LDST_SIZED),
            region=(("eq", 29, 24, 0b111000), ("eq", 21, 21, 0)),
            encoder=EncoderSpec(
                fixed=0b111000 << 24,
                fixed_mask=(0b111111 << 24) | (1 << 21),
                places=(("size", 30, 2), ("opc", 22, 2), ("imm9", 12, 9),
                        ("mode", 10, 2), ("rn", 5, 5), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="ldst_pair",
            match=(("eq", 29, 26, 0b1010), ("in", 31, 30, (0b00, 0b10)),
                   ("in", 25, 23, (0b001, 0b010, 0b011))),
            region=(("eq", 29, 26, 0b1010), ("eq", 25, 25, 0)),
            encoder=EncoderSpec(
                fixed=0b1010 << 26, fixed_mask=0b1111 << 26,
                places=(("opc", 30, 2), ("mode", 23, 3), ("l", 22, 1),
                        ("imm7", 15, 7), ("rt2", 10, 5),
                        ("rn", 5, 5), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="adr",
            match=(("eq", 28, 24, 0b10000),),
            encoder=EncoderSpec(
                fixed=0b10000 << 24, fixed_mask=0b11111 << 24,
                places=(("page", 31, 1), ("immlo", 29, 2), ("immhi", 5, 19),
                        ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="madd",
            match=(("eq", 30, 21, 0b0011011000),),
            encoder=EncoderSpec(
                fixed=0b0011011000 << 21, fixed_mask=0x3FF << 21,
                places=(("sf", 31, 1), ("rm", 16, 5), ("o0", 15, 1),
                        ("ra", 10, 5), ("rn", 5, 5), ("rd", 0, 5)),
            ),
        ),
        ArmSpec(
            name="cbz",
            match=(("eq", 30, 25, 0b011010),),
            encoder=EncoderSpec(
                fixed=0b011010 << 25, fixed_mask=0b111111 << 25,
                places=(("sf", 31, 1), ("op", 24, 1), ("imm19", 5, 19),
                        ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="tbz",
            match=(("eq", 30, 25, 0b011011),),
            encoder=EncoderSpec(
                fixed=0b011011 << 25, fixed_mask=0b111111 << 25,
                places=(("b5", 31, 1), ("op", 24, 1), ("b40", 19, 5),
                        ("imm14", 5, 14), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="bcond",
            match=(("eq", 31, 24, 0b01010100), ("eq", 4, 4, 0)),
            region=(("eq", 31, 24, 0b01010100),),
            encoder=EncoderSpec(
                fixed=0b01010100 << 24, fixed_mask=(0xFF << 24) | (1 << 4),
                places=(("imm19", 5, 19), ("cond", 0, 4)),
            ),
        ),
        ArmSpec(
            name="b_bl",
            match=(("eq", 30, 26, 0b00101),),
            encoder=EncoderSpec(
                fixed=0b00101 << 26, fixed_mask=0b11111 << 26,
                places=(("op", 31, 1), ("imm26", 0, 26)),
            ),
        ),
        ArmSpec(
            name="br_blr_ret",
            match=(("eq", 31, 25, 0b1101011),
                   ("eq", 20, 10, 0b11111_000000), ("eq", 4, 0, 0),
                   ("or", ("in", 24, 21, (0b0000, 0b0001, 0b0010)),
                    ("and", ("eq", 24, 21, 0b0100), ("eq", 9, 5, 31)))),
            region=(("eq", 31, 25, 0b1101011),),
            encoder=EncoderSpec(
                fixed=(0b1101011 << 25) | (0b11111_000000 << 10),
                fixed_mask=(0x7F << 25) | (0x7FF << 10) | 0x1F,
                places=(("opc", 21, 4), ("rn", 5, 5)),
            ),
        ),
        ArmSpec(
            name="hint",
            match=(("eq", 31, 12, 0b11010101000000110010),
                   ("eq", 4, 0, 0b11111)),
            region=(("eq", 31, 22, 0b1101010100), ("eq", 20, 20, 0)),
            encoder=EncoderSpec(
                fixed=(0b11010101000000110010 << 12) | 0b11111,
                fixed_mask=(0xFFFFF << 12) | 0x1F,
                places=(("crm_op2", 5, 7),),
            ),
        ),
        ArmSpec(
            name="sysreg",
            match=(("eq", 31, 22, 0b1101010100), ("eq", 20, 20, 1)),
            encoder=EncoderSpec(
                fixed=(0b1101010100 << 22) | (1 << 20),
                fixed_mask=(0x3FF << 22) | (1 << 20),
                places=(("l", 21, 1), ("enc", 5, 15), ("rt", 0, 5)),
            ),
        ),
        ArmSpec(
            name="hvc",
            match=(("eq", 31, 21, 0b11010100_000),
                   ("in", 4, 0, (0b00001, 0b00010))),
            region=(("eq", 31, 21, 0b11010100_000),),
            encoder=EncoderSpec(
                fixed=0b11010100_000 << 21, fixed_mask=0x7FF << 21,
                places=(("imm16", 5, 16), ("low", 0, 5)),
            ),
        ),
    )


#: Reserved/unmodelled space, hand-carved to complete coverage.  Each carve
#: is proved disjoint from every claim (ISA008) and its enumerated words are
#: checked to raise ``UnknownInstruction`` (ISA007).
_INVALID = (
    # op0 = 00xx: sve/sme/unallocated top rows.
    InvalidRegion("unalloc_op0_00xx", (("eq", 28, 27, 0b00),)),
    # Data-processing immediate rows with no modelled arm.
    InvalidRegion("dp_imm_unalloc", (("in", 28, 23, (0b100011, 0b100111)),)),
    # b.cond space with bit 25/24 set (unallocated + reserved).
    InvalidRegion("bcond_unalloc", (("eq", 31, 26, 0b010101),
                                    ("ne", 25, 24, 0b00))),
    # Branch op0 rows 011/111.
    InvalidRegion("branches_unalloc", (("eq", 30, 29, 0b11),
                                       ("eq", 28, 26, 0b101))),
    # Exception-generation space beyond hvc/svc's [23:21] = 000 column.
    InvalidRegion("exception_unalloc", (("eq", 31, 25, 0b1101010),
                                        ("eq", 24, 24, 0),
                                        ("ne", 23, 21, 0b000))),
    # System space beyond the hint/sysreg [23:22] = 00 column.
    InvalidRegion("system_unalloc", (("eq", 31, 25, 0b1101010),
                                     ("eq", 24, 24, 1),
                                     ("ne", 23, 22, 0b00))),
    # Load/store rows other than the pair box and the main 111000/111001 box.
    InvalidRegion("ldst_unmodelled", (("eq", 27, 27, 1), ("eq", 25, 25, 0),
                                      ("ne", 29, 26, 0b1010),
                                      ("ne", 29, 25, 0b11100))),
    # Register-offset box with reserved low bits ([11:10] != 10).
    InvalidRegion("ldst_reg_residual", (("eq", 29, 24, 0b111000),
                                        ("eq", 21, 21, 1),
                                        ("ne", 11, 10, 0b10))),
    # Add/sub extended-register (bit 21 set) is not modelled.
    InvalidRegion("addsub_ext", (("eq", 28, 24, 0b01011), ("eq", 21, 21, 1))),
    # The whole SIMD/FP plane.
    InvalidRegion("simd_fp", (("eq", 27, 25, 0b111),)),
    # Data-processing register plane 1101: everything outside the five
    # modelled boxes (csel / ccmp / div / rbit / madd).
    InvalidRegion("dp_1101_unalloc", (
        ("eq", 28, 25, 0b1101),
        ("not", ("or",
                 ("and", ("eq", 24, 21, 0b0100), ("eq", 29, 29, 0)),
                 ("and", ("eq", 24, 21, 0b0010), ("eq", 29, 29, 1)),
                 ("and", ("eq", 24, 21, 0b0110), ("eq", 30, 29, 0b00)),
                 ("and", ("eq", 24, 21, 0b0110), ("eq", 30, 29, 0b10)),
                 ("and", ("eq", 24, 21, 0b1000), ("eq", 30, 29, 0b00)))),
    )),
)


def _layouts() -> dict:
    layouts = {arm: (table,) for arm, table in decode._FIELD_TABLES.items()}
    # ccmp's [20:16] is a register only in the register form (bit 11 clear).
    layouts["ccmp"] = (decode._ccmp_fields(0), decode._ccmp_fields(1 << 11))
    return layouts


def _probes() -> dict:
    e = encode
    sysreg_name = next(iter(SYSREG_ENCODINGS))
    return {
        "addsub_imm": (
            e.add_imm(0, 1, 42), e.add_imm(2, 3, 1, shift12=True),
            e.sub_imm(4, 5, 7, sf=0), e.adds_imm(6, 7, 0),
            e.subs_imm(8, 9, 4095), e.cmp_imm(10, 3),
        ),
        "addsub_reg": (
            e.add_reg(0, 1, 2), e.add_reg(3, 4, 5, shift=2, amount=7),
            e.sub_reg(6, 7, 8, sf=0), e.subs_reg(9, 10, 11),
            e.adds_reg(12, 13, 14), e.cmp_reg(15, 16),
        ),
        "logical_reg": (
            e.and_reg(0, 1, 2), e.orr_reg(3, 4, 5, amount=3, shift=1),
            e.eor_reg(6, 7, 8), e.ands_reg(9, 10, 11, sf=0),
            e.tst_reg(12, 13), e.mov_reg(14, 15),
        ),
        "logical_imm": (
            e.and_imm(0, 1, 0xFF), e.ands_imm(2, 3, 0x0F0F0F0F0F0F0F0F),
            e.tst_imm(4, 0x7), e.and_imm(5, 6, 0xFF00FF00, sf=0),
        ),
        "movewide": (
            e.movz(0, 0x1234), e.movn(1, 7, hw=1), e.movk(2, 0xFFFF, hw=3),
            e.mov_imm(3, 99), e.movz(4, 5, sf=0),
        ),
        "bitfield": (
            e.ubfm(0, 1, 3, 5), e.lsr_imm(2, 3, 17), e.lsl_imm(4, 5, 8),
            e.uxtb(6, 7), e.lsr_imm(8, 9, 3, sf=0),
        ),
        "csel": (
            e.csel(0, 1, 2, "eq"), e.csinc(3, 4, 5, "ne"),
            e.cset(6, "lt"), e.csel(7, 8, 9, "hi", sf=0),
        ),
        "ccmp": (
            e.ccmp_reg(0, 1, 0b0100, "eq"), e.ccmp_imm(2, 17, 0b0010, "ne"),
            e.ccmn_reg(3, 4, 0b1000, "ge", sf=0),
        ),
        "div": (e.udiv(0, 1, 2), e.sdiv(3, 4, 5, sf=0)),
        "rbit": (e.rbit(0, 1), e.rbit(2, 3, sf=0)),
        "ldst_imm": (
            e.strb_imm(0, 1, 3), e.ldrb_imm(2, 3), e.str32_imm(4, 5, 8),
            e.ldr32_imm(6, 7, 4), e.str64_imm(8, 9, 16), e.ldr64_imm(10, 11, 8),
        ),
        "ldst_reg": (
            e.ldrb_reg(0, 1, 2), e.strb_reg(3, 4, 5),
            e.ldr64_reg(6, 7, 8), e.str64_reg(9, 10, 11, scaled=False),
        ),
        "ldst_imm9": (
            e.str64_pre(0, 1, -16), e.str64_post(2, 3, 8),
            e.ldr64_pre(4, 5, 16), e.ldr64_post(6, 7, -8),
            e.stur64(8, 9, 1), e.ldur64(10, 11, -1),
        ),
        "ldst_pair": (
            e.stp64(0, 1, 2, 16), e.ldp64(3, 4, 5),
            e.stp64_pre(6, 7, 8, -32), e.ldp64_post(9, 10, 11, 48),
        ),
        "adr": (e.adr(0, 12), e.adr(1, -12), e.adrp(2, 3)),
        "madd": (e.madd(0, 1, 2, 3), e.msub(4, 5, 6, 7), e.mul(8, 9, 10)),
        "cbz": (e.cbz(0, 8), e.cbnz(1, -8, sf=0)),
        "tbz": (e.tbz(0, 5, 8), e.tbnz(1, 40, -8)),
        "bcond": (e.b_cond("eq", 8), e.b_cond("le", -64)),
        "b_bl": (e.b(16), e.bl(-16)),
        "br_blr_ret": (e.br(0), e.blr(1), e.ret(), e.eret()),
        "hint": (e.nop(),),
        "sysreg": (e.msr(sysreg_name, 0), e.mrs(1, sysreg_name)),
        "hvc": (e.hvc(1), e.svc(0x42)),
    }


def build_spec() -> IsaSpec:
    return IsaSpec(
        arch="arm",
        arms=_arms(),
        invalid=_INVALID,
        layouts=_layouts(),
        reg_count=32,
        decode_arm=decode.decode_arm,
        decode_fields=decode.decode_fields,
        invalid_exc=decode.UnknownInstruction,
        probes=_probes(),
        coverage_shard=(28, 25),
    )
