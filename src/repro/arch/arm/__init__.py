"""``repro.arch.arm`` — the AArch64 model, encoder, registers, and ABI."""

from . import encode, regs
from .model import ArmModel

__all__ = ["ArmModel", "encode", "regs"]
