"""Mini-Sail model of the AArch64 subset exercised by the case studies.

The model mirrors the *structure* of the real Sail/ASL Armv8-A definition:
a top-level decoder dispatches on encoding-class bit patterns to
``@sail_fn``-decorated decode functions, which extract fields and call the
shared execution datapaths (``integer_arithmetic_addsub_immediate`` and
friends, cf. Fig. 2).  All register accesses go through the banked accessors
(``aget_SP``/``aset_SP`` select among SP_EL0..SP_EL3 based on PSTATE.SP and
PSTATE.EL), memory accesses go through the alignment-checking translation-off
path, and exceptions (hvc, data aborts) and exception return (eret) update
the full EL2/EL1 system state.

What is deliberately kept from the real model's "irrelevant complexity":
flags are always computed by ``AddWithCarry`` even when discarded; the
stack-pointer selection branches on PSTATE even though it is almost always
pinned; loads/stores share one datapath across sizes and both check
alignment.  This is the complexity Isla's symbolic execution must — and
does — prune.

Deliberate simplifications (documented in DESIGN.md): no address
translation (SCTLR.M assumed 0), no AArch32, 64-bit little-endian only, no
tagged memory, no FP/SIMD.
"""

from __future__ import annotations

from ...itl.events import Reg
from ...sail import primitives as P
from ...sail.iface import MachineInterface, sail_fn
from ...sail.model import IsaModel
from ...sail.registers import RegisterFile
from ...smt import builder as B
from ...smt.terms import FALSE, TRUE, Term
from . import regs as R
from .regs import PC, gpr, pstate


def bits_match(opcode: Term, pattern: str) -> Term:
    """Match a 32-bit opcode against an MSB-first pattern of 0/1/x.

    Underscores are cosmetic.  Returns a boolean term (folds to a constant
    when the tested bits of the opcode are concrete).
    """
    pattern = pattern.replace("_", "")
    if len(pattern) != 32:
        raise ValueError(f"pattern length {len(pattern)} != 32: {pattern!r}")
    mask = 0
    value = 0
    for i, ch in enumerate(pattern):
        bitpos = 31 - i
        if ch == "x":
            continue
        mask |= 1 << bitpos
        if ch == "1":
            value |= 1 << bitpos
    return B.eq(B.bvand(opcode, B.bv(mask, 32)), B.bv(value, 32))


def fld(opcode: Term, hi: int, lo: int) -> Term:
    return B.extract(hi, lo, opcode)


def fld_int(opcode: Term, hi: int, lo: int) -> int:
    """Extract a field that must be concrete (decode-class fields)."""
    t = fld(opcode, hi, lo)
    if not t.is_value():
        raise ValueError(f"symbolic decode field [{hi}:{lo}]")
    return t.value


# ---------------------------------------------------------------------------
# Register accessors (the banked-register machinery of §2.1).
# ---------------------------------------------------------------------------


@sail_fn
def aget_X(m: MachineInterface, n: int, datasize: int = 64) -> Term:
    """Read general-purpose register Xn/Wn; X31 reads as zero."""
    if n == 31:
        return P.zeros(datasize)
    value = m.read_reg(gpr(n))
    return value if datasize == 64 else B.extract(datasize - 1, 0, value)


@sail_fn
def aset_X(m: MachineInterface, n: int, value: Term) -> None:
    """Write Xn/Wn (32-bit writes zero-extend); X31 writes are discarded."""
    if n == 31:
        return
    m.write_reg(gpr(n), P.zero_extend(value, 64))


@sail_fn
def aget_SP(m: MachineInterface, datasize: int = 64) -> Term:
    """Read the *banked* stack pointer selected by PSTATE.SP / PSTATE.EL."""
    value = m.read_reg(_select_sp_reg(m))
    return value if datasize == 64 else B.extract(datasize - 1, 0, value)


@sail_fn
def aset_SP(m: MachineInterface, value: Term) -> None:
    m.write_reg(_select_sp_reg(m), P.zero_extend(value, 64))


def _select_sp_reg(m: MachineInterface) -> Reg:
    sp_bit = m.read_reg(pstate("SP"))
    if m.branch(B.eq(sp_bit, B.bv(0, 1)), "PSTATE.SP == 0"):
        return R.sp_for_el(0)
    el = m.read_reg(pstate("EL"))
    for candidate in range(3):
        if m.branch(B.eq(el, B.bv(candidate, 2)), f"EL == {candidate}"):
            return R.sp_for_el(candidate)
    return R.sp_for_el(3)


@sail_fn
def condition_holds(m: MachineInterface, cond: int) -> Term:
    """ASL ``ConditionHolds``: evaluate a 4-bit condition against NZCV.

    Returns a boolean *term*; the caller decides whether to branch on it.
    """
    n = m.read_reg(pstate("N"))
    z = m.read_reg(pstate("Z"))
    c = m.read_reg(pstate("C"))
    v = m.read_reg(pstate("V"))
    one = B.bv(1, 1)
    base = cond >> 1
    if base == 0b000:
        result = B.eq(z, one)  # EQ/NE
    elif base == 0b001:
        result = B.eq(c, one)  # CS/CC
    elif base == 0b010:
        result = B.eq(n, one)  # MI/PL
    elif base == 0b011:
        result = B.eq(v, one)  # VS/VC
    elif base == 0b100:
        result = B.and_(B.eq(c, one), B.eq(z, B.bv(0, 1)))  # HI/LS
    elif base == 0b101:
        result = B.eq(n, v)  # GE/LT
    elif base == 0b110:
        result = B.and_(B.eq(n, v), B.eq(z, B.bv(0, 1)))  # GT/LE
    else:
        result = B.true()  # AL
    if cond & 1 and cond != 0b1111:
        result = B.not_(result)
    return result


def set_nzcv(m: MachineInterface, nzcv: Term) -> None:
    m.write_reg(pstate("N"), B.extract(3, 3, nzcv))
    m.write_reg(pstate("Z"), B.extract(2, 2, nzcv))
    m.write_reg(pstate("C"), B.extract(1, 1, nzcv))
    m.write_reg(pstate("V"), B.extract(0, 0, nzcv))


def advance_pc(m: MachineInterface, pc: Term | None = None) -> None:
    if pc is None:
        pc = m.read_reg(PC)
    m.write_reg(PC, B.bvadd(pc, B.bv(4, 64)))


# ---------------------------------------------------------------------------
# Memory (translation off; alignment checks per SCTLR_ELx.A).
# ---------------------------------------------------------------------------


def _sctlr_for_el(m: MachineInterface) -> Reg:
    el = m.read_reg(pstate("EL"))
    if m.branch(B.eq(el, B.bv(2, 2)), "EL == 2 (sctlr)"):
        return Reg("SCTLR_EL2")
    # EL0 uses SCTLR_EL1; we collapse EL0/EL1/EL3 to SCTLR_EL1 here (EL3 is
    # never exercised with memory traffic in the case studies).
    return Reg("SCTLR_EL1")


@sail_fn
def check_alignment(m: MachineInterface, addr: Term, nbytes: int, iswrite: bool) -> None:
    """Raise an alignment Data Abort when SCTLR.A is set and addr unaligned."""
    if nbytes == 1:
        return
    sctlr = m.read_reg(_sctlr_for_el(m))
    a_bit = P.bit_set(sctlr, 1)  # SCTLR_ELx.A
    misaligned = B.not_(P.is_aligned(addr, nbytes))
    if m.branch(B.and_(a_bit, misaligned), "alignment fault"):
        iss = R.DFSC_ALIGNMENT | (int(iswrite) << 6)  # ISS.WnR at bit 6
        pc = m.read_reg(PC)
        take_exception(
            m,
            ec=R.EC_DATA_ABORT_SAME,
            iss=iss,
            preferred_return=pc,
            far=addr,
            same_el=True,
        )
        raise _ExceptionTaken()


@sail_fn
def mem_read(m: MachineInterface, addr: Term, nbytes: int) -> Term:
    check_alignment(m, addr, nbytes, iswrite=False)
    return m.read_mem(addr, nbytes)


@sail_fn
def mem_write(m: MachineInterface, addr: Term, data: Term, nbytes: int) -> None:
    check_alignment(m, addr, nbytes, iswrite=True)
    m.write_mem(addr, data, nbytes)


class _ExceptionTaken(Exception):
    """Internal control flow: an exception redirected the instruction."""


# ---------------------------------------------------------------------------
# Exception entry and return.
# ---------------------------------------------------------------------------


@sail_fn
def take_exception(
    m: MachineInterface,
    ec: int,
    iss: int,
    preferred_return: Term,
    far: Term | None = None,
    same_el: bool = False,
    target_el: int = 2,
) -> None:
    """AArch64.TakeException, specialised to synchronous exceptions.

    ``same_el=True`` routes to the current EL's vector (alignment faults in
    the case studies); otherwise to ``target_el`` (hypervisor calls).
    """
    if same_el:
        el = m.read_reg(pstate("EL"))
        for candidate in (2, 1):
            if m.branch(B.eq(el, B.bv(candidate, 2)), f"exc at EL{candidate}"):
                target_el = candidate
                break
        else:
            m.unreachable("exceptions to EL0/EL3 not modelled")
    suffix = f"EL{target_el}"

    # Build SPSR from current PSTATE.
    spsr = _build_spsr(m)
    m.write_reg(Reg(f"SPSR_{suffix}"), spsr)
    m.write_reg(Reg(f"ELR_{suffix}"), preferred_return)
    esr = (ec << 26) | (1 << 25) | iss  # IL=1: 32-bit instruction
    m.write_reg(Reg(f"ESR_{suffix}"), B.bv(esr, 64))
    if far is not None:
        m.write_reg(Reg(f"FAR_{suffix}"), far)

    # Vector offset: same-EL-SPx vs lower-EL-AArch64.
    if same_el:
        offset = R.VECTOR_CURRENT_SPX_SYNC
        sp_bit = m.read_reg(pstate("SP"))
        if m.branch(B.eq(sp_bit, B.bv(0, 1)), "vector SP0"):
            offset = R.VECTOR_CURRENT_SP0_SYNC
    else:
        offset = R.VECTOR_LOWER_A64_SYNC

    # Update PSTATE: jump to target EL, banked SP, interrupts masked.
    m.write_reg(pstate("EL"), B.bv(target_el, 2))
    m.write_reg(pstate("SP"), B.bv(1, 1))
    for flag in "DAIF":
        m.write_reg(pstate(flag), B.bv(1, 1))
    vbar = m.read_reg(Reg(f"VBAR_{suffix}"))
    m.write_reg(PC, B.bvadd(vbar, B.bv(offset, 64)))


def pack_spsr(
    n: Term, z: Term, c: Term, v: Term,
    d: Term, a: Term, i: Term, f: Term,
    el: Term, sp: Term,
) -> Term:
    """The SPSR_ELx layout for an AArch64 state (pure; shared with specs)."""
    return B.concat_many(
        P.zeros(32),  # SPSR_ELx is 64-bit; the upper word is RES0
        n, z, c, v,  # 31..28
        P.zeros(18),  # 27..10
        d, a, i, f,  # 9..6
        P.zeros(1),  # 5
        B.bv(0, 1),  # 4: nRW = 0 (AArch64)
        el,  # 3..2
        P.zeros(1),  # 1
        sp,  # 0
    )


def _build_spsr(m: MachineInterface) -> Term:
    """Pack the current PSTATE into the SPSR format."""
    return pack_spsr(
        m.read_reg(pstate("N")), m.read_reg(pstate("Z")),
        m.read_reg(pstate("C")), m.read_reg(pstate("V")),
        m.read_reg(pstate("D")), m.read_reg(pstate("A")),
        m.read_reg(pstate("I")), m.read_reg(pstate("F")),
        m.read_reg(pstate("EL")), m.read_reg(pstate("SP")),
    )


@sail_fn
def exception_return(m: MachineInterface) -> None:
    """ERET: restore PSTATE from SPSR_ELx and jump to ELR_ELx."""
    el = m.read_reg(pstate("EL"))
    source_el = None
    for candidate in (2, 1, 3):
        if m.branch(B.eq(el, B.bv(candidate, 2)), f"eret at EL{candidate}"):
            source_el = candidate
            break
    if source_el is None:
        m.unreachable("eret at EL0")
    suffix = f"EL{source_el}"
    spsr = m.read_reg(Reg(f"SPSR_{suffix}"))
    elr = m.read_reg(Reg(f"ELR_{suffix}"))

    if m.branch(P.bit_set(spsr, 4), "SPSR.nRW (AArch32 return)"):
        m.unreachable("AArch32 exception return not modelled")

    target_el_bits = B.extract(3, 2, spsr)
    target_el = None
    for candidate in range(source_el, -1, -1):
        if m.branch(B.eq(target_el_bits, B.bv(candidate, 2)), f"eret to EL{candidate}"):
            target_el = candidate
            break
    if target_el is None:
        m.unreachable("illegal exception return (target EL above current)")

    # Returning to AArch64 EL1/EL0 under a hypervisor needs HCR_EL2.RW = 1.
    if target_el < 2 and source_el == 2:
        hcr = m.read_reg(Reg("HCR_EL2"))
        if m.branch(B.not_(P.bit_set(hcr, 31)), "HCR_EL2.RW == 0"):
            m.unreachable("AArch32 EL1 not modelled (HCR_EL2.RW = 0)")

    m.write_reg(pstate("N"), B.extract(31, 31, spsr))
    m.write_reg(pstate("Z"), B.extract(30, 30, spsr))
    m.write_reg(pstate("C"), B.extract(29, 29, spsr))
    m.write_reg(pstate("V"), B.extract(28, 28, spsr))
    m.write_reg(pstate("D"), B.extract(9, 9, spsr))
    m.write_reg(pstate("A"), B.extract(8, 8, spsr))
    m.write_reg(pstate("I"), B.extract(7, 7, spsr))
    m.write_reg(pstate("F"), B.extract(6, 6, spsr))
    m.write_reg(pstate("EL"), B.bv(target_el, 2))
    m.write_reg(pstate("SP"), B.extract(0, 0, spsr))
    m.write_reg(PC, elr)


# ---------------------------------------------------------------------------
# Instruction classes.
# ---------------------------------------------------------------------------


@sail_fn
def integer_arithmetic_addsub_immediate_decode(m, opcode: Term) -> None:
    """Decode add/sub (immediate); Fig. 2's entry path."""
    sf = fld_int(opcode, 31, 31)
    op = fld_int(opcode, 30, 30)  # 0 add, 1 sub
    setflags = fld_int(opcode, 29, 29)
    shift = fld_int(opcode, 23, 22)
    imm12 = fld(opcode, 21, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    if shift == 0b00:
        imm = P.zero_extend(imm12, datasize)
    elif shift == 0b01:
        imm = P.zero_extend(B.concat(imm12, P.zeros(12)), datasize)
    else:
        m.unreachable("ADDG/SUBG (MTE) not modelled")
        return
    integer_arithmetic_addsub_immediate(
        m, rd, rn, imm, datasize, sub_op=bool(op), setflags=bool(setflags)
    )


@sail_fn
def integer_arithmetic_addsub_immediate(
    m, d: int, n: int, imm: Term, datasize: int, sub_op: bool, setflags: bool
) -> None:
    """The shared add/sub datapath of Fig. 2 (lines 17-28)."""
    op1 = aget_SP(m, datasize) if n == 31 else aget_X(m, n, datasize)
    if sub_op:
        op2 = B.bvnot(imm)
        carry_in = B.bv(1, 1)
    else:
        op2 = imm
        carry_in = B.bv(0, 1)
    result, nzcv = P.add_with_carry(op1, op2, carry_in)
    result = m.define("result", result)
    if setflags:
        set_nzcv(m, nzcv)
    if d == 31 and not setflags:
        aset_SP(m, result)
    else:
        aset_X(m, d, result)
    advance_pc(m)


@sail_fn
def integer_arithmetic_addsub_shiftedreg(m, opcode: Term) -> None:
    sf = fld_int(opcode, 31, 31)
    op = fld_int(opcode, 30, 30)
    setflags = bool(fld_int(opcode, 29, 29))
    shift_type = fld_int(opcode, 23, 22)
    rm = fld_int(opcode, 20, 16)
    imm6 = fld_int(opcode, 15, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    if shift_type == 0b11:
        m.unreachable("reserved shift for add/sub")
    if not sf and imm6 >= 32:
        m.unreachable("reserved shift amount")
    op1 = aget_X(m, rn, datasize)
    op2 = _shift_reg(aget_X(m, rm, datasize), shift_type, imm6)
    if op:
        op2 = B.bvnot(op2)
        carry_in = B.bv(1, 1)
    else:
        carry_in = B.bv(0, 1)
    result, nzcv = P.add_with_carry(op1, op2, carry_in)
    result = m.define("result", result)
    if setflags:
        set_nzcv(m, nzcv)
    aset_X(m, rd, result)
    advance_pc(m)


def _shift_reg(value: Term, shift_type: int, amount: int) -> Term:
    w = value.width
    sh = B.bv(amount, w)
    if shift_type == 0b00:
        return B.bvshl(value, sh)
    if shift_type == 0b01:
        return B.bvlshr(value, sh)
    if shift_type == 0b10:
        return B.bvashr(value, sh)
    amount %= w
    if amount == 0:
        return value
    return B.concat(B.extract(amount - 1, 0, value), B.extract(w - 1, amount, value))


@sail_fn
def integer_logical_shiftedreg(m, opcode: Term) -> None:
    sf = fld_int(opcode, 31, 31)
    opc = fld_int(opcode, 30, 29)
    shift_type = fld_int(opcode, 23, 22)
    invert = fld_int(opcode, 21, 21)
    rm = fld_int(opcode, 20, 16)
    imm6 = fld_int(opcode, 15, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    if not sf and imm6 >= 32:
        m.unreachable("reserved shift amount")
    op1 = aget_X(m, rn, datasize)
    op2 = _shift_reg(aget_X(m, rm, datasize), shift_type, imm6)
    if invert:
        op2 = B.bvnot(op2)
    result, setflags = _logical_op(opc, op1, op2)
    result = m.define("result", result)
    if setflags:
        _set_logical_flags(m, result, datasize)
    aset_X(m, rd, result)
    advance_pc(m)


def _logical_op(opc: int, op1: Term, op2: Term) -> tuple[Term, bool]:
    if opc == 0b00:
        return B.bvand(op1, op2), False
    if opc == 0b01:
        return B.bvor(op1, op2), False
    if opc == 0b10:
        return B.bvxor(op1, op2), False
    return B.bvand(op1, op2), True  # ANDS / TST


def _set_logical_flags(m, result: Term, datasize: int) -> None:
    m.write_reg(pstate("N"), B.extract(datasize - 1, datasize - 1, result))
    m.write_reg(
        pstate("Z"), P.bool_to_bit(B.eq(result, P.zeros(datasize)))
    )
    m.write_reg(pstate("C"), B.bv(0, 1))
    m.write_reg(pstate("V"), B.bv(0, 1))


def decode_bit_masks(immn: int, imms: int, immr: int, datasize: int) -> int:
    """ASL ``DecodeBitMasks`` for logical immediates (wmask only)."""
    # Find the element size from the leading-one pattern of immN:NOT(imms).
    combined = (immn << 6) | (~imms & 0x3F)
    length = combined.bit_length() - 1
    if length < 1:
        raise ValueError("reserved logical immediate")
    esize = 1 << length
    levels = esize - 1
    s = imms & levels
    r = immr & levels
    if s == levels:
        raise ValueError("reserved logical immediate (s == levels)")
    welem = (1 << (s + 1)) - 1
    # Rotate right within the element, then replicate.
    welem = ((welem >> r) | (welem << (esize - r))) & ((1 << esize) - 1)
    wmask = 0
    for i in range(datasize // esize):
        wmask |= welem << (i * esize)
    return wmask


@sail_fn
def integer_logical_immediate(m, opcode: Term) -> None:
    sf = fld_int(opcode, 31, 31)
    opc = fld_int(opcode, 30, 29)
    immn = fld_int(opcode, 22, 22)
    immr = fld_int(opcode, 21, 16)
    imms = fld_int(opcode, 15, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    if not sf and immn:
        m.unreachable("reserved logical immediate (N=1, 32-bit)")
    try:
        imm = B.bv(decode_bit_masks(immn, imms, immr, datasize), datasize)
    except ValueError as exc:
        m.unreachable(str(exc))
        return
    op1 = aget_X(m, rn, datasize)
    result, setflags = _logical_op(opc, op1, imm)
    result = m.define("result", result)
    if setflags:
        _set_logical_flags(m, result, datasize)
    if rd == 31 and not setflags:
        aset_SP(m, P.zero_extend(result, 64))
    else:
        aset_X(m, rd, result)
    advance_pc(m)


@sail_fn
def integer_ins_movewide(m, opcode: Term) -> None:
    """MOVN/MOVZ/MOVK — supports *symbolic immediates* (pKVM relocation)."""
    sf = fld_int(opcode, 31, 31)
    opc = fld_int(opcode, 30, 29)
    hw = fld_int(opcode, 22, 21)
    imm16 = fld(opcode, 20, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    if not sf and hw >= 2:
        m.unreachable("reserved movewide shift")
    pos = hw * 16
    if opc == 0b00:  # MOVN
        value = B.bvnot(P.set_slice(P.zeros(datasize), pos, imm16))
    elif opc == 0b10:  # MOVZ
        value = P.set_slice(P.zeros(datasize), pos, imm16)
    elif opc == 0b11:  # MOVK
        old = aget_X(m, rd, datasize)
        value = P.set_slice(old, pos, imm16)
    else:
        m.unreachable("reserved movewide opc")
        return
    value = m.define("movewide", value)
    aset_X(m, rd, value)
    advance_pc(m)


@sail_fn
def integer_bitfield_ubfm_sbfm(m, opcode: Term) -> None:
    """UBFM/SBFM subset: the aliases used by compiled code (LSR/LSL/UXTB/
    ASR/SXTW immediate forms where imms/immr describe a plain shift or
    extension)."""
    sf = fld_int(opcode, 31, 31)
    opc = fld_int(opcode, 30, 29)
    immr = fld_int(opcode, 21, 16)
    imms = fld_int(opcode, 15, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    src = aget_X(m, rn, datasize)
    signed = opc == 0b00
    if opc not in (0b00, 0b10):
        m.unreachable("BFM not modelled")
    if imms >= immr:
        # Extract bits [imms:immr] into the bottom, extend.
        part = B.extract(imms, immr, src)
        ext = P.sign_extend if signed else P.zero_extend
        result = ext(part, datasize)
    else:
        # Insert bits [imms:0] at position datasize - immr.
        part = B.extract(imms, 0, src)
        shift = (datasize - immr) % datasize
        result = B.bvshl(P.zero_extend(part, datasize), B.bv(shift, datasize))
        if signed:
            width = imms + 1 + shift
            result = P.sign_extend(B.extract(width - 1, 0, result), datasize)
    result = m.define("bitfield", result)
    aset_X(m, rd, result)
    advance_pc(m)


@sail_fn
def integer_conditional_select(m, opcode: Term) -> None:
    """CSEL/CSINC/CSINV/CSNEG (covers the CSET/CINC aliases)."""
    sf = fld_int(opcode, 31, 31)
    op = fld_int(opcode, 30, 30)
    rm = fld_int(opcode, 20, 16)
    cond = fld_int(opcode, 15, 12)
    o2 = fld_int(opcode, 10, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    holds = condition_holds(m, cond)
    val_true = aget_X(m, rn, datasize)
    val_false = aget_X(m, rm, datasize)
    if op and o2:
        val_false = B.bvneg(val_false)
    elif op:
        val_false = B.bvnot(val_false)
    elif o2:
        val_false = B.bvadd(val_false, B.bv(1, datasize))
    result = m.define("csel", B.ite(holds, val_true, val_false))
    aset_X(m, rd, result)
    advance_pc(m)


@sail_fn
def integer_conditional_compare(m, opcode: Term) -> None:
    """CCMP/CCMN (register and immediate forms)."""
    sf = fld_int(opcode, 31, 31)
    is_ccmp = fld_int(opcode, 30, 30)
    imm_form = fld_int(opcode, 11, 11)
    cond = fld_int(opcode, 15, 12)
    rn = fld_int(opcode, 9, 5)
    nzcv_imm = fld_int(opcode, 3, 0)
    datasize = 64 if sf else 32
    holds = condition_holds(m, cond)
    op1 = aget_X(m, rn, datasize)
    if imm_form:
        op2 = P.zero_extend(fld(opcode, 20, 16), datasize)
    else:
        op2 = aget_X(m, fld_int(opcode, 20, 16), datasize)
    if is_ccmp:
        op2 = B.bvnot(op2)
        carry = B.bv(1, 1)
    else:
        carry = B.bv(0, 1)
    _, computed = P.add_with_carry(op1, op2, carry)
    nzcv = m.define("ccmp_nzcv", B.ite(holds, computed, B.bv(nzcv_imm, 4)))
    set_nzcv(m, nzcv)
    advance_pc(m)


@sail_fn
def integer_arithmetic_div(m, opcode: Term) -> None:
    """UDIV/SDIV.  Division by zero yields zero (Armv8-A, no trap)."""
    sf = fld_int(opcode, 31, 31)
    rm = fld_int(opcode, 20, 16)
    is_signed = fld_int(opcode, 10, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    dividend = aget_X(m, rn, datasize)
    divisor = aget_X(m, rm, datasize)
    if is_signed:
        # Round-towards-zero signed division built from the unsigned one.
        sign_n = P.bit_set(dividend, datasize - 1)
        sign_m = P.bit_set(divisor, datasize - 1)
        abs_n = B.ite(sign_n, B.bvneg(dividend), dividend)
        abs_m = B.ite(sign_m, B.bvneg(divisor), divisor)
        quotient = B.bvudiv(abs_n, abs_m)
        result = B.ite(B.xor(sign_n, sign_m), B.bvneg(quotient), quotient)
    else:
        result = B.bvudiv(dividend, divisor)
    # SMT-LIB bvudiv returns all-ones on zero divisors; Arm returns zero.
    result = B.ite(B.eq(divisor, P.zeros(datasize)), P.zeros(datasize), result)
    aset_X(m, rd, m.define("quotient", result))
    advance_pc(m)


@sail_fn
def integer_arithmetic_rbit(m, opcode: Term) -> None:
    sf = fld_int(opcode, 31, 31)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    src = aget_X(m, rn, datasize)
    result = m.define("rbit", P.reverse_bits(src))
    aset_X(m, rd, result)
    advance_pc(m)


# -- loads and stores ---------------------------------------------------------


@sail_fn
def memory_single_general_immediate_unsigned(m, opcode: Term) -> None:
    size = fld_int(opcode, 31, 30)
    opc = fld_int(opcode, 23, 22)
    imm12 = fld_int(opcode, 21, 10)
    rn = fld_int(opcode, 9, 5)
    rt = fld_int(opcode, 4, 0)
    nbytes = 1 << size
    offset = imm12 << size
    addr = _ldst_base(m, rn)
    addr = m.define("addr", B.bvadd(addr, B.bv(offset, 64)))
    _ldst_common(m, opc, size, addr, rt, nbytes)


@sail_fn
def memory_single_general_register(m, opcode: Term) -> None:
    size = fld_int(opcode, 31, 30)
    opc = fld_int(opcode, 23, 22)
    rm = fld_int(opcode, 20, 16)
    option = fld_int(opcode, 15, 13)
    s_bit = fld_int(opcode, 12, 12)
    rn = fld_int(opcode, 9, 5)
    rt = fld_int(opcode, 4, 0)
    nbytes = 1 << size
    shift = size if s_bit else 0
    if option == 0b011:  # LSL (UXTX)
        offset = aget_X(m, rm, 64)
    elif option == 0b010:  # UXTW
        offset = P.zero_extend(aget_X(m, rm, 32), 64)
    elif option == 0b110:  # SXTW
        offset = P.sign_extend(aget_X(m, rm, 32), 64)
    else:
        m.unreachable(f"ldst register option {option:#05b} not modelled")
        return
    if shift:
        offset = B.bvshl(offset, B.bv(shift, 64))
    base = _ldst_base(m, rn)
    addr = m.define("addr", B.bvadd(base, offset))
    _ldst_common(m, opc, size, addr, rt, nbytes)


def _ldst_base(m, rn: int) -> Term:
    return aget_SP(m) if rn == 31 else aget_X(m, rn, 64)


def _ldst_common(m, opc: int, size: int, addr: Term, rt: int, nbytes: int) -> None:
    datasize = 8 * nbytes
    try:
        if opc == 0b00:  # STR
            data = aget_X(m, rt, min(datasize, 64))
            mem_write(m, addr, B.extract(datasize - 1, 0, data), nbytes)
        elif opc == 0b01:  # LDR (zero-extending)
            data = mem_read(m, addr, nbytes)
            regsize = 64 if size == 0b11 else 32
            aset_X(m, rt, P.zero_extend(data, regsize))
        elif opc == 0b10 and size < 0b11:  # LDRS* to 64-bit
            data = mem_read(m, addr, nbytes)
            aset_X(m, rt, P.sign_extend(data, 64))
        else:
            m.unreachable(f"load/store opc {opc:#04b} size {size} not modelled")
            return
    except _ExceptionTaken:
        return  # PC already redirected to the vector
    advance_pc(m)


@sail_fn
def memory_single_general_imm9(m, opcode: Term) -> None:
    """LDR/STR (immediate, pre/post-indexed) and LDUR/STUR (unscaled)."""
    size = fld_int(opcode, 31, 30)
    opc = fld_int(opcode, 23, 22)
    imm9 = fld_int(opcode, 20, 12)
    mode = fld_int(opcode, 11, 10)  # 00 unscaled, 01 post, 11 pre
    rn = fld_int(opcode, 9, 5)
    rt = fld_int(opcode, 4, 0)
    nbytes = 1 << size
    offset = B.bv(imm9 if imm9 < 256 else imm9 - 512, 64)
    base = _ldst_base(m, rn)
    addr = m.define("addr", base if mode == 0b01 else B.bvadd(base, offset))
    wback = mode in (0b01, 0b11)
    try:
        if opc == 0b00:  # STR/STUR
            data = aget_X(m, rt, min(8 * nbytes, 64))
            mem_write(m, addr, B.extract(8 * nbytes - 1, 0, data), nbytes)
        elif opc == 0b01:  # LDR/LDUR
            data = mem_read(m, addr, nbytes)
            regsize = 64 if size == 0b11 else 32
            aset_X(m, rt, P.zero_extend(data, regsize))
        else:
            m.unreachable(f"imm9 load/store opc {opc:#04b} not modelled")
            return
    except _ExceptionTaken:
        return
    if wback:
        new_base = m.define("wback", B.bvadd(base, offset))
        if rn == 31:
            aset_SP(m, new_base)
        else:
            aset_X(m, rn, new_base)
    advance_pc(m)


@sail_fn
def memory_pair_general(m, opcode: Term) -> None:
    """LDP/STP (signed offset, pre-indexed, post-indexed)."""
    opc = fld_int(opcode, 31, 30)
    mode = fld_int(opcode, 24, 23)  # 01 post, 10 signed offset, 11 pre
    is_load = fld_int(opcode, 22, 22)
    imm7 = fld_int(opcode, 21, 15)
    rt2 = fld_int(opcode, 14, 10)
    rn = fld_int(opcode, 9, 5)
    rt = fld_int(opcode, 4, 0)
    if opc == 0b01 or opc == 0b11:
        m.unreachable("LDPSW / SIMD pair not modelled")
        return
    datasize = 64 if opc == 0b10 else 32
    nbytes = datasize // 8
    scaled = (imm7 if imm7 < 64 else imm7 - 128) * nbytes
    offset = B.bv(scaled, 64)
    base = _ldst_base(m, rn)
    addr = m.define("addr", base if mode == 0b01 else B.bvadd(base, offset))
    addr2 = B.bvadd(addr, B.bv(nbytes, 64))
    try:
        if is_load:
            data1 = mem_read(m, addr, nbytes)
            data2 = mem_read(m, addr2, nbytes)
            aset_X(m, rt, P.zero_extend(data1, datasize))
            aset_X(m, rt2, P.zero_extend(data2, datasize))
        else:
            d1 = aget_X(m, rt, datasize)
            d2 = aget_X(m, rt2, datasize)
            mem_write(m, addr, d1, nbytes)
            mem_write(m, addr2, d2, nbytes)
    except _ExceptionTaken:
        return
    if mode in (0b01, 0b11):  # writeback
        new_base = m.define("wback", B.bvadd(base, offset))
        if rn == 31:
            aset_SP(m, new_base)
        else:
            aset_X(m, rn, new_base)
    advance_pc(m)


@sail_fn
def integer_pcrel_adr(m, opcode: Term) -> None:
    """ADR / ADRP."""
    is_page = fld_int(opcode, 31, 31)
    immlo = fld_int(opcode, 30, 29)
    immhi = fld_int(opcode, 23, 5)
    rd = fld_int(opcode, 4, 0)
    imm = (immhi << 2) | immlo
    if imm >= 1 << 20:
        imm -= 1 << 21
    pc = m.read_reg(PC)
    if is_page:
        target = B.bvadd(
            B.bvand(pc, B.bv(~0xFFF, 64)), B.bv((imm << 12) & ((1 << 64) - 1), 64)
        )
    else:
        target = B.bvadd(pc, B.bv(imm & ((1 << 64) - 1), 64))
    aset_X(m, rd, m.define("pcrel", target))
    advance_pc(m, pc)


@sail_fn
def integer_arithmetic_mul_madd(m, opcode: Term) -> None:
    """MADD / MSUB (covers the MUL and MNEG aliases)."""
    sf = fld_int(opcode, 31, 31)
    rm = fld_int(opcode, 20, 16)
    is_sub = fld_int(opcode, 15, 15)
    ra = fld_int(opcode, 14, 10)
    rn = fld_int(opcode, 9, 5)
    rd = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    product = B.bvmul(aget_X(m, rn, datasize), aget_X(m, rm, datasize))
    acc = aget_X(m, ra, datasize)
    result = B.bvsub(acc, product) if is_sub else B.bvadd(acc, product)
    aset_X(m, rd, m.define("maddres", result))
    advance_pc(m)


# -- branches --------------------------------------------------------------------


@sail_fn
def branch_conditional_compare(m, opcode: Term) -> None:
    """CBZ/CBNZ."""
    sf = fld_int(opcode, 31, 31)
    is_cbnz = fld_int(opcode, 24, 24)
    imm19 = fld_int(opcode, 23, 5)
    rt = fld_int(opcode, 4, 0)
    datasize = 64 if sf else 32
    value = aget_X(m, rt, datasize)
    offset = _signed_offset(imm19, 19)
    is_zero = B.eq(value, P.zeros(datasize))
    taken_cond = B.not_(is_zero) if is_cbnz else is_zero
    pc = m.read_reg(PC)
    if m.branch(taken_cond, "cbz/cbnz taken"):
        m.write_reg(PC, B.bvadd(pc, B.bv(offset, 64)))
    else:
        advance_pc(m, pc)


@sail_fn
def branch_conditional_test(m, opcode: Term) -> None:
    """TBZ/TBNZ: test a single bit and branch."""
    b5 = fld_int(opcode, 31, 31)
    is_tbnz = fld_int(opcode, 24, 24)
    b40 = fld_int(opcode, 23, 19)
    imm14 = fld_int(opcode, 18, 5)
    rt = fld_int(opcode, 4, 0)
    bitpos = (b5 << 5) | b40
    datasize = 64 if b5 else 32
    value = aget_X(m, rt, datasize)
    bit = B.extract(bitpos, bitpos, value)
    taken = B.eq(bit, B.bv(1 if is_tbnz else 0, 1))
    if imm14 >= 1 << 13:
        imm14 -= 1 << 14
    pc = m.read_reg(PC)
    if m.branch(taken, "tbz/tbnz taken"):
        m.write_reg(PC, B.bvadd(pc, B.bv((imm14 * 4) & ((1 << 64) - 1), 64)))
    else:
        advance_pc(m, pc)


@sail_fn
def branch_conditional_cond(m, opcode: Term) -> None:
    """B.cond — the Fig. 6 shape: flag read, then Cases on the condition."""
    imm19 = fld_int(opcode, 23, 5)
    cond = fld_int(opcode, 3, 0)
    holds = condition_holds(m, cond)
    offset = _signed_offset(imm19, 19)
    pc = m.read_reg(PC)
    if m.branch(holds, "b.cond taken"):
        m.write_reg(PC, B.bvadd(pc, B.bv(offset, 64)))
    else:
        advance_pc(m, pc)


@sail_fn
def branch_unconditional_immediate(m, opcode: Term) -> None:
    """B / BL."""
    is_bl = fld_int(opcode, 31, 31)
    imm26 = fld_int(opcode, 25, 0)
    offset = _signed_offset(imm26, 26)
    pc = m.read_reg(PC)
    if is_bl:
        aset_X(m, 30, B.bvadd(pc, B.bv(4, 64)))
    m.write_reg(PC, B.bvadd(pc, B.bv(offset, 64)))


@sail_fn
def branch_unconditional_register(m, opcode: Term) -> None:
    """BR / BLR / RET."""
    opc = fld_int(opcode, 24, 21)
    rn = fld_int(opcode, 9, 5)
    target = aget_X(m, rn, 64)
    if opc == 0b0001:  # BLR
        pc = m.read_reg(PC)
        aset_X(m, 30, B.bvadd(pc, B.bv(4, 64)))
    elif opc not in (0b0000, 0b0010):  # BR, RET
        m.unreachable(f"branch-register opc {opc:#06b} not modelled")
    m.write_reg(PC, target)


def _signed_offset(imm: int, bits: int) -> int:
    if imm >= 1 << (bits - 1):
        imm -= 1 << bits
    return (imm * 4) & ((1 << 64) - 1)


# -- system instructions ------------------------------------------------------------


@sail_fn
def system_register_access(m, opcode: Term) -> None:
    """MSR/MRS (register form)."""
    is_read = fld_int(opcode, 21, 21)  # L: 1 = MRS
    o0 = fld_int(opcode, 19, 19)
    op1 = fld_int(opcode, 18, 16)
    crn = fld_int(opcode, 15, 12)
    crm = fld_int(opcode, 11, 8)
    op2 = fld_int(opcode, 7, 5)
    rt = fld_int(opcode, 4, 0)
    enc = (2 + o0, op1, crn, crm, op2)
    name = R.ENCODING_TO_SYSREG.get(enc)
    if name is None:
        m.unreachable(f"unknown system register encoding {enc}")
        return
    reg = Reg(name)
    if is_read:
        aset_X(m, rt, m.read_reg(reg))
    else:
        m.write_reg(reg, aget_X(m, rt, 64))
    advance_pc(m)


@sail_fn
def system_hint(m, opcode: Term) -> None:
    """NOP and other hints (all behave as NOP here)."""
    advance_pc(m)


@sail_fn
def system_exceptions_hvc(m, opcode: Term) -> None:
    imm16 = fld_int(opcode, 20, 5)
    el = m.read_reg(pstate("EL"))
    # HVC is undefined at EL0; from EL1/EL2 it traps to EL2.
    if m.branch(B.eq(el, B.bv(0, 2)), "hvc at EL0"):
        m.unreachable("hvc at EL0 not modelled")
    pc = m.read_reg(PC)
    take_exception(
        m,
        ec=R.EC_HVC64,
        iss=imm16,
        preferred_return=B.bvadd(pc, B.bv(4, 64)),
        same_el=False,
        target_el=2,
    )


@sail_fn
def system_exceptions_svc(m, opcode: Term) -> None:
    """SVC: supervisor call, taken to EL1 (kernel syscall entry)."""
    imm16 = fld_int(opcode, 20, 5)
    el = m.read_reg(pstate("EL"))
    pc = m.read_reg(PC)
    ret = B.bvadd(pc, B.bv(4, 64))
    if m.branch(B.eq(el, B.bv(0, 2)), "svc at EL0"):
        # Lower-EL entry into the EL1 vector.
        take_exception(
            m, ec=R.EC_SVC64, iss=imm16, preferred_return=ret,
            same_el=False, target_el=1,
        )
        return
    if m.branch(B.eq(el, B.bv(1, 2)), "svc at EL1"):
        take_exception(
            m, ec=R.EC_SVC64, iss=imm16, preferred_return=ret, same_el=True
        )
        return
    m.unreachable("svc above EL1 not modelled (would route via HCR.TGE)")


# ---------------------------------------------------------------------------
# Top-level decoder.
# ---------------------------------------------------------------------------

_DECODE_TABLE: list[tuple[str, object]] = [
    ("xxx_100010_xxxxxxxxxxxxxxxxxxxxxxx", integer_arithmetic_addsub_immediate_decode),
    ("xxx_01011_xx0_xxxxxxxxxxxxxxxxxxxxx", integer_arithmetic_addsub_shiftedreg),
    ("xxx_01010_xxxxxxxxxxxxxxxxxxxxxxxx", integer_logical_shiftedreg),
    ("xxx_100100_xxxxxxxxxxxxxxxxxxxxxxx", integer_logical_immediate),
    ("xxx_100101_xxxxxxxxxxxxxxxxxxxxxxx", integer_ins_movewide),
    ("xxx_100110_xxxxxxxxxxxxxxxxxxxxxxx", integer_bitfield_ubfm_sbfm),
    ("xx1110_01_xxxxxxxxxxxxxxxxxxxxxxxx", memory_single_general_immediate_unsigned),
    ("xx1110_00_xx1_xxxxx_xxxx_10_xxxxxxxxxx", memory_single_general_register),
    ("xx1110_00_xx0_xxxxxxxxx_x1_xxxxxxxxxx", memory_single_general_imm9),
    ("xx1110_00_xx0_xxxxxxxxx_00_xxxxxxxxxx", memory_single_general_imm9),
    ("xx_101_0_010_x_xxxxxxxxxxxxxxxxxxxxxx", memory_pair_general),
    ("xx_101_0_011_x_xxxxxxxxxxxxxxxxxxxxxx", memory_pair_general),
    ("xx_101_0_001_x_xxxxxxxxxxxxxxxxxxxxxx", memory_pair_general),
    ("x_xx_10000_xxxxxxxxxxxxxxxxxxx_xxxxx", integer_pcrel_adr),
    ("x_00_11011_000_xxxxx_x_xxxxx_xxxxx_xxxxx", integer_arithmetic_mul_madd),
    ("x_011010_x_xxxxxxxxxxxxxxxxxxx_xxxxx", branch_conditional_compare),
    ("x_011011_x_xxxxxxxxxxxxxxxxxxx_xxxxx", branch_conditional_test),
    ("01010100_xxxxxxxxxxxxxxxxxxx_0_xxxx", branch_conditional_cond),
    ("x_00101_xxxxxxxxxxxxxxxxxxxxxxxxxx", branch_unconditional_immediate),
    ("1101011_00xx_11111_000000_xxxxx_00000", branch_unconditional_register),
    ("11010101000000110010_xxxx_xxx_11111", system_hint),
    ("1101010100_x_1_x_xxx_xxxx_xxxx_xxx_xxxxx", system_register_access),
    ("11010100_000_xxxxxxxxxxxxxxxx_000_10", system_exceptions_hvc),
    ("11010100_000_xxxxxxxxxxxxxxxx_000_01", system_exceptions_svc),
    ("11010110100_11111_000000_11111_00000", lambda m, op: exception_return(m)),
    ("x_10_11010110_00000_000000_xxxxx_xxxxx", integer_arithmetic_rbit),
    ("x_0_x_11010100_xxxxx_xxxx_0_x_xxxxx_xxxxx", integer_conditional_select),
    ("x_x_1_11010010_xxxxx_xxxx_x_0_xxxxx_0_xxxx", integer_conditional_compare),
    ("x_00_11010110_xxxxx_00001_x_xxxxx_xxxxx", integer_arithmetic_div),
]


class ArmModel(IsaModel):
    """The AArch64 model."""

    name = "armv8-a"
    pc_reg = PC
    instr_bytes = 4

    def _declare_registers(self, regfile: RegisterFile) -> None:
        R.declare_arm_registers(regfile)

    def parametric_profile(self):
        from ...isla.parametric import ParametricProfile
        from . import decode

        cached = getattr(self, "_parametric_profile", None)
        if cached is not None:
            return cached
        # Index 31 is SP/XZR — structurally special in ``aget_X``/``aset_X``,
        # so it can never be a renameable placeholder; 30 is the link
        # register some arms touch structurally (bl/blr), so canonical
        # placeholder indices avoid both.
        self._parametric_profile = ParametricProfile(
            arch=self.name,
            decode_fields=decode.decode_fields,
            reg_prefix="R",
            special_indices=frozenset({31}),
            canonical_indices=(0, 1, 2, 3, 4, 5, 6, 7),
        )
        return self._parametric_profile

    @sail_fn
    def execute(self, m: MachineInterface, opcode: Term) -> None:
        """``__DecodeA64``: dispatch on the encoding-class bit patterns."""
        for pattern, handler in _DECODE_TABLE:
            cond = bits_match(opcode, pattern)
            if cond is TRUE:
                handler(m, opcode)
                return
            if cond is FALSE:
                continue
            if m.branch(cond, f"decode {handler.__name__}"):
                handler(m, opcode)
                return
        m.unreachable(f"undecodable opcode {opcode!r}")


# ``sail_fn`` on a method receives ``self`` as its first arg; rebind so the
# machine still gets step accounting via the handlers themselves.
ArmModel.execute = ArmModel.execute.__wrapped__
