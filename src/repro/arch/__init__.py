"""Architecture models: Armv8-A (AArch64) and RISC-V (RV64I)."""
