"""Architecture models: Armv8-A (AArch64), RISC-V (RV64I), and OpenPOWER
(ppc64 fixed-point subset), wired up through :mod:`repro.arch.registry`."""
