"""RV64I single-line assembler: the inverse of :mod:`repro.arch.riscv.decode`.

``assemble_line`` parses exactly the grammar the disassembler emits and
returns the 32-bit word, so ``assemble_line(disassemble(op)) == op`` for
every word the decoder accepts.  Kept independent of both
:mod:`repro.arch.riscv.encode` and the decoder tables so round-trip tests
exercise separate implementations.
"""

from __future__ import annotations

from .decode import ABI, _CSR_NAMES


class AsmError(Exception):
    """The line is not in the disassembler's output grammar."""


_CSR_ADDRS = {name: addr for addr, name in _CSR_NAMES.items()}

_LOADS = {"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6}
_STORES = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
_BRANCHES = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_OPIMM = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_OPS = {
    "add": (0, 0), "sub": (0, 32), "sll": (1, 0), "slt": (2, 0),
    "sltu": (3, 0), "xor": (4, 0), "srl": (5, 0), "sra": (5, 32),
    "or": (6, 0), "and": (7, 0),
}
_OPS_W = {"addw", "subw", "sllw", "srlw", "sraw"}


def _reg(tok: str) -> int:
    try:
        return ABI.index(tok)
    except ValueError:
        raise AsmError(f"bad register {tok!r}") from None


def _int(tok: str) -> int:
    try:
        return int(tok, 0)
    except ValueError:
        raise AsmError(f"bad integer {tok!r}") from None


def _mem(tok: str) -> tuple[int, int]:
    """Parse ``imm(reg)`` to ``(imm, reg)``."""
    if not tok.endswith(")") or "(" not in tok:
        raise AsmError(f"bad memory operand {tok!r}")
    imm, _, reg = tok[:-1].partition("(")
    return _int(imm), _reg(reg)


def _i_type(imm: int, rs1: int, funct3: int, rd: int, major: int) -> int:
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | major


def _s_type(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    return (
        ((imm >> 5 & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | ((imm & 0x1F) << 7) | 0b0100011
    )


def _b_type(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    return (
        ((imm >> 12 & 1) << 31) | ((imm >> 5 & 0x3F) << 25) | (rs2 << 20)
        | (rs1 << 15) | (funct3 << 12) | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7) | 0b1100011
    )


def _j_type(imm: int, rd: int) -> int:
    return (
        ((imm >> 20 & 1) << 31) | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20) | ((imm >> 12 & 0xFF) << 12)
        | (rd << 7) | 0b1101111
    )


def _r_type(funct7: int, rs2: int, rs1: int, funct3: int, rd: int, major: int) -> int:
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | (rd << 7) | major
    )


def _csr_addr(tok: str) -> int:
    if tok in _CSR_ADDRS:
        return _CSR_ADDRS[tok]
    return _int(tok)


def assemble_line(text: str) -> int:
    text = text.strip()
    mnemonic, _, rest = text.partition(" ")
    ops = [o.strip() for o in rest.split(",")] if rest else []

    if mnemonic == "nop":
        return 0b0010011  # addi zero, zero, 0
    if mnemonic == "ret":
        return _i_type(0, 1, 0, 0, 0b1100111)  # jalr zero, 0(ra)
    if mnemonic == "fence":
        return 0x0FF0000F
    if mnemonic in ("ecall", "ebreak", "mret", "wfi"):
        funct12 = {"ecall": 0, "ebreak": 1, "mret": 0x302, "wfi": 0x105}[mnemonic]
        return (funct12 << 20) | 0b1110011

    if mnemonic == "lui":
        return (_int(ops[1]) << 12) | (_reg(ops[0]) << 7) | 0b0110111
    if mnemonic == "auipc":
        return (_int(ops[1]) << 12) | (_reg(ops[0]) << 7) | 0b0010111
    if mnemonic == "j":
        return _j_type(_int(ops[0]), 0)
    if mnemonic == "jal":
        return _j_type(_int(ops[1]), _reg(ops[0]))
    if mnemonic == "jalr":
        imm, rs1 = _mem(ops[1])
        return _i_type(imm, rs1, 0, _reg(ops[0]), 0b1100111)

    if mnemonic in ("beqz", "bnez"):
        funct3 = 0 if mnemonic == "beqz" else 1
        return _b_type(_int(ops[1]), 0, _reg(ops[0]), funct3)
    if mnemonic in _BRANCHES:
        return _b_type(_int(ops[2]), _reg(ops[1]), _reg(ops[0]), _BRANCHES[mnemonic])

    if mnemonic in _LOADS:
        imm, rs1 = _mem(ops[1])
        return _i_type(imm, rs1, _LOADS[mnemonic], _reg(ops[0]), 0b0000011)
    if mnemonic in _STORES:
        imm, rs1 = _mem(ops[1])
        return _s_type(imm, _reg(ops[0]), rs1, _STORES[mnemonic])

    if mnemonic == "li":
        return _i_type(_int(ops[1]), 0, 0, _reg(ops[0]), 0b0010011)
    if mnemonic == "mv":
        return _i_type(0, _reg(ops[1]), 0, _reg(ops[0]), 0b0010011)
    if mnemonic in _OPIMM:
        return _i_type(
            _int(ops[2]), _reg(ops[1]), _OPIMM[mnemonic], _reg(ops[0]), 0b0010011
        )
    if mnemonic == "slli":
        return _r_type(0, 0, _reg(ops[1]), 1, _reg(ops[0]), 0b0010011) | (_int(ops[2]) << 20)
    if mnemonic in ("srli", "srai"):
        funct6 = 0b010000 if mnemonic == "srai" else 0
        return (
            (funct6 << 26) | (_int(ops[2]) << 20) | (_reg(ops[1]) << 15)
            | (5 << 12) | (_reg(ops[0]) << 7) | 0b0010011
        )
    if mnemonic == "addiw":
        return _i_type(_int(ops[2]), _reg(ops[1]), 0, _reg(ops[0]), 0b0011011)
    if mnemonic == "slliw":
        return _r_type(0, _int(ops[2]), _reg(ops[1]), 1, _reg(ops[0]), 0b0011011)
    if mnemonic in ("srliw", "sraiw"):
        funct7 = 0b0100000 if mnemonic == "sraiw" else 0
        return _r_type(funct7, _int(ops[2]), _reg(ops[1]), 5, _reg(ops[0]), 0b0011011)

    if mnemonic in _OPS or (mnemonic in _OPS_W and mnemonic[:-1] in _OPS):
        wide = mnemonic in _OPS_W
        funct3, funct7 = _OPS[mnemonic[:-1] if wide else mnemonic]
        return _r_type(
            funct7, _reg(ops[2]), _reg(ops[1]), funct3, _reg(ops[0]),
            0b0111011 if wide else 0b0110011,
        )

    if mnemonic == "csrr":  # csrrs rd, csr, zero
        return _i_type(_csr_addr(ops[1]), 0, 2, _reg(ops[0]), 0b1110011)
    if mnemonic == "csrw":  # csrrw zero, csr, rs1
        return _i_type(_csr_addr(ops[0]), _reg(ops[1]), 1, 0, 0b1110011)
    if mnemonic in ("csrrw", "csrrs", "csrrc"):
        funct3 = {"csrrw": 1, "csrrs": 2, "csrrc": 3}[mnemonic]
        return _i_type(_csr_addr(ops[1]), _reg(ops[2]), funct3, _reg(ops[0]), 0b1110011)
    if mnemonic in ("csrrwi", "csrrsi", "csrrci"):
        funct3 = {"csrrwi": 5, "csrrsi": 6, "csrrci": 7}[mnemonic]
        return _i_type(_csr_addr(ops[1]), _int(ops[2]), funct3, _reg(ops[0]), 0b1110011)

    raise AsmError(f"cannot assemble {text!r}")
