"""Mini-Sail model of RV64I (the subset the case studies exercise).

Mirrors the structure of the official Sail RISC-V model: a decoder over the
major opcode field dispatching to per-class execute functions.  Supports the
base integer ISA pieces compiled C code needs: LUI/AUIPC, JAL/JALR, the
conditional branches, byte/word/double loads and stores (signed and
unsigned), and the OP/OP-IMM ALU groups (including the 32-bit W forms).

Everything is generic in the machine interface, so the same Isla executor
and Islaris logic work unchanged — the point of §2.7 of the paper.
"""

from __future__ import annotations

from ...itl.events import Reg
from ...sail import primitives as P
from ...sail.iface import MachineInterface, sail_fn
from ...sail.model import IsaModel
from ...sail.registers import RegisterFile
from ...smt import builder as B
from ...smt.terms import Term

PC = Reg("PC")


def xreg(n: int) -> Reg:
    if not 1 <= n <= 31:
        raise ValueError(f"x{n} is not an allocatable register")
    return Reg(f"x{n}")


#: Machine-mode CSRs we model: name -> CSR address (RISC-V privileged spec).
CSR_ADDRESSES = {
    "mstatus": 0x300,
    "misa": 0x301,
    "mie": 0x304,
    "mtvec": 0x305,
    "mscratch": 0x340,
    "mepc": 0x341,
    "mcause": 0x342,
    "mtval": 0x343,
    "mip": 0x344,
    "mhartid": 0xF14,
}

ADDRESS_TO_CSR = {addr: name for name, addr in CSR_ADDRESSES.items()}

#: mcause values for the synchronous traps we model.
CAUSE_ECALL_M = 11
CAUSE_BREAKPOINT = 3

#: mstatus bit positions (machine-mode subset).
MSTATUS_MIE = 3
MSTATUS_MPIE = 7


def declare_riscv_registers(regfile: RegisterFile) -> None:
    for i in range(1, 32):
        regfile.declare(f"x{i}", 64)
    regfile.declare("PC", 64)
    for csr in CSR_ADDRESSES:
        regfile.declare(csr, 64)


def fld(opcode: Term, hi: int, lo: int) -> Term:
    return B.extract(hi, lo, opcode)


def fld_int(opcode: Term, hi: int, lo: int) -> int:
    t = fld(opcode, hi, lo)
    if not t.is_value():
        raise ValueError(f"symbolic decode field [{hi}:{lo}]")
    return t.value


@sail_fn
def rX(m: MachineInterface, n: int) -> Term:
    """Read integer register (x0 reads as zero)."""
    if n == 0:
        return P.zeros(64)
    return m.read_reg(xreg(n))


@sail_fn
def wX(m: MachineInterface, n: int, value: Term) -> None:
    """Write integer register (writes to x0 are discarded)."""
    if n == 0:
        return
    m.write_reg(xreg(n), value)


def advance_pc(m: MachineInterface, pc: Term | None = None) -> None:
    if pc is None:
        pc = m.read_reg(PC)
    m.write_reg(PC, B.bvadd(pc, B.bv(4, 64)))


def _imm_i(opcode: Term) -> Term:
    return P.sign_extend(fld(opcode, 31, 20), 64)


def _imm_s(opcode: Term) -> Term:
    return P.sign_extend(B.concat(fld(opcode, 31, 25), fld(opcode, 11, 7)), 64)


def _imm_b(opcode: Term) -> Term:
    imm = B.concat_many(
        fld(opcode, 31, 31), fld(opcode, 7, 7),
        fld(opcode, 30, 25), fld(opcode, 11, 8), B.bv(0, 1),
    )
    return P.sign_extend(imm, 64)


def _imm_u(opcode: Term) -> Term:
    return P.sign_extend(B.concat(fld(opcode, 31, 12), P.zeros(12)), 64)


def _imm_j(opcode: Term) -> Term:
    imm = B.concat_many(
        fld(opcode, 31, 31), fld(opcode, 19, 12),
        fld(opcode, 20, 20), fld(opcode, 30, 21), B.bv(0, 1),
    )
    return P.sign_extend(imm, 64)


# ---------------------------------------------------------------------------
# Instruction classes.
# ---------------------------------------------------------------------------


@sail_fn
def execute_lui(m, opcode: Term) -> None:
    rd = fld_int(opcode, 11, 7)
    wX(m, rd, _imm_u(opcode))
    advance_pc(m)


@sail_fn
def execute_auipc(m, opcode: Term) -> None:
    rd = fld_int(opcode, 11, 7)
    pc = m.read_reg(PC)
    wX(m, rd, m.define("auipc", B.bvadd(pc, _imm_u(opcode))))
    advance_pc(m, pc)


@sail_fn
def execute_jal(m, opcode: Term) -> None:
    rd = fld_int(opcode, 11, 7)
    pc = m.read_reg(PC)
    wX(m, rd, B.bvadd(pc, B.bv(4, 64)))
    m.write_reg(PC, m.define("target", B.bvadd(pc, _imm_j(opcode))))


@sail_fn
def execute_jalr(m, opcode: Term) -> None:
    rd = fld_int(opcode, 11, 7)
    rs1 = fld_int(opcode, 19, 15)
    pc = m.read_reg(PC)
    base = rX(m, rs1)
    target = B.bvand(
        B.bvadd(base, _imm_i(opcode)), B.bv((1 << 64) - 2, 64)
    )  # clear bit 0, per the spec
    target = m.define("target", target)
    wX(m, rd, B.bvadd(pc, B.bv(4, 64)))
    m.write_reg(PC, target)


_BRANCH_OPS = {
    0b000: lambda a, b: B.eq(a, b),  # BEQ
    0b001: lambda a, b: B.not_(B.eq(a, b)),  # BNE
    0b100: B.bvslt,  # BLT
    0b101: B.bvsge,  # BGE
    0b110: B.bvult,  # BLTU
    0b111: B.bvuge,  # BGEU
}


@sail_fn
def execute_branch(m, opcode: Term) -> None:
    funct3 = fld_int(opcode, 14, 12)
    rs1 = fld_int(opcode, 19, 15)
    rs2 = fld_int(opcode, 24, 20)
    op = _BRANCH_OPS.get(funct3)
    if op is None:
        m.unreachable(f"reserved branch funct3 {funct3:#05b}")
        return
    cond = op(rX(m, rs1), rX(m, rs2))
    pc = m.read_reg(PC)
    if m.branch(cond, "branch taken"):
        m.write_reg(PC, m.define("target", B.bvadd(pc, _imm_b(opcode))))
    else:
        advance_pc(m, pc)


@sail_fn
def execute_load(m, opcode: Term) -> None:
    funct3 = fld_int(opcode, 14, 12)
    rd = fld_int(opcode, 11, 7)
    rs1 = fld_int(opcode, 19, 15)
    width = funct3 & 0b011
    unsigned = bool(funct3 & 0b100)
    nbytes = 1 << width
    if funct3 == 0b111:
        m.unreachable("reserved load funct3")
        return
    addr = m.define("addr", B.bvadd(rX(m, rs1), _imm_i(opcode)))
    data = m.read_mem(addr, nbytes)
    ext = P.zero_extend if unsigned else P.sign_extend
    wX(m, rd, m.define("loaded", ext(data, 64)))
    advance_pc(m)


@sail_fn
def execute_store(m, opcode: Term) -> None:
    funct3 = fld_int(opcode, 14, 12)
    rs1 = fld_int(opcode, 19, 15)
    rs2 = fld_int(opcode, 24, 20)
    nbytes = 1 << (funct3 & 0b011)
    if funct3 > 0b011:
        m.unreachable("reserved store funct3")
        return
    addr = m.define("addr", B.bvadd(rX(m, rs1), _imm_s(opcode)))
    data = rX(m, rs2)
    m.write_mem(addr, B.extract(8 * nbytes - 1, 0, data), nbytes)
    advance_pc(m)


def _alu(m, funct3: int, alt: bool, a: Term, b: Term, width: int) -> Term:
    shamt_mask = B.bv(width - 1, width)
    if funct3 == 0b000:
        return B.bvsub(a, b) if alt else B.bvadd(a, b)
    if funct3 == 0b001:
        return B.bvshl(a, B.bvand(b, shamt_mask))
    if funct3 == 0b010:
        return P.zero_extend(P.bool_to_bit(B.bvslt(a, b)), width)
    if funct3 == 0b011:
        return P.zero_extend(P.bool_to_bit(B.bvult(a, b)), width)
    if funct3 == 0b100:
        return B.bvxor(a, b)
    if funct3 == 0b101:
        sh = B.bvand(b, shamt_mask)
        return B.bvashr(a, sh) if alt else B.bvlshr(a, sh)
    if funct3 == 0b110:
        return B.bvor(a, b)
    return B.bvand(a, b)


@sail_fn
def execute_op_imm(m, opcode: Term, word: bool = False) -> None:
    funct3 = fld_int(opcode, 14, 12)
    rd = fld_int(opcode, 11, 7)
    rs1 = fld_int(opcode, 19, 15)
    width = 32 if word else 64
    a = rX(m, rs1)
    if word:
        a = B.extract(31, 0, a)
    imm = _imm_i(opcode)
    if word:
        imm = B.extract(31, 0, imm)
    alt = False
    if funct3 == 0b101:
        alt = bool(fld_int(opcode, 30, 30))  # SRAI vs SRLI
        imm = B.bvand(imm, B.bv(width - 1, width))
    result = _alu(m, funct3, alt, a, imm, width)
    if word:
        result = P.sign_extend(result, 64)
    wX(m, rd, m.define("alures", result))
    advance_pc(m)


@sail_fn
def execute_op(m, opcode: Term, word: bool = False) -> None:
    funct3 = fld_int(opcode, 14, 12)
    funct7 = fld_int(opcode, 31, 25)
    rd = fld_int(opcode, 11, 7)
    rs1 = fld_int(opcode, 19, 15)
    rs2 = fld_int(opcode, 24, 20)
    if funct7 not in (0b0000000, 0b0100000):
        m.unreachable(f"funct7 {funct7:#09b} not modelled (no M extension)")
        return
    alt = funct7 == 0b0100000
    width = 32 if word else 64
    a, b = rX(m, rs1), rX(m, rs2)
    if word:
        a, b = B.extract(31, 0, a), B.extract(31, 0, b)
    result = _alu(m, funct3, alt, a, b, width)
    if word:
        result = P.sign_extend(result, 64)
    wX(m, rd, m.define("alures", result))
    advance_pc(m)


@sail_fn
def take_trap(m, cause: int, pc: Term, tval: Term | None = None) -> None:
    """Machine-mode synchronous trap entry (the Sail model's
    ``trap_handler``, M-mode-only subset): save the PC and cause, stack the
    interrupt-enable bit, and jump to ``mtvec`` (direct mode)."""
    m.write_reg(Reg("mepc"), pc)
    m.write_reg(Reg("mcause"), B.bv(cause, 64))
    m.write_reg(Reg("mtval"), tval if tval is not None else B.bv(0, 64))
    status = m.read_reg(Reg("mstatus"))
    mie = P.bit(status, MSTATUS_MIE)
    status = P.set_slice(status, MSTATUS_MPIE, mie)  # MPIE := MIE
    status = P.set_slice(status, MSTATUS_MIE, B.bv(0, 1))  # MIE := 0
    m.write_reg(Reg("mstatus"), m.define("mstatus", status))
    tvec = m.read_reg(Reg("mtvec"))
    # Direct mode: base is tvec[63:2] << 2 (we require MODE = 0).
    m.write_reg(PC, B.bvand(tvec, B.bv(~0b11, 64)))


@sail_fn
def execute_mret(m, opcode: Term) -> None:
    """MRET: return from a machine-mode trap (unstack MIE, jump to mepc)."""
    status = m.read_reg(Reg("mstatus"))
    mpie = P.bit(status, MSTATUS_MPIE)
    status = P.set_slice(status, MSTATUS_MIE, mpie)  # MIE := MPIE
    status = P.set_slice(status, MSTATUS_MPIE, B.bv(1, 1))  # MPIE := 1
    m.write_reg(Reg("mstatus"), m.define("mstatus", status))
    m.write_reg(PC, m.read_reg(Reg("mepc")))


@sail_fn
def execute_csr(m, opcode: Term) -> None:
    """Zicsr: CSRRW/CSRRS/CSRRC and their immediate forms."""
    funct3 = fld_int(opcode, 14, 12)
    rd = fld_int(opcode, 11, 7)
    rs1 = fld_int(opcode, 19, 15)
    addr = fld_int(opcode, 31, 20)
    name = ADDRESS_TO_CSR.get(addr)
    if name is None:
        m.unreachable(f"CSR {addr:#05x} not modelled")
        return
    csr = Reg(name)
    imm_form = bool(funct3 & 0b100)
    operand = (
        P.zero_extend(B.bv(rs1, 5), 64) if imm_form else rX(m, rs1)
    )
    kind = funct3 & 0b011
    # CSRRW with rd=x0 skips the read; CSRRS/C with rs1=x0 skip the write.
    old = None
    if not (kind == 0b01 and rd == 0):
        old = m.read_reg(csr)
    if kind == 0b01:  # CSRRW
        m.write_reg(csr, operand)
    elif rs1 != 0:
        if kind == 0b10:  # CSRRS
            m.write_reg(csr, m.define("csrval", B.bvor(old, operand)))
        else:  # CSRRC
            m.write_reg(csr, m.define("csrval", B.bvand(old, B.bvnot(operand))))
    if old is not None:
        wX(m, rd, old)
    advance_pc(m)


@sail_fn
def execute_system(m, opcode: Term) -> None:
    funct3 = fld_int(opcode, 14, 12)
    if funct3 != 0:
        execute_csr(m, opcode)
        return
    funct12 = fld_int(opcode, 31, 20)
    pc = m.read_reg(PC)
    if funct12 == 0b000000000000:  # ECALL
        take_trap(m, CAUSE_ECALL_M, pc)
    elif funct12 == 0b000000000001:  # EBREAK
        take_trap(m, CAUSE_BREAKPOINT, pc, tval=pc)
    elif funct12 == 0b001100000010:  # MRET
        execute_mret(m, opcode)
    elif funct12 == 0b000100000101:  # WFI: behaves as NOP here
        advance_pc(m, pc)
    else:
        m.unreachable(f"SYSTEM funct12 {funct12:#014b} not modelled")


class RiscvModel(IsaModel):
    """The RV64I model."""

    name = "riscv64"
    pc_reg = PC
    instr_bytes = 4

    def _declare_registers(self, regfile: RegisterFile) -> None:
        declare_riscv_registers(regfile)

    def parametric_profile(self):
        from ...isla.parametric import ParametricProfile
        from . import decode

        cached = getattr(self, "_parametric_profile", None)
        if cached is not None:
            return cached
        # x0 reads as zero and swallows writes (``rX``/``wX`` special-case
        # index 0), so it is never a renameable placeholder and canonical
        # indices start at 1.
        self._parametric_profile = ParametricProfile(
            arch=self.name,
            decode_fields=decode.decode_fields,
            reg_prefix="x",
            special_indices=frozenset({0}),
            canonical_indices=(1, 2, 3, 4, 5, 6, 7, 8),
        )
        return self._parametric_profile

    def execute(self, m: MachineInterface, opcode: Term) -> None:
        major = fld_int(opcode, 6, 0)
        if major == 0b0110111:
            execute_lui(m, opcode)
        elif major == 0b0010111:
            execute_auipc(m, opcode)
        elif major == 0b1101111:
            execute_jal(m, opcode)
        elif major == 0b1100111:
            execute_jalr(m, opcode)
        elif major == 0b1100011:
            execute_branch(m, opcode)
        elif major == 0b0000011:
            execute_load(m, opcode)
        elif major == 0b0100011:
            execute_store(m, opcode)
        elif major == 0b0010011:
            execute_op_imm(m, opcode)
        elif major == 0b0011011:
            execute_op_imm(m, opcode, word=True)
        elif major == 0b0110011:
            execute_op(m, opcode)
        elif major == 0b0111011:
            execute_op(m, opcode, word=True)
        elif major == 0b0001111:
            advance_pc(m)  # FENCE behaves as NOP (single-threaded)
        elif major == 0b1110011:
            execute_system(m, opcode)
        else:
            m.unreachable(f"major opcode {major:#09b} not modelled")
