"""Declarative ISA specification for the modelled RV64I subset.

This is the input to :mod:`repro.analysis.isaspec`: every decode arm of
:mod:`repro.arch.riscv.decode` restated as an exact bitvector claim, plus
the defined-invalid space (unallocated major opcodes; reserved minor
encodings fall out as region residuals).  The validator proves the claims
pairwise disjoint and jointly covering, round-trips the encoder packing
symbolically, and grounds everything against the real Python
decoder/encoder on witness and probe words.

The tables here are deliberately *independent* re-derivations from the ISA
manual's shapes — agreement with ``decode.py``/``encode.py`` is proved, not
assumed.
"""

from __future__ import annotations

from ...analysis.isaspec import ArmSpec, EncoderSpec, InvalidRegion, IsaSpec
from . import decode, encode

# Major opcodes (bits [6:0]) of the modelled subset.
_MAJORS = {
    "lui": 0b0110111, "auipc": 0b0010111, "jal": 0b1101111,
    "jalr": 0b1100111, "branch": 0b1100011, "load": 0b0000011,
    "store": 0b0100011, "op_imm": 0b0010011, "op_imm32": 0b0011011,
    "op": 0b0110011, "op32": 0b0111011, "fence": 0b0001111,
    "system": 0b1110011,
}


def _major(name: str) -> tuple:
    return ("eq", 6, 0, _MAJORS[name])


_U_PLACES = (("imm20", 12, 20), ("rd", 7, 5))
_I_PLACES = (("imm12", 20, 12), ("rs1", 15, 5), ("rd", 7, 5))
_SB_PLACES = (
    ("imm_hi", 25, 7), ("rs2", 20, 5), ("rs1", 15, 5),
    ("funct3", 12, 3), ("imm_lo", 7, 5),
)
_R_PLACES = (
    ("funct7", 25, 7), ("rs2", 20, 5), ("rs1", 15, 5),
    ("funct3", 12, 3), ("rd", 7, 5),
)


def _u_encoder(name: str) -> EncoderSpec:
    return EncoderSpec(fixed=_MAJORS[name], fixed_mask=0x7F, places=_U_PLACES)


def _i_encoder(name: str, funct3: int | None = None) -> EncoderSpec:
    if funct3 is None:
        return EncoderSpec(
            fixed=_MAJORS[name], fixed_mask=0x7F,
            places=_I_PLACES + (("funct3", 12, 3),),
        )
    return EncoderSpec(
        fixed=_MAJORS[name] | (funct3 << 12), fixed_mask=0x7F | (0b111 << 12),
        places=_I_PLACES,
    )


def _arms() -> tuple:
    arms = [
        ArmSpec(
            name="lui", match=(_major("lui"),), encoder=_u_encoder("lui"),
        ),
        ArmSpec(
            name="auipc", match=(_major("auipc"),), encoder=_u_encoder("auipc"),
        ),
        ArmSpec(
            name="jal", match=(_major("jal"),), encoder=_u_encoder("jal"),
        ),
        ArmSpec(
            name="jalr",
            match=(_major("jalr"), ("eq", 14, 12, 0)),
            region=(_major("jalr"),),
            encoder=_i_encoder("jalr", funct3=0),
        ),
        ArmSpec(
            name="branch",
            match=(_major("branch"), ("in", 14, 12, (0, 1, 4, 5, 6, 7))),
            region=(_major("branch"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["branch"], fixed_mask=0x7F, places=_SB_PLACES,
            ),
        ),
        ArmSpec(
            name="load",
            match=(_major("load"), ("lt", 14, 12, 7)),
            region=(_major("load"),),
            encoder=_i_encoder("load"),
        ),
        ArmSpec(
            name="store",
            match=(_major("store"), ("lt", 14, 12, 4)),
            region=(_major("store"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["store"], fixed_mask=0x7F, places=_SB_PLACES,
            ),
        ),
        ArmSpec(
            name="op_imm",
            match=(
                _major("op_imm"),
                ("or",
                 ("notin", 14, 12, (1, 5)),
                 ("and", ("eq", 14, 12, 1), ("eq", 31, 26, 0)),
                 ("and", ("eq", 14, 12, 5),
                  ("in", 31, 26, (0b000000, 0b010000)))),
            ),
            region=(_major("op_imm"),),
            encoder=_i_encoder("op_imm"),
        ),
        ArmSpec(
            name="op_imm32",
            match=(
                _major("op_imm32"),
                ("or",
                 ("eq", 14, 12, 0),
                 ("and", ("eq", 14, 12, 1), ("eq", 31, 25, 0)),
                 ("and", ("eq", 14, 12, 5),
                  ("in", 31, 25, (0b0000000, 0b0100000)))),
            ),
            region=(_major("op_imm32"),),
            encoder=_i_encoder("op_imm32"),
        ),
        ArmSpec(
            name="op",
            match=(
                _major("op"),
                ("or",
                 ("eq", 31, 25, 0),
                 ("and", ("eq", 31, 25, 0b0100000), ("in", 14, 12, (0, 5)))),
            ),
            region=(_major("op"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["op"], fixed_mask=0x7F, places=_R_PLACES,
            ),
        ),
        ArmSpec(
            name="op32",
            match=(
                _major("op32"),
                ("or",
                 ("and", ("eq", 31, 25, 0), ("in", 14, 12, (0, 1, 5))),
                 ("and", ("eq", 31, 25, 0b0100000), ("in", 14, 12, (0, 5)))),
            ),
            region=(_major("op32"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["op32"], fixed_mask=0x7F, places=_R_PLACES,
            ),
        ),
        ArmSpec(
            name="fence",
            # Only the canonical full fence word is modelled.
            match=(("eq", 31, 0, 0x0FF0000F),),
            region=(_major("fence"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["fence"], fixed_mask=0x7F,
                places=(
                    ("fm_pred_succ", 20, 12), ("rs1", 15, 5),
                    ("funct3", 12, 3), ("rd", 7, 5),
                ),
            ),
        ),
        ArmSpec(
            name="system",
            match=(
                _major("system"),
                ("or",
                 ("in", 14, 12, (1, 2, 3, 5, 6, 7)),
                 ("and", ("eq", 14, 12, 0), ("eq", 19, 7, 0),
                  ("in", 31, 20, (0, 1, 0x302, 0x105)))),
            ),
            region=(_major("system"),),
            encoder=EncoderSpec(
                fixed=_MAJORS["system"], fixed_mask=0x7F,
                places=(
                    ("funct12", 20, 12), ("rs1", 15, 5),
                    ("funct3", 12, 3), ("rd", 7, 5),
                ),
            ),
        ),
    ]
    return tuple(arms)


def _layouts() -> dict:
    i_imm = decode._i_type("imm")
    i_struct = decode._i_type("struct")
    sb = decode._s_or_b_type("imm")
    fence = decode._riscv_fields(0x0FF0000F)
    # system layout variants by funct3 class: csr-reg / csr-imm / ecall-class.
    sys_reg = decode._riscv_fields(encode.csrrw(1, "mstatus", 2))
    sys_imm = decode._riscv_fields(encode.csrrwi(1, "mstatus", 3))
    sys_bare = decode._riscv_fields(encode.ecall())
    return {
        "lui": (decode._U_TYPE,),
        "auipc": (decode._U_TYPE,),
        "jal": (decode._U_TYPE,),
        "jalr": (i_imm,),
        "branch": (sb,),
        "load": (i_imm,),
        "store": (sb,),
        "op_imm": (i_imm, i_struct),
        "op_imm32": (i_imm, i_struct),
        "op": (decode._R_TYPE,),
        "op32": (decode._R_TYPE,),
        "fence": (fence,),
        "system": (sys_reg, sys_imm, sys_bare),
    }


def _probes() -> dict:
    e = encode
    return {
        "lui": (e.lui(5, 0x12345), e.lui(0, 0xFFFFF)),
        "auipc": (e.auipc(3, 1), e.auipc(31, 0)),
        "jal": (e.jal(1, 2048), e.jal(0, -4)),
        "jalr": (e.jalr(0, 1, 0), e.jalr(5, 6, -8), e.ret()),
        "branch": (
            e.beq(1, 2, 8), e.bne(3, 4, -8), e.blt(5, 6, 16),
            e.bge(7, 8, -16), e.bltu(9, 10, 32), e.bgeu(11, 12, -64),
        ),
        "load": (
            e.lb(1, 2, 0), e.lh(3, 4, 2), e.lw(5, 6, -4), e.ld(7, 8, 8),
            e.lbu(9, 10, 1), e.lhu(11, 12, -2), e.lwu(13, 14, 4),
        ),
        "store": (e.sb(1, 2, 0), e.sh(3, 4, 2), e.sw(5, 6, -4), e.sd(7, 8, 8)),
        "op_imm": (
            e.addi(1, 2, 3), e.slti(3, 4, -5), e.sltiu(5, 6, 7),
            e.xori(7, 8, -1), e.ori(9, 10, 0xF), e.andi(11, 12, -16),
            e.slli(13, 14, 5), e.srli(15, 16, 6), e.srai(17, 18, 7),
        ),
        "op_imm32": (e.addiw(1, 2, 3), e.srliw(4, 5, 6)),
        "op": (
            e.add(1, 2, 3), e.sub(4, 5, 6), e.sll(7, 8, 9), e.slt(10, 11, 12),
            e.sltu(13, 14, 15), e.xor(16, 17, 18), e.srl(19, 20, 21),
            e.sra(22, 23, 24), e.or_(25, 26, 27), e.and_(28, 29, 30),
        ),
        "op32": (e.addw(1, 2, 3),),
        "fence": (0x0FF0000F,),
        "system": (
            e.csrrw(1, "mstatus", 2), e.csrrs(3, "mepc", 4),
            e.csrrc(5, "mcause", 6), e.csrrwi(7, "mtvec", 8),
            e.csrrsi(9, "mie", 10), e.csrrci(11, "mip", 12),
            e.csrr(13, "mhartid"), e.csrw("mscratch", 14),
            e.ecall(), e.ebreak(), e.mret(), e.wfi(),
        ),
    }


def build_spec() -> IsaSpec:
    return IsaSpec(
        arch="riscv",
        arms=_arms(),
        invalid=(
            InvalidRegion(
                name="unallocated_major",
                clauses=(("notin", 6, 0, tuple(sorted(_MAJORS.values()))),),
            ),
        ),
        layouts=_layouts(),
        reg_count=32,
        decode_arm=decode.decode_arm,
        decode_fields=decode.decode_fields,
        invalid_exc=decode.UnknownInstruction,
        probes=_probes(),
        coverage_shard=None,
    )
