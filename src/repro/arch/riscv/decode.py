"""RV64I decoder / disassembler for the modelled subset."""

from __future__ import annotations

ABI = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]


class UnknownInstruction(Exception):
    """The opcode is outside the modelled subset."""


def _f(op: int, hi: int, lo: int) -> int:
    return (op >> lo) & ((1 << (hi - lo + 1)) - 1)


def _simm(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _imm_i(op: int) -> int:
    return _simm(_f(op, 31, 20), 12)


def _imm_s(op: int) -> int:
    return _simm((_f(op, 31, 25) << 5) | _f(op, 11, 7), 12)


def _imm_b(op: int) -> int:
    raw = (
        (_f(op, 31, 31) << 12) | (_f(op, 7, 7) << 11)
        | (_f(op, 30, 25) << 5) | (_f(op, 11, 8) << 1)
    )
    return _simm(raw, 13)


def _imm_j(op: int) -> int:
    raw = (
        (_f(op, 31, 31) << 20) | (_f(op, 19, 12) << 12)
        | (_f(op, 20, 20) << 11) | (_f(op, 30, 21) << 1)
    )
    return _simm(raw, 21)


_LOADS = {0: "lb", 1: "lh", 2: "lw", 3: "ld", 4: "lbu", 5: "lhu", 6: "lwu"}
_STORES = {0: "sb", 1: "sh", 2: "sw", 3: "sd"}
_BRANCHES = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
_OPIMM = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}
_OP = {
    (0, 0): "add", (0, 32): "sub", (1, 0): "sll", (2, 0): "slt",
    (3, 0): "sltu", (4, 0): "xor", (5, 0): "srl", (5, 32): "sra",
    (6, 0): "or", (7, 0): "and",
}


def disassemble(op: int) -> str:
    major = _f(op, 6, 0)
    rd, rs1, rs2 = ABI[_f(op, 11, 7)], ABI[_f(op, 19, 15)], ABI[_f(op, 24, 20)]
    funct3 = _f(op, 14, 12)
    if major == 0b0110111:
        return f"lui {rd}, {_f(op, 31, 12):#x}"
    if major == 0b0010111:
        return f"auipc {rd}, {_f(op, 31, 12):#x}"
    if major == 0b1101111:
        off = _imm_j(op)
        return f"j {off}" if rd == "zero" else f"jal {rd}, {off}"
    if major == 0b1100111 and funct3 == 0:
        if rd == "zero" and rs1 == "ra" and _imm_i(op) == 0:
            return "ret"
        return f"jalr {rd}, {_imm_i(op)}({rs1})"
    if major == 0b1100011 and funct3 in _BRANCHES:
        name = _BRANCHES[funct3]
        if rs2 == "zero" and name in ("beq", "bne"):
            return f"{name}z {rs1}, {_imm_b(op)}"
        return f"{name} {rs1}, {rs2}, {_imm_b(op)}"
    if major == 0b0000011 and funct3 in _LOADS:
        return f"{_LOADS[funct3]} {rd}, {_imm_i(op)}({rs1})"
    if major == 0b0100011 and funct3 in _STORES:
        return f"{_STORES[funct3]} {rs2}, {_imm_s(op)}({rs1})"
    if major == 0b0010011:
        if funct3 == 1:
            if _f(op, 31, 26):  # funct6 must be zero for RV64 slli
                raise UnknownInstruction(f"{op:#010x}")
            return f"slli {rd}, {rs1}, {_f(op, 25, 20)}"
        if funct3 == 5:
            if _f(op, 31, 26) not in (0b000000, 0b010000):
                raise UnknownInstruction(f"{op:#010x}")
            name = "srai" if _f(op, 30, 30) else "srli"
            return f"{name} {rd}, {rs1}, {_f(op, 25, 20)}"
        name = _OPIMM[funct3]
        imm = _imm_i(op)
        if name == "addi":
            if rd == "zero" and rs1 == "zero" and imm == 0:
                return "nop"
            if rs1 == "zero":
                return f"li {rd}, {imm}"
            if imm == 0:
                return f"mv {rd}, {rs1}"
        return f"{name} {rd}, {rs1}, {imm}"
    if major == 0b0011011:
        if funct3 == 0:
            return f"addiw {rd}, {rs1}, {_imm_i(op)}"
        if funct3 == 1 and _f(op, 31, 25) == 0:
            return f"slliw {rd}, {rs1}, {_f(op, 24, 20)}"
        if funct3 == 5 and _f(op, 31, 25) in (0b0000000, 0b0100000):
            name = "sraiw" if _f(op, 30, 30) else "srliw"
            return f"{name} {rd}, {rs1}, {_f(op, 24, 20)}"
    if major in (0b0110011, 0b0111011):
        key = (funct3, _f(op, 31, 25))
        name = _OP.get(key)
        if name is not None:
            if major == 0b0111011:
                if name not in ("add", "sub", "sll", "srl", "sra"):
                    raise UnknownInstruction(f"{op:#010x}")  # no sltw etc.
                name += "w"
            return f"{name} {rd}, {rs1}, {rs2}"
    if major == 0b0001111:
        # Only the canonical full fence; other pred/succ/fm fields would all
        # print as the same text.
        if op != 0x0FF0000F:
            raise UnknownInstruction(f"{op:#010x}")
        return "fence"
    if major == 0b1110011:
        return _system(op, rd, rs1, funct3)
    raise UnknownInstruction(f"{op:#010x}")


_CSR_NAMES = {
    0x300: "mstatus", 0x301: "misa", 0x304: "mie", 0x305: "mtvec",
    0x340: "mscratch", 0x341: "mepc", 0x342: "mcause", 0x343: "mtval",
    0x344: "mip", 0xF14: "mhartid",
}


def _system(op: int, rd: str, rs1: str, funct3: int) -> str:
    if funct3 == 0:
        if _f(op, 19, 7):  # rd/rs1 must be x0
            raise UnknownInstruction(f"{op:#010x}")
        funct12 = _f(op, 31, 20)
        name = {0: "ecall", 1: "ebreak", 0x302: "mret", 0x105: "wfi"}.get(funct12)
        if name is None:
            raise UnknownInstruction(f"{op:#010x}")
        return name
    if funct3 == 0b100:  # reserved
        raise UnknownInstruction(f"{op:#010x}")
    csr_addr = _f(op, 31, 20)
    csr = _CSR_NAMES.get(csr_addr, f"{csr_addr:#x}")
    base = {1: "csrrw", 2: "csrrs", 3: "csrrc"}[funct3 & 0b011]
    if funct3 & 0b100:
        return f"{base}i {rd}, {csr}, {_f(op, 19, 15)}"
    if base == "csrrs" and rs1 == "zero":
        return f"csrr {rd}, {csr}"
    if base == "csrrw" and rd == "zero":
        return f"csrw {csr}, {rs1}"
    return f"{base} {rd}, {csr}, {rs1}"


def try_disassemble(op: int) -> str:
    try:
        return disassemble(op)
    except UnknownInstruction:
        return f".word {op:#010x}"


_MAJOR_ARMS = {
    0b0110111: "lui", 0b0010111: "auipc", 0b1101111: "jal",
    0b1100111: "jalr", 0b1100011: "branch", 0b0000011: "load",
    0b0100011: "store", 0b0010011: "op_imm", 0b0011011: "op_imm32",
    0b0110011: "op", 0b0111011: "op32", 0b0001111: "fence",
    0b1110011: "system",
}


def decode_arm(op: int) -> str:
    """The decoder arm (major-opcode class) that claims ``op``.

    Raises :class:`UnknownInstruction` exactly when :func:`disassemble` does;
    round-trip tests use this for generator-coverage assertions.
    """
    disassemble(op)
    return _MAJOR_ARMS[_f(op, 6, 0)]


#: Every decode-arm name, in major-opcode order.  The architecture registry
#: exposes this as the authoritative arm list for coverage maps.
DECODE_ARMS = tuple(_MAJOR_ARMS.values())


# -- structured operand fields ------------------------------------------------
#
# Per-arm bit layouts as (name, hi, lo, kind) tuples, MSB-first, tiling all
# 32 bits.  Kinds mirror ``arch.arm.decode``: ``reg`` operand register
# indices, ``imm`` immediates the model reads symbolically (``fld``), and
# ``struct`` for pattern/selector bits plus anything the model consumes as a
# Python int (``fld_int`` — e.g. the srli/srai ``alt`` bit, so the whole
# funct3==5 immediate is structural).  Scrambled B/J immediates are exposed
# as the *raw* field positions; the model applies the same bit scatter to
# both the family's free variable and a directly-executed concrete opcode,
# so substitution folds them identically.

_U_TYPE = (
    ("imm20", 31, 12, "imm"), ("rd", 11, 7, "reg"), ("major", 6, 0, "struct"),
)
_R_TYPE = (
    ("funct7", 31, 25, "struct"), ("rs2", 24, 20, "reg"),
    ("rs1", 19, 15, "reg"), ("funct3", 14, 12, "struct"),
    ("rd", 11, 7, "reg"), ("major", 6, 0, "struct"),
)


def _i_type(imm_kind: str) -> tuple:
    return (
        ("imm12", 31, 20, imm_kind), ("rs1", 19, 15, "reg"),
        ("funct3", 14, 12, "struct"), ("rd", 11, 7, "reg"),
        ("major", 6, 0, "struct"),
    )


def _s_or_b_type(imm_kind: str) -> tuple:
    return (
        ("imm_hi", 31, 25, imm_kind), ("rs2", 24, 20, "reg"),
        ("rs1", 19, 15, "reg"), ("funct3", 14, 12, "struct"),
        ("imm_lo", 11, 7, imm_kind), ("major", 6, 0, "struct"),
    )


def _riscv_fields(op: int) -> tuple:
    major = _f(op, 6, 0)
    funct3 = _f(op, 14, 12)
    if major in (0b0110111, 0b0010111, 0b1101111):  # lui / auipc / jal
        return _U_TYPE
    if major in (0b1100111, 0b0000011):  # jalr / load
        return _i_type("imm")
    if major == 0b1100011:  # branch
        return _s_or_b_type("imm")
    if major == 0b0100011:  # store
        return _s_or_b_type("imm")
    if major in (0b0010011, 0b0011011):  # op_imm / op_imm32
        # funct3==5 (srli/srai) routes bit 30 through ``fld_int``; the whole
        # immediate is structural there.  Shifts (funct3==1) mask the shamt
        # symbolically, so their immediate stays free.
        return _i_type("struct" if funct3 == 5 else "imm")
    if major in (0b0110011, 0b0111011):  # op / op32
        return _R_TYPE
    if major == 0b0001111:  # fence (single canonical encoding)
        return (
            ("fm_pred_succ", 31, 20, "struct"), ("rs1", 19, 15, "struct"),
            ("funct3", 14, 12, "struct"), ("rd", 11, 7, "struct"),
            ("major", 6, 0, "struct"),
        )
    # system: csr register forms (funct3 in {1,2,3}) use rs1 as a register;
    # immediate forms use it as a zimm payload, and funct3==0 (ecall/...)
    # requires rd=rs1=0.  rd is written for every csr form.
    rs1_kind = "reg" if funct3 in (1, 2, 3) else "struct"
    rd_kind = "reg" if funct3 != 0 else "struct"
    return (
        ("funct12", 31, 20, "struct"), ("rs1", 19, 15, rs1_kind),
        ("funct3", 14, 12, "struct"), ("rd", 11, 7, rd_kind),
        ("major", 6, 0, "struct"),
    )


def decode_fields(op: int):
    """The decode arm claiming ``op`` plus its structured bit-field layout.

    Returns ``(arm_name, fields)`` with ``fields`` a tuple of
    ``(name, hi, lo, kind)`` tuples tiling the 32-bit word MSB-first, or
    ``None`` when the opcode is outside the modelled subset.
    """
    try:
        arm = decode_arm(op)
    except UnknownInstruction:
        return None
    return arm, _riscv_fields(op)


def decode_operands(op: int) -> dict[str, int] | None:
    """The operand fields (``reg`` and ``imm`` kinds) of ``op`` as a dict.

    ``None`` when the opcode is outside the modelled subset.
    """
    decoded = decode_fields(op)
    if decoded is None:
        return None
    _, fields = decoded
    return {
        name: _f(op, hi, lo)
        for name, hi, lo, kind in fields
        if kind in ("reg", "imm")
    }
