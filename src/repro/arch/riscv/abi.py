"""RISC-V LP64 calling convention (the psABI roles used by specifications).

The §2.7 point: an Islaris specification for RISC-V differs from the Arm one
mostly in this table.
"""

from __future__ import annotations

#: argument / return registers a0-a7 (x10-x17)
ARG_REGS = [f"x{i}" for i in range(10, 18)]

#: return-address register (ra)
LINK_REG = "x1"

#: stack pointer
STACK_REG = "x2"

#: callee-saved registers s0-s11
CALLEE_SAVED = ["x8", "x9"] + [f"x{i}" for i in range(18, 28)]

#: caller-saved temporaries t0-t6
TEMP_REGS = ["x5", "x6", "x7"] + [f"x{i}" for i in range(28, 32)]

#: the machine-mode CSRs a trap handler owns
TRAP_CSRS = ["mstatus", "mtvec", "mepc", "mcause", "mtval", "mscratch"]


def abi_name(xreg: str) -> str:
    """The psABI name of an x-register (``x10`` -> ``a0``)."""
    from .decode import ABI

    return ABI[int(xreg[1:])]
