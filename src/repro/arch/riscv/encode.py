"""RV64I instruction encoder."""

from __future__ import annotations

RA = 1  # return-address register x1
SP = 2

ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17,
    **{f"s{i}": 16 + i for i in range(2, 12)},
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def reg(name: str | int) -> int:
    if isinstance(name, int):
        n = name
    else:
        n = ABI_NAMES.get(name)
        if n is None:
            if name.startswith("x"):
                n = int(name[1:])
            else:
                raise ValueError(f"unknown register {name}")
    if not 0 <= n <= 31:
        raise ValueError(f"register out of range: {n}")
    return n


def _signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{what} out of range: {value}")
    return value & ((1 << bits) - 1)


def _r(funct7: int, rs2: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _i(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (_signed(imm, 12, "imm") << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _s(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    imm = _signed(imm, 12, "imm")
    return (
        ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | ((imm & 0x1F) << 7) | opcode
    )


def _b(imm: int, rs2: int, rs1: int, funct3: int) -> int:
    imm = _signed(imm, 13, "branch offset")
    if imm & 1:
        raise ValueError("branch offset must be even")
    return (
        (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0b1100011
    )


# -- U/J types ------------------------------------------------------------------


def lui(rd, imm20):
    return ((imm20 & 0xFFFFF) << 12) | (reg(rd) << 7) | 0b0110111


def auipc(rd, imm20):
    return ((imm20 & 0xFFFFF) << 12) | (reg(rd) << 7) | 0b0010111


def jal(rd, offset):
    imm = _signed(offset, 21, "jal offset")
    if imm & 1:
        raise ValueError("jal offset must be even")
    return (
        (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
        | (reg(rd) << 7) | 0b1101111
    )


def jalr(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b000, reg(rd), 0b1100111)


def ret():
    return jalr(0, RA, 0)


def j(offset):
    return jal(0, offset)


# -- branches ---------------------------------------------------------------------


def beq(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b000)


def bne(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b001)


def blt(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b100)


def bge(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b101)


def bltu(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b110)


def bgeu(rs1, rs2, offset):
    return _b(offset, reg(rs2), reg(rs1), 0b111)


def beqz(rs1, offset):
    return beq(rs1, 0, offset)


def bnez(rs1, offset):
    return bne(rs1, 0, offset)


# -- loads/stores --------------------------------------------------------------------


def lb(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b000, reg(rd), 0b0000011)


def lh(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b001, reg(rd), 0b0000011)


def lw(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b010, reg(rd), 0b0000011)


def ld(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b011, reg(rd), 0b0000011)


def lbu(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b100, reg(rd), 0b0000011)


def lhu(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b101, reg(rd), 0b0000011)


def lwu(rd, rs1, imm=0):
    return _i(imm, reg(rs1), 0b110, reg(rd), 0b0000011)


def sb(rs2, rs1, imm=0):
    return _s(imm, reg(rs2), reg(rs1), 0b000, 0b0100011)


def sh(rs2, rs1, imm=0):
    return _s(imm, reg(rs2), reg(rs1), 0b001, 0b0100011)


def sw(rs2, rs1, imm=0):
    return _s(imm, reg(rs2), reg(rs1), 0b010, 0b0100011)


def sd(rs2, rs1, imm=0):
    return _s(imm, reg(rs2), reg(rs1), 0b011, 0b0100011)


# -- OP-IMM -------------------------------------------------------------------------------


def addi(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b000, reg(rd), 0b0010011)


def slti(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b010, reg(rd), 0b0010011)


def sltiu(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b011, reg(rd), 0b0010011)


def xori(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b100, reg(rd), 0b0010011)


def ori(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b110, reg(rd), 0b0010011)


def andi(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b111, reg(rd), 0b0010011)


def slli(rd, rs1, shamt):
    return _i(shamt, reg(rs1), 0b001, reg(rd), 0b0010011)


def srli(rd, rs1, shamt):
    return _i(shamt, reg(rs1), 0b101, reg(rd), 0b0010011)


def srai(rd, rs1, shamt):
    return _i(shamt | 0x400, reg(rs1), 0b101, reg(rd), 0b0010011)


def mv(rd, rs1):
    return addi(rd, rs1, 0)


def li(rd, imm):
    return addi(rd, 0, imm)


def nop():
    return addi(0, 0, 0)


# -- OP ------------------------------------------------------------------------------------------


def add(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b000, reg(rd), 0b0110011)


def sub(rd, rs1, rs2):
    return _r(0b0100000, reg(rs2), reg(rs1), 0b000, reg(rd), 0b0110011)


def sll(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b001, reg(rd), 0b0110011)


def slt(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b010, reg(rd), 0b0110011)


def sltu(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b011, reg(rd), 0b0110011)


def xor(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b100, reg(rd), 0b0110011)


def srl(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b101, reg(rd), 0b0110011)


def sra(rd, rs1, rs2):
    return _r(0b0100000, reg(rs2), reg(rs1), 0b101, reg(rd), 0b0110011)


def or_(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b110, reg(rd), 0b0110011)


def and_(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b111, reg(rd), 0b0110011)


def addw(rd, rs1, rs2):
    return _r(0, reg(rs2), reg(rs1), 0b000, reg(rd), 0b0111011)


def addiw(rd, rs1, imm):
    return _i(imm, reg(rs1), 0b000, reg(rd), 0b0011011)


def srliw(rd, rs1, shamt):
    return _i(shamt, reg(rs1), 0b101, reg(rd), 0b0011011)


# -- Zicsr and machine-mode system instructions -----------------------------------

CSR_NAMES = {
    "mstatus": 0x300, "misa": 0x301, "mie": 0x304, "mtvec": 0x305,
    "mscratch": 0x340, "mepc": 0x341, "mcause": 0x342, "mtval": 0x343,
    "mip": 0x344, "mhartid": 0xF14,
}


def _csr_addr(csr: str | int) -> int:
    if isinstance(csr, int):
        addr = csr
    else:
        addr = CSR_NAMES.get(csr)
        if addr is None:
            raise ValueError(f"unknown CSR {csr}")
    if not 0 <= addr < 4096:
        raise ValueError(f"CSR address out of range: {addr}")
    return addr


def _csr(funct3: int, rd, rs1: int, csr) -> int:
    return (
        (_csr_addr(csr) << 20) | (rs1 << 15) | (funct3 << 12)
        | (reg(rd) << 7) | 0b1110011
    )


def csrrw(rd, csr, rs1):
    return _csr(0b001, rd, reg(rs1), csr)


def csrrs(rd, csr, rs1):
    return _csr(0b010, rd, reg(rs1), csr)


def csrrc(rd, csr, rs1):
    return _csr(0b011, rd, reg(rs1), csr)


def csrrwi(rd, csr, uimm):
    if not 0 <= uimm < 32:
        raise ValueError("uimm out of range")
    return _csr(0b101, rd, uimm, csr)


def csrrsi(rd, csr, uimm):
    if not 0 <= uimm < 32:
        raise ValueError("uimm out of range")
    return _csr(0b110, rd, uimm, csr)


def csrrci(rd, csr, uimm):
    if not 0 <= uimm < 32:
        raise ValueError("uimm out of range")
    return _csr(0b111, rd, uimm, csr)


def csrr(rd, csr):
    """csrr rd, csr == csrrs rd, csr, x0"""
    return csrrs(rd, csr, 0)


def csrw(csr, rs1):
    """csrw csr, rs == csrrw x0, csr, rs"""
    return csrrw(0, csr, rs1)


def ecall():
    return 0x00000073


def ebreak():
    return 0x00100073


def mret():
    return 0x30200073


def wfi():
    return 0x10500073


def assemble(opcodes: list[int]) -> bytes:
    out = bytearray()
    for op in opcodes:
        if not 0 <= op < (1 << 32):
            raise ValueError(f"opcode out of range: {op:#x}")
        out += op.to_bytes(4, "little")
    return bytes(out)
