"""``repro.arch.riscv`` — the RV64I model and encoder."""

from . import encode
from .model import RiscvModel

__all__ = ["RiscvModel", "encode"]
