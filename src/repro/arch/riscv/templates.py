"""Directed instruction templates for RISC-V test generation.

Two consumers share this module through the architecture registry:
:func:`cosim_templates` feeds the coverage-biased co-sim program
generator, and :data:`CONFORMANCE_TEMPLATES` provides directed lines for
the differential conformance suite.  ``slot`` is duck-typed: any object
with ``branch_offset(rng, scale=4)`` works.
"""

from __future__ import annotations

import random

from .decode import ABI


def _tr(rng: random.Random) -> str:
    """An ABI register name t0..t6 (maps into x5..x7, x28..x31 range)."""
    return ABI[rng.choice([5, 6, 7, 28, 29, 30])]


def cosim_templates(rng: random.Random, slot) -> dict:
    """One random assembly line per RISC-V decode arm."""
    mem_off = 8 * rng.randrange(-4, 4)
    return {
        "lui": lambda: f"lui {_tr(rng)}, {rng.randrange(1 << 20)}",
        "auipc": lambda: f"auipc {_tr(rng)}, {rng.randrange(1 << 20)}",
        "jal": lambda: f"jal {_tr(rng)}, {slot.branch_offset(rng)}",
        "jalr": lambda: f"jalr {_tr(rng)}, {8 * rng.randrange(-4, 4)}({_tr(rng)})",
        "branch": lambda: (
            f"{rng.choice(['beq', 'bne', 'blt', 'bge', 'bltu', 'bgeu'])} "
            f"{_tr(rng)}, {_tr(rng)}, {slot.branch_offset(rng)}"
        ),
        "load": lambda: (
            f"{rng.choice(['lb', 'lh', 'lw', 'ld', 'lbu', 'lhu', 'lwu'])} "
            f"{_tr(rng)}, {mem_off}({_tr(rng)})"
        ),
        "store": lambda: (
            f"{rng.choice(['sb', 'sh', 'sw', 'sd'])} {_tr(rng)}, {mem_off}({_tr(rng)})"
        ),
        "op_imm": lambda: rng.choice([
            f"{rng.choice(['addi', 'slti', 'sltiu', 'xori', 'ori', 'andi'])} "
            f"{_tr(rng)}, {_tr(rng)}, {rng.randrange(-2048, 2048)}",
            f"{rng.choice(['slli', 'srli', 'srai'])} {_tr(rng)}, {_tr(rng)}, "
            f"{rng.randrange(64)}",
        ]),
        "op_imm32": lambda: rng.choice([
            f"addiw {_tr(rng)}, {_tr(rng)}, {rng.randrange(-2048, 2048)}",
            f"{rng.choice(['slliw', 'srliw', 'sraiw'])} {_tr(rng)}, {_tr(rng)}, "
            f"{rng.randrange(32)}",
        ]),
        "op": lambda: (
            f"{rng.choice(['add', 'sub', 'sll', 'slt', 'sltu', 'xor', 'srl', 'sra', 'or', 'and'])} "
            f"{_tr(rng)}, {_tr(rng)}, {_tr(rng)}"
        ),
        "op32": lambda: (
            f"{rng.choice(['addw', 'subw', 'sllw', 'srlw', 'sraw'])} "
            f"{_tr(rng)}, {_tr(rng)}, {_tr(rng)}"
        ),
        "fence": lambda: "fence",
        "system": lambda: rng.choice([
            "ecall", "ebreak", "wfi", "mret",
            f"csrrw {_tr(rng)}, mscratch, {_tr(rng)}",
            f"csrrs {_tr(rng)}, mepc, {_tr(rng)}",
            f"csrrci {_tr(rng)}, mcause, {rng.randrange(32)}",
        ]),
    }


# Directed templates: assembly lines whose encodings random sampling is
# unlikely to reach (near-constant words), with {t}/{u}/{h} filled per draw.
CONFORMANCE_TEMPLATES = [
    "fence", "ecall", "ebreak", "mret", "wfi",
    "csrr t{t}, mstatus", "csrw mtvec, t{t}",
    "csrrw t{t}, mscratch, t{u}", "csrrci t{t}, mstatus, {h}",
    "lwu t{t}, 4(t{u})", "sraiw t{t}, t{u}, {h}",
    "add t{t}, t{u}, t{t}", "sub t{t}, t{u}, t{t}",
    "sltu t{t}, t{u}, t{t}", "and t{t}, t{u}, t{t}",
    "sra t{t}, t{u}, t{t}", "addw t{t}, t{u}, t{t}",
    "sraw t{t}, t{u}, t{t}",
]
