"""Re-export of ITL names used by architecture models (import convenience)."""

from ..itl.events import Reg

__all__ = ["Reg"]
