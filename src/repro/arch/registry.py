"""Central architecture registry: the single source of per-arch wiring.

Every component that needs "the decoder for architecture X" — the co-sim
stack, the conformance harness, the ISA-spec loader, the CLI tools, the
frontend listing — resolves it through this table instead of hard-coding
``{"arm": ..., "riscv": ...}`` dispatch.  Adding an ISA is a pure-addition
change: ship the ``arch/<name>/`` package (``model.py``, ``decode.py``,
``encode.py``, ``asm.py``, ``abi.py``, ``spec.py``, ``templates.py``) and
register one :class:`ArchInfo` entry here; nothing else in the tree names
architectures.

Entries hold plain data (register domains, pinned registers, the NOP word)
plus *dotted paths* for everything heavier — modules are imported lazily on
first use so importing the registry never drags in the SMT stack, and so
the co-sim interpreter classes (which live in :mod:`repro.cosim.interp`)
do not create an import cycle.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass

_MODEL_CACHE: dict[str, object] = {}
_MODEL_LOCK = threading.Lock()


@dataclass(frozen=True)
class ArchInfo:
    """Everything the generic layers need to know about one architecture."""

    #: Short registry name ("arm", "riscv", "ppc") — corpus files, CLI
    #: ``--arch`` values, and co-sim job names all use this.
    name: str
    #: The :class:`~repro.sail.model.IsaModel` ``name`` ("armv8-a", ...);
    #: case studies and certificates carry this longer spelling.
    model_name: str
    #: Dotted package path, e.g. ``"repro.arch.arm"``.
    package: str
    #: The canonical NOP word (the co-sim shrinker's neutral filler).
    nop: int
    #: ``"module:Class"`` of the fast co-sim interpreter.
    interp: str
    #: Pinned registers the ITL traces are generated under, as
    #: ``((reg, value), ...)`` pairs (hashable; use :meth:`pin_dict`).
    pins: tuple = ()
    #: Registers random state generation draws values for.
    vary: tuple = ()
    #: One-bit condition/flag registers drawn separately (0/1 only).
    flags: tuple = ()

    # -- lazy module resolution -------------------------------------------

    def _module(self, leaf: str):
        return importlib.import_module(f"{self.package}.{leaf}")

    def model(self):
        """The (process-wide, cached) IsaModel instance."""
        try:
            return _MODEL_CACHE[self.name]
        except KeyError:
            pass
        with _MODEL_LOCK:
            if self.name not in _MODEL_CACHE:
                module = importlib.import_module(self.package)
                cls = getattr(module, self.model_class)
                _MODEL_CACHE[self.name] = cls()
            return _MODEL_CACHE[self.name]

    @property
    def model_class(self) -> str:
        # "repro.arch.arm" -> "ArmModel"; every arch package exports one.
        leaf = self.package.rsplit(".", 1)[1]
        return f"{leaf.capitalize()}Model"

    def decode(self):
        return self._module("decode")

    def encode(self):
        return self._module("encode")

    def asm(self):
        return self._module("asm")

    def abi(self):
        return self._module("abi")

    def templates(self):
        """The per-arch template provider module (co-sim generator lines
        plus the conformance suite's directed templates)."""
        return self._module("templates")

    def spec(self):
        """The declarative :class:`~repro.analysis.isaspec.IsaSpec`."""
        return self._module("spec").build_spec()

    def interp_class(self):
        module_path, _, cls_name = self.interp.partition(":")
        return getattr(importlib.import_module(module_path), cls_name)

    def decode_arms(self) -> tuple:
        """Every decode-arm name, from the decoder's ``DECODE_ARMS`` export."""
        return tuple(self.decode().DECODE_ARMS)

    def pin_dict(self) -> dict:
        return dict(self.pins)


_REGISTRY: dict[str, ArchInfo] = {}


def register(info: ArchInfo) -> None:
    if info.name in _REGISTRY:
        raise ValueError(f"architecture {info.name!r} already registered")
    _REGISTRY[info.name] = info


def names() -> tuple:
    """All registered short names, sorted."""
    return tuple(sorted(_REGISTRY))


def infos() -> tuple:
    """All registry entries, sorted by name."""
    return tuple(_REGISTRY[name] for name in names())


def get(name: str) -> ArchInfo:
    """The entry for a short name; raises ``KeyError`` with the choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r} (registered: {', '.join(names())})"
        ) from None


def find(name: str) -> ArchInfo:
    """Resolve a short name *or* a model name ("armv8-a" -> arm)."""
    info = _REGISTRY.get(name)
    if info is not None:
        return info
    for info in _REGISTRY.values():
        if info.model_name == name:
            return info
    raise KeyError(
        f"unknown architecture {name!r} (registered: {', '.join(names())})"
    )


def for_case(case_name: str, default: str = "arm") -> ArchInfo:
    """Infer the architecture of a case study from its name suffix."""
    for name in names():
        if name in case_name.split("_"):
            return _REGISTRY[name]
    return _REGISTRY[default]


register(ArchInfo(
    name="arm",
    model_name="armv8-a",
    package="repro.arch.arm",
    nop=0xD503201F,
    interp="repro.cosim.interp:ArmInterp",
    pins=(("PSTATE.EL", 2), ("PSTATE.SP", 1), ("SCTLR_EL2", 0)),
    vary=tuple(f"R{i}" for i in range(31)) + ("SP_EL2",),
    flags=("PSTATE.N", "PSTATE.Z", "PSTATE.C", "PSTATE.V"),
))

register(ArchInfo(
    name="ppc",
    model_name="ppc64",
    package="repro.arch.ppc",
    nop=0x60000000,  # ori r0, r0, 0
    interp="repro.cosim.interp:PpcInterp",
    pins=(),
    vary=tuple(f"r{i}" for i in range(32))
    + ("CTR", "LR", "XER")
    + tuple(f"CR{i}" for i in range(8)),
    flags=(),
))

register(ArchInfo(
    name="riscv",
    model_name="riscv64",
    package="repro.arch.riscv",
    nop=0x00000013,  # addi x0, x0, 0
    interp="repro.cosim.interp:RiscvInterp",
    pins=(),
    vary=tuple(f"x{i}" for i in range(1, 32)),
    flags=(),
))
