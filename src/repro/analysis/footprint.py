"""Per-opcode static footprints: register and memory read/write sets.

A :class:`Footprint` over-approximates, across *all* paths of an ITL
trace, which registers an instruction may read or write and which memory
it may touch.  Memory accesses are abstracted as intervals anchored at the
initial value of a base register (``[X1 + 8, X1 + 16)``) when the address
term has that shape, as absolute intervals when the address is concrete,
and as an "unknown" access otherwise — unknown accesses conservatively
interfere with every other memory access.

Two consumers:

- the parallel scheduler groups provably independent blocks with
  :func:`interference_groups` (so a cache-cold group can be retried or
  budgeted as a unit without re-running unrelated blocks);
- the trace cache coarsens keys with :func:`trace_read_regs`: a trace
  generated under assumptions ``A`` is reusable under assumptions ``B``
  whenever ``A`` and ``B`` agree on the registers the trace actually
  reads — execution is deterministic given the constraints over the read
  set, so the replayed run would emit the identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..itl import events as E
from ..itl.events import Reg
from ..itl.trace import Trace
from ..smt.builder import _decompose_linear
from ..smt.terms import Term

__all__ = [
    "Footprint",
    "MemRegion",
    "block_footprints",
    "footprint_of_trace",
    "interference_groups",
    "may_interfere",
    "shard_token",
    "trace_read_regs",
]


@dataclass(frozen=True, order=True)
class MemRegion:
    """A byte interval ``[lo, hi)`` relative to a base register's *initial*
    value (``base=None`` means absolute addresses)."""

    base: Reg | None
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError(f"empty region [{self.lo}, {self.hi})")

    def __str__(self) -> str:
        anchor = str(self.base) if self.base is not None else ""
        return f"[{anchor}{self.lo:+#x}, {anchor}{self.hi:+#x})"

    def overlaps(self, other: "MemRegion") -> bool:
        """Definite-or-possible overlap.  Regions with *different* known
        anchors may still alias (nothing relates two registers' initial
        values statically), so only identical anchors admit a precise
        disjointness argument."""
        if self.base != other.base:
            return True
        return self.lo < other.hi and other.lo < self.hi


# ``order=True`` needs comparable fields; sort key spells out the Reg.
def _region_key(r: MemRegion) -> tuple:
    return (str(r.base) if r.base is not None else "", r.lo, r.hi)


def _coalesce(regions: list[MemRegion]) -> tuple[MemRegion, ...]:
    """Sort and merge overlapping/adjacent same-anchor intervals."""
    out: list[MemRegion] = []
    for r in sorted(regions, key=_region_key):
        if out and out[-1].base == r.base and r.lo <= out[-1].hi:
            if r.hi > out[-1].hi:
                out[-1] = MemRegion(r.base, out[-1].lo, r.hi)
        else:
            out.append(r)
    return tuple(out)


@dataclass(frozen=True)
class Footprint:
    """The static effect over-approximation of one instruction (or block)."""

    reg_reads: frozenset[Reg] = frozenset()
    reg_writes: frozenset[Reg] = frozenset()
    mem_reads: tuple[MemRegion, ...] = ()
    mem_writes: tuple[MemRegion, ...] = ()
    #: Memory accesses whose address had no ``base ± offset`` shape; each
    #: must be assumed to touch arbitrary memory (finding code ``FP001``).
    unknown_reads: int = 0
    unknown_writes: int = 0

    @property
    def regs(self) -> frozenset[Reg]:
        return self.reg_reads | self.reg_writes

    @property
    def touches_memory(self) -> bool:
        return bool(
            self.mem_reads
            or self.mem_writes
            or self.unknown_reads
            or self.unknown_writes
        )

    def union(self, other: "Footprint") -> "Footprint":
        return Footprint(
            self.reg_reads | other.reg_reads,
            self.reg_writes | other.reg_writes,
            _coalesce(list(self.mem_reads + other.mem_reads)),
            _coalesce(list(self.mem_writes + other.mem_writes)),
            self.unknown_reads + other.unknown_reads,
            self.unknown_writes + other.unknown_writes,
        )

    def __str__(self) -> str:
        def regs(s):
            return "{" + ", ".join(sorted(map(str, s))) + "}"

        parts = [f"reads {regs(self.reg_reads)}", f"writes {regs(self.reg_writes)}"]
        if self.mem_reads or self.unknown_reads:
            extra = " +unknown" * bool(self.unknown_reads)
            parts.append(
                "loads " + ", ".join(map(str, self.mem_reads)) + extra
            )
        if self.mem_writes or self.unknown_writes:
            extra = " +unknown" * bool(self.unknown_writes)
            parts.append(
                "stores " + ", ".join(map(str, self.mem_writes)) + extra
            )
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# Inference.
# ---------------------------------------------------------------------------


@dataclass
class _Acc:
    reg_reads: set = field(default_factory=set)
    reg_writes: set = field(default_factory=set)
    mem_reads: list = field(default_factory=list)
    mem_writes: list = field(default_factory=list)
    unknown_reads: int = 0
    unknown_writes: int = 0


def _signed(value: int, width: int) -> int:
    value &= (1 << width) - 1
    return value - (1 << width) if value >= 1 << (width - 1) else value


def _region_of(
    addr: Term, nbytes: int, origins: dict[Term, tuple[Reg, int]]
) -> MemRegion | None:
    """Abstract an address term to ``base ± offset`` (or ``None``)."""
    if not addr.sort.is_bv():
        return None
    coeffs: dict[Term, int] = {}
    const = _decompose_linear(addr, 1, 0, coeffs)
    width = addr.width
    mask = (1 << width) - 1
    coeffs = {t: c for t, c in coeffs.items() if c & mask}
    if not coeffs:
        lo = const & mask
        return MemRegion(None, lo, lo + nbytes)
    if len(coeffs) == 1:
        (term, coeff), = coeffs.items()
        if coeff & mask == 1 and term in origins:
            base, delta = origins[term]
            lo = _signed(const + delta, width)
            return MemRegion(base, lo, lo + nbytes)
    return None


def footprint_of_trace(trace: Trace) -> Footprint:
    """Infer the footprint of a trace in one pass over the event tree.

    Base-register tracking is path-sensitive: a variable bound by
    ``ReadReg(r, x)`` before any write to ``r`` denotes ``r``'s initial
    value, and definitions of the form ``y := x + c`` extend the origin
    with the offset.
    """
    acc = _Acc()
    _walk(trace, {}, set(), acc)
    return Footprint(
        frozenset(acc.reg_reads),
        frozenset(acc.reg_writes),
        _coalesce(acc.mem_reads),
        _coalesce(acc.mem_writes),
        acc.unknown_reads,
        acc.unknown_writes,
    )


def _walk(
    trace: Trace,
    origins: dict[Term, tuple[Reg, int]],
    written: set[Reg],
    acc: _Acc,
) -> None:
    for j in trace.events:
        if isinstance(j, E.ReadReg):
            acc.reg_reads.add(j.reg)
            if j.value.is_var() and j.reg not in written and j.value not in origins:
                origins[j.value] = (j.reg, 0)
        elif isinstance(j, E.AssumeReg):
            acc.reg_reads.add(j.reg)
        elif isinstance(j, E.WriteReg):
            acc.reg_writes.add(j.reg)
            written.add(j.reg)
        elif isinstance(j, E.DefineConst):
            if j.expr.sort.is_bv():
                coeffs: dict[Term, int] = {}
                const = _decompose_linear(j.expr, 1, 0, coeffs)
                mask = (1 << j.expr.width) - 1
                coeffs = {t: c for t, c in coeffs.items() if c & mask}
                if len(coeffs) == 1:
                    (term, coeff), = coeffs.items()
                    if coeff & mask == 1 and term in origins:
                        base, delta = origins[term]
                        origins[j.var] = (base, const + delta)
        elif isinstance(j, E.ReadMem):
            region = _region_of(j.addr, j.nbytes, origins)
            if region is None:
                acc.unknown_reads += 1
            else:
                acc.mem_reads.append(region)
        elif isinstance(j, E.WriteMem):
            region = _region_of(j.addr, j.nbytes, origins)
            if region is None:
                acc.unknown_writes += 1
            else:
                acc.mem_writes.append(region)
    if trace.cases is not None:
        for sub in trace.cases:
            _walk(sub, dict(origins), set(written), acc)


def trace_read_regs(trace: Trace) -> frozenset[Reg]:
    """The registers whose *initial* values a trace depends on: everything
    observed by a ``ReadReg`` or ``AssumeReg`` anywhere in the tree.

    This is the sound restriction set for cache-key coarsening — pinned or
    constrained assumptions on registers outside this set are never
    consulted by the executor, so they cannot change the generated trace.
    Must be computed on the *pre-simplification* trace: simplification
    drops dead ``ReadReg`` events whose register the model did read.
    """
    regs: set[Reg] = set()
    for j in trace.iter_events():
        if isinstance(j, (E.ReadReg, E.AssumeReg)):
            regs.add(j.reg)
    return frozenset(regs)


def block_footprints(traces: dict[int, Trace]) -> dict[int, Footprint]:
    """Footprint of every instruction of a program, by address."""
    return {addr: footprint_of_trace(t) for addr, t in sorted(traces.items())}


# ---------------------------------------------------------------------------
# Interference.
# ---------------------------------------------------------------------------


def _mem_conflict(writer: Footprint, other: Footprint) -> bool:
    """Does a memory write of ``writer`` possibly touch memory ``other``
    accesses (either direction of access on ``other``'s side)?"""
    if writer.unknown_writes and other.touches_memory:
        return True
    targets = other.mem_reads + other.mem_writes
    if writer.mem_writes and (other.unknown_reads or other.unknown_writes):
        return True
    return any(
        w.overlaps(t) for w in writer.mem_writes for t in targets
    )


def may_interfere(
    a: Footprint, b: Footprint, ignore: frozenset[Reg] = frozenset()
) -> bool:
    """Conservative interference: ``False`` only when the effects provably
    commute.  ``ignore`` excludes bookkeeping registers every instruction
    touches (the PC) from the register check."""
    a_writes = a.reg_writes - ignore
    b_writes = b.reg_writes - ignore
    if a_writes & ((b.reg_reads | b.reg_writes) - ignore):
        return True
    if b_writes & ((a.reg_reads | a.reg_writes) - ignore):
        return True
    return _mem_conflict(a, b) or _mem_conflict(b, a)


def shard_token(
    footprints: list[Footprint], ignore: frozenset[Reg] = frozenset()
) -> str:
    """A stable, canonical digest of the footprint-interference structure.

    The fleet router consistent-hashes jobs by this token so workloads
    with the same opcode footprint-groups land on the same shard and keep
    its trace/SMT caches hot and disjoint from the other shards'.  The
    token must therefore be a pure function of the footprints themselves:
    each interference group is rendered as the sorted union of its
    register names plus its memory-region strings (and unknown-access
    markers), groups are sorted, and the whole rendering is hashed.
    Neither dict ordering, nor block addresses, nor the order footprints
    were supplied in can change it.
    """
    import hashlib

    groups = interference_groups(list(footprints), ignore)
    parts: list[str] = []
    for group in groups:
        union = Footprint()
        for index in group:
            union = union.union(footprints[index])
        regs = ",".join(sorted(str(r) for r in union.regs - ignore))
        mems = ",".join(
            sorted(str(m) for m in union.mem_reads + union.mem_writes)
        )
        unknown = f"?r{union.unknown_reads}w{union.unknown_writes}"
        parts.append("{" + regs + "|" + mems + "|" + unknown + "}")
    body = "|".join(sorted(parts))
    return "fp:" + hashlib.sha256(body.encode()).hexdigest()[:16]


def interference_groups(
    footprints: list[Footprint], ignore: frozenset[Reg] = frozenset()
) -> list[list[int]]:
    """Partition indices into connected components of ``may_interfere``.

    Groups are returned sorted by smallest member; members sorted.  Blocks
    in different groups provably do not interfere, so a scheduler may
    order or batch them freely without changing any observable result.
    """
    n = len(footprints)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if may_interfere(footprints[i], footprints[j], ignore):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return sorted(groups.values(), key=lambda g: g[0])
