"""Spec-frame lint: diff case-study specs against inferred footprints.

The separation-logic specs own registers explicitly (``r ↦ᵣ v``, possibly
wildcarded).  The proof engine enforces one direction dynamically — a
``WriteReg`` to an unowned register fails the proof.  This pass checks
both directions *statically*, before any SMT work:

- ``FL001`` (error): some instruction of the program writes a register
  that no spec of the case mentions (neither a value nor a wildcard
  frame).  The proof cannot succeed; the spec is missing a frame.
- ``FL002`` (warning): a spec constrains a register (non-wildcard value)
  that lies outside the union footprint — the program neither reads nor
  writes it, so the clause is dead weight (a wildcard would do).
- ``FP001`` (info): an instruction performed a memory access whose address
  has no ``base ± offset`` shape, so its memory footprint is unknown.

The PC is excluded from ``FL001``: control flow is owned by the
``instr_pre`` code-pointer assertions, not by register points-tos.
"""

from __future__ import annotations

from ..itl.events import Reg
from ..itl.trace import Trace
from ..logic.assertions import InstrPre, Pred, RegCol, RegPointsTo
from .findings import ERROR, INFO, WARNING, Finding
from .footprint import Footprint, block_footprints

__all__ = ["lint_case", "lint_specs", "spec_mentioned_regs"]


def spec_mentioned_regs(pred: Pred) -> dict[Reg, bool]:
    """Registers a predicate mentions, mapped to whether any mention
    constrains the value (``True``) or all are wildcard frames (``False``).
    Nested ``instr_pre`` predicates count: a register framed only in the
    continuation's precondition is still owned by the spec."""
    out: dict[Reg, bool] = {}

    def note(reg: Reg, constrained: bool) -> None:
        out[reg] = out.get(reg, False) or constrained

    def walk(p: Pred) -> None:
        for a in p.assertions:
            if isinstance(a, RegPointsTo):
                note(a.reg, a.value is not None)
            elif isinstance(a, RegCol):
                for reg, value in a.entries:
                    note(reg, value is not None)
            elif isinstance(a, InstrPre):
                walk(a.pred)

    walk(pred)
    return out


def lint_specs(
    traces: dict[int, Trace],
    specs: dict[int, Pred],
    pc: Reg,
    case: str | None = None,
) -> list[Finding]:
    """Lint one program's specs against its inferred footprints."""
    findings: list[Finding] = []
    footprints = block_footprints(traces)
    union = Footprint()
    for fp in footprints.values():
        union = union.union(fp)

    mentioned: dict[Reg, bool] = {}
    for pred in specs.values():
        for reg, constrained in spec_mentioned_regs(pred).items():
            mentioned[reg] = mentioned.get(reg, False) or constrained

    for reg in sorted(union.reg_writes, key=str):
        if reg == pc or reg in mentioned:
            continue
        writers = sorted(
            addr for addr, fp in footprints.items() if reg in fp.reg_writes
        )
        findings.append(
            Finding(
                "FL001",
                ERROR,
                f"instruction writes register {reg} but no spec mentions it "
                "(missing frame)",
                where=str(reg),
                case=case,
                addr=writers[0] if writers else None,
                detail={"writers": [hex(a) for a in writers]},
            )
        )

    for reg in sorted(mentioned, key=str):
        if mentioned[reg] and reg != pc and reg not in union.regs:
            findings.append(
                Finding(
                    "FL002",
                    WARNING,
                    f"spec constrains register {reg} outside the program's "
                    "footprint (dead clause; a wildcard frame would do)",
                    where=str(reg),
                    case=case,
                )
            )

    for addr, fp in sorted(footprints.items()):
        unknown = fp.unknown_reads + fp.unknown_writes
        if unknown:
            findings.append(
                Finding(
                    "FP001",
                    INFO,
                    f"{unknown} memory access(es) with no base ± offset "
                    "shape; memory footprint is unknown",
                    case=case,
                    addr=addr,
                )
            )
    return findings


def _model_for(module):
    """The ISA model a case-study module verifies against (each module
    imports exactly one model class by convention)."""
    for attr in ("RiscvModel", "ArmModel"):
        cls = getattr(module, attr, None)
        if cls is not None:
            return cls()
    return None


def lint_case(name: str, case=None) -> list[Finding]:
    """Build (unless given) and lint one registered case study.

    Runs the well-formedness checker over every trace (with the module's
    register file, so widths are checked against declarations) and then
    the spec-frame lint.  Findings carry ``case``/``addr`` context.
    """
    from .. import casestudies
    from ..parallel.scheduler import pc_for
    from .wellformed import check_trace

    module = getattr(casestudies, name)
    if case is None:
        case = module.build()
    model = _model_for(module)
    regfile = model.regfile if model is not None else None

    findings: list[Finding] = []
    for addr, trace in sorted(case.frontend.traces.items()):
        for f in check_trace(trace, regfile):
            findings.append(
                Finding(f.code, f.severity, f.message, f.where, name, addr, f.detail)
            )
    findings.extend(
        lint_specs(case.frontend.traces, case.specs, pc_for(module), case=name)
    )
    return findings
