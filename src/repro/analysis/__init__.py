"""``repro.analysis`` — static analysis over the ITL/SMT layer.

Three passes plus a lint driver (:mod:`repro.tools.lint`):

- :mod:`repro.analysis.wellformed` — linear-time well-sortedness / SSA
  checker for ITL traces (the judgement §4's operational semantics assumes);
- :mod:`repro.analysis.footprint` — per-opcode static register/memory
  read-write sets with a ``may_interfere`` predicate, feeding the parallel
  scheduler and the coarse trace-cache keys;
- :mod:`repro.analysis.framelint` — diffs case-study pre/postconditions
  against inferred footprints (unframed writes are errors, dead spec
  clauses are warnings).

Findings share a small severity lattice with stable codes
(:mod:`repro.analysis.findings`).
"""

from .findings import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    max_severity,
    render_findings,
    worst_severity,
)
from .footprint import (
    Footprint,
    MemRegion,
    block_footprints,
    footprint_of_trace,
    interference_groups,
    may_interfere,
    trace_read_regs,
)
from .framelint import lint_case, lint_specs
from .wellformed import (
    WellFormednessError,
    assert_wellformed,
    check_trace,
    debug_checks_enabled,
    is_wellformed,
)

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "Finding",
    "Footprint",
    "MemRegion",
    "WellFormednessError",
    "assert_wellformed",
    "block_footprints",
    "check_trace",
    "debug_checks_enabled",
    "footprint_of_trace",
    "interference_groups",
    "is_wellformed",
    "lint_case",
    "lint_specs",
    "max_severity",
    "may_interfere",
    "render_findings",
    "trace_read_regs",
    "worst_severity",
]
