"""``repro.analysis`` — static analysis over the ITL/SMT layer.

Three passes plus a lint driver (:mod:`repro.tools.lint`):

- :mod:`repro.analysis.wellformed` — linear-time well-sortedness / SSA
  checker for ITL traces (the judgement §4's operational semantics assumes);
- :mod:`repro.analysis.footprint` — per-opcode static register/memory
  read-write sets with a ``may_interfere`` predicate, feeding the parallel
  scheduler and the coarse trace-cache keys;
- :mod:`repro.analysis.framelint` — diffs case-study pre/postconditions
  against inferred footprints (unframed writes are errors, dead spec
  clauses are warnings);
- :mod:`repro.analysis.isaspec` — solver-backed ISA-specification
  validator: encoding overlap, decode coverage, and encoder/decoder
  agreement proved exhaustively over the word space (``ISA*`` codes).

Findings share a small severity lattice with stable codes
(:mod:`repro.analysis.findings`).
"""

from .findings import (
    CODE_CATALOG,
    ERROR,
    INFO,
    WARNING,
    Finding,
    max_severity,
    merge_findings,
    render_findings,
    worst_severity,
)
from .footprint import (
    Footprint,
    MemRegion,
    block_footprints,
    footprint_of_trace,
    interference_groups,
    may_interfere,
    trace_read_regs,
)
from .framelint import lint_case, lint_specs
from .isaspec import (
    ArmSpec,
    EncoderSpec,
    InvalidRegion,
    IsaSpec,
    SpecError,
    available_archs,
    isaspec_stats,
    load_spec,
    validate_arch,
    validate_spec,
)
from .wellformed import (
    WellFormednessError,
    assert_wellformed,
    check_trace,
    debug_checks_enabled,
    is_wellformed,
)

__all__ = [
    "CODE_CATALOG",
    "ERROR",
    "INFO",
    "WARNING",
    "ArmSpec",
    "EncoderSpec",
    "Finding",
    "Footprint",
    "InvalidRegion",
    "IsaSpec",
    "MemRegion",
    "SpecError",
    "WellFormednessError",
    "assert_wellformed",
    "available_archs",
    "block_footprints",
    "check_trace",
    "debug_checks_enabled",
    "footprint_of_trace",
    "interference_groups",
    "is_wellformed",
    "isaspec_stats",
    "lint_case",
    "lint_specs",
    "load_spec",
    "max_severity",
    "may_interfere",
    "merge_findings",
    "render_findings",
    "trace_read_regs",
    "validate_arch",
    "validate_spec",
    "worst_severity",
]
