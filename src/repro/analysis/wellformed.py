"""Well-sortedness / SSA checking for ITL traces.

The operational semantics (Fig. 10) and the proof automation both *assume*
traces are well-formed: every SMT term is well-sorted with exact bitvector
widths, every variable is defined (``DeclareConst``/``DefineConst``) before
use and never redefined, register event values match the declared register
widths, memory event data is ``8 * size`` bits wide, and ``Assert`` /
``Assume`` bodies are Bool.  Isla guarantees this for the traces it emits;
our executor, the trace simplifier, the on-disk cache, and hand-written
test traces can all violate it — and a violation surfaces, if at all, as a
baffling failure deep inside the SMT solver or the ITL runner.

:func:`check_trace` is a linear-time checker for the judgement.  It is
wired in at the three trust boundaries:

- trace emission (:mod:`repro.isla.executor`) as a debug assertion,
- cache load (:mod:`repro.cache.store`) — a malformed deserialised trace
  reads as a miss and is evicted instead of poisoning the proof,
- ITL replay (:mod:`repro.itl.opsem`) before a trace is first executed.

Traces may legitimately mention *external* variables they never declare
(symbolic opcode bits, device-chosen values); these are accepted unless
``strict=True`` or an explicit ``extern`` allow-set is given.
"""

from __future__ import annotations

import os

from ..itl import events as E
from ..itl.trace import Trace
from ..smt.sorts import sort_to_text
from ..smt.terms import IllSortedTerm, Term, infer_sort
from .findings import ERROR, Finding

__all__ = [
    "WellFormednessError",
    "assert_wellformed",
    "check_substitution",
    "check_trace",
    "debug_checks_enabled",
    "is_wellformed",
    "maybe_assert_substitution_wellformed",
    "maybe_assert_wellformed",
]


class WellFormednessError(Exception):
    """A trace failed the well-formedness judgement (raised by
    :func:`assert_wellformed`; carries the findings)."""

    def __init__(self, findings: list[Finding], where: str = "") -> None:
        self.findings = findings
        head = f"{where}: " if where else ""
        lines = "\n".join(f.render() for f in findings[:8])
        more = f"\n... and {len(findings) - 8} more" if len(findings) > 8 else ""
        super().__init__(f"{head}ill-formed trace:\n{lines}{more}")


def check_trace(
    trace: Trace,
    regfile=None,
    extern: set[str] | None = None,
    strict: bool = False,
    max_findings: int = 64,
) -> list[Finding]:
    """Check the well-formedness judgement; returns findings (empty = ok).

    ``regfile`` is an optional :class:`~repro.sail.registers.RegisterFile`;
    with it, register event widths are checked against the declarations.
    ``extern`` is an optional allow-set of undeclared variable names;
    ``strict=True`` reports *any* undeclared variable (``WF009``).  The walk
    is linear in events and in distinct term DAG nodes (term sorts are
    memoised process-wide).
    """
    checker = _Checker(regfile, extern, strict, max_findings)
    checker.bound_names = _bound_names(trace)
    checker.walk(trace, dict(), "")
    return checker.findings


def _bound_names(trace: Trace) -> set[str]:
    """Names bound by any ``DeclareConst``/``DefineConst`` in the tree.

    Used to tell a genuine external variable (never bound anywhere) from a
    scoping violation (bound, but not on the path before the use): sibling
    branches legitimately reuse names — each is a separate symbolic run —
    so SSA is judged per root-to-leaf path."""
    names: set[str] = set()
    for j in trace.iter_events():
        if isinstance(j, (E.DeclareConst, E.DefineConst)) and j.var.is_var():
            names.add(j.var.name)
    return names


def is_wellformed(trace: Trace, regfile=None, **kwargs) -> bool:
    """True when :func:`check_trace` reports no error-severity findings."""
    return not any(
        f.severity == ERROR for f in check_trace(trace, regfile, **kwargs)
    )


def assert_wellformed(trace: Trace, regfile=None, where: str = "", **kwargs) -> None:
    """Raise :class:`WellFormednessError` unless the trace checks clean."""
    findings = check_trace(trace, regfile, **kwargs)
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        raise WellFormednessError(errors, where)


#: ``$REPRO_WF_CHECK`` overrides the default (on unless ``python -O``).
def debug_checks_enabled() -> bool:
    flag = os.environ.get("REPRO_WF_CHECK")
    if flag is not None:
        return flag not in ("0", "", "off", "no")
    return __debug__


def maybe_assert_wellformed(trace: Trace, regfile=None, where: str = "") -> None:
    """The debug-assert flavour used at trace-emission time: no-op when
    debug checks are disabled (``python -O`` or ``REPRO_WF_CHECK=0``)."""
    if debug_checks_enabled():
        assert_wellformed(trace, regfile, where)


# ---------------------------------------------------------------------------
# Substitution well-formedness (WF010-WF012).
# ---------------------------------------------------------------------------
#
# Parametric family instantiation (``repro.isla.parametric``) rewrites a
# cached trace with a variable substitution plus a register rename.  Three
# new failure modes open up that the plain trace judgement cannot see:
# a replacement term of the wrong sort silently re-sorting downstream terms
# (WF010), a replacement's free variable being captured by a binder of the
# trace it is substituted into (WF011), and a register rename mapping a
# register onto one of a different declared width (WF012).  The substituted
# trace is additionally re-checked with the full judgement, so an SSA
# violation introduced by the rewrite surfaces as the usual WF002/WF003.


def check_substitution(
    original: Trace,
    substituted: Trace,
    mapping: dict[Term, Term],
    reg_renames: dict[str, str] | None = None,
    regfile=None,
    max_findings: int = 64,
    recheck_trace: bool = True,
) -> list[Finding]:
    """Check a trace substitution; returns findings (empty = ok).

    ``mapping`` maps variable terms of ``original`` to their replacement
    terms; ``reg_renames`` maps renamed register base names old -> new.
    ``recheck_trace=False`` skips the full trace judgement on the result —
    for callers that feed ``substituted`` into a pipeline that re-checks
    the final trace anyway (the parametric serve path), re-walking it here
    is pure duplication.
    """
    findings: list[Finding] = []

    def report(code: str, message: str) -> None:
        if len(findings) < max_findings:
            findings.append(Finding(code, ERROR, message, "substitution"))

    # Capture (WF011) needs the bound-name sets, but the common replacement
    # is a literal with no free variables — compute them only on demand.
    bound: set | None = None
    for var, repl in mapping.items():
        if not var.is_var():
            report("WF010", f"substitution key {var!r} is not a variable")
            continue
        if var.sort != repl.sort:
            report(
                "WF010",
                f"substitution for {var.name} changes sort "
                f"{sort_to_text(var.sort)} -> {sort_to_text(repl.sort)}",
            )
        for v in repl.free_vars():
            if v is var:
                continue
            if bound is None:
                bound = _bound_names(original) | _bound_names(substituted)
            if v.name in bound:
                report(
                    "WF011",
                    f"substitution for {var.name} captures bound "
                    f"variable {v.name}",
                )
    for old, new in (reg_renames or {}).items():
        if regfile is None:
            continue
        try:
            old_width = regfile.width_of(E.Reg(old))
            new_width = regfile.width_of(E.Reg(new))
        except KeyError as exc:
            report("WF012", f"register rename {old} -> {new}: {exc}")
            continue
        if old_width != new_width:
            report(
                "WF012",
                f"register rename {old} ({old_width} bits) -> "
                f"{new} ({new_width} bits) changes width",
            )
    remaining = max_findings - len(findings)
    if recheck_trace and remaining > 0:
        findings.extend(
            check_trace(substituted, regfile, max_findings=remaining)
        )
    return findings


def maybe_assert_substitution_wellformed(
    original: Trace,
    substituted: Trace,
    mapping: dict[Term, Term],
    reg_renames: dict[str, str] | None = None,
    regfile=None,
    where: str = "",
    recheck_trace: bool = True,
) -> None:
    """Debug-assert flavour of :func:`check_substitution` (same gating as
    :func:`maybe_assert_wellformed`)."""
    if not debug_checks_enabled():
        return
    findings = check_substitution(
        original, substituted, mapping, reg_renames, regfile,
        recheck_trace=recheck_trace,
    )
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        raise WellFormednessError(errors, where)


# ---------------------------------------------------------------------------
# The walk.
# ---------------------------------------------------------------------------


class _Checker:
    def __init__(self, regfile, extern, strict, max_findings) -> None:
        self.regfile = regfile
        self.extern = extern
        self.strict = strict
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        #: names bound somewhere in the tree (filled in by check_trace).
        self.bound_names: set[str] = set()
        #: externs already accepted (name -> var), for consistency checks.
        self.externs_seen: dict[str, Term] = {}

    def report(self, code: str, message: str, where: str) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(Finding(code, ERROR, message, where))

    def walk(self, trace: Trace, scope: dict[str, Term], prefix: str) -> None:
        for i, event in enumerate(trace.events):
            if len(self.findings) >= self.max_findings:
                return
            self.event(event, scope, f"{prefix}events[{i}]")
        if trace.cases is not None:
            for i, sub in enumerate(trace.cases):
                self.walk(sub, dict(scope), f"{prefix}cases[{i}].")

    # -- events ------------------------------------------------------------

    def event(self, event: E.Event, scope: dict[str, Term], where: str) -> None:
        if isinstance(event, E.DeclareConst):
            if not event.var.is_var():
                self.report("WF007", f"declare-const of non-variable {event.var!r}", where)
                return
            if event.var.sort != event.sort:
                self.report(
                    "WF007",
                    f"declare-const {event.var.name}: variable sort "
                    f"{sort_to_text(event.var.sort)} != declared "
                    f"{sort_to_text(event.sort)}",
                    where,
                )
            self.define(event.var, scope, where)
            return
        if isinstance(event, E.DefineConst):
            if not event.var.is_var():
                self.report("WF007", f"define-const of non-variable {event.var!r}", where)
                return
            self.term(event.expr, scope, where)
            if event.var.sort != event.expr.sort:
                self.report(
                    "WF007",
                    f"define-const {event.var.name}: variable sort "
                    f"{sort_to_text(event.var.sort)} != expression sort "
                    f"{sort_to_text(event.expr.sort)}",
                    where,
                )
            self.define(event.var, scope, where)
            return
        if isinstance(event, (E.ReadReg, E.WriteReg, E.AssumeReg)):
            self.term(event.value, scope, where)
            if not event.value.sort.is_bv():
                self.report(
                    "WF004",
                    f"register event on {event.reg} carries a non-bitvector "
                    f"value of sort {sort_to_text(event.value.sort)}",
                    where,
                )
                return
            if self.regfile is not None:
                try:
                    declared = self.regfile.width_of(event.reg)
                except KeyError:
                    self.report(
                        "WF004", f"register {event.reg} is not declared", where
                    )
                    return
                if event.value.width != declared:
                    self.report(
                        "WF004",
                        f"register {event.reg}: event width "
                        f"{event.value.width} != declared width {declared}",
                        where,
                    )
            return
        if isinstance(event, (E.ReadMem, E.WriteMem)):
            self.term(event.addr, scope, where)
            self.term(event.data, scope, where)
            if not event.addr.sort.is_bv():
                self.report(
                    "WF008",
                    f"memory address has sort {sort_to_text(event.addr.sort)}, "
                    "expected a bitvector",
                    where,
                )
            if not isinstance(event.nbytes, int) or event.nbytes <= 0:
                self.report("WF005", f"memory event size {event.nbytes!r}", where)
            elif not event.data.sort.is_bv() or event.data.width != 8 * event.nbytes:
                have = (
                    f"{event.data.width} bits"
                    if event.data.sort.is_bv()
                    else sort_to_text(event.data.sort)
                )
                self.report(
                    "WF005",
                    f"memory data is {have}, expected {8 * event.nbytes} bits "
                    f"(size {event.nbytes})",
                    where,
                )
            return
        if isinstance(event, (E.Assert, E.Assume)):
            self.term(event.expr, scope, where)
            if not event.expr.sort.is_bool():
                kind = "assert" if isinstance(event, E.Assert) else "assume"
                self.report(
                    "WF006",
                    f"{kind} body has sort {sort_to_text(event.expr.sort)}, "
                    "expected Bool",
                    where,
                )
            return
        self.report("WF001", f"unknown event {event!r}", where)

    # -- variables and terms ------------------------------------------------

    def define(self, var: Term, scope: dict[str, Term], where: str) -> None:
        name = var.name
        if name in scope:
            self.report("WF003", f"variable {name} defined twice", where)
            return
        scope[name] = var

    def term(self, term: Term, scope: dict[str, Term], where: str) -> None:
        try:
            infer_sort(term)
        except IllSortedTerm as exc:
            self.report("WF001", str(exc), where)
            return
        for v in term.free_vars():
            name = v.name
            known = scope.get(name)
            if known is not None:
                if known is not v:
                    self.report(
                        "WF002",
                        f"variable {name} used at sort "
                        f"{sort_to_text(v.sort)} but defined at sort "
                        f"{sort_to_text(known.sort)}",
                        where,
                    )
                continue
            if name in self.bound_names:
                # Bound somewhere in the tree but not on this path at this
                # point: either used before its definition or leaked from a
                # sibling branch — both are scoping violations.
                self.report(
                    "WF002", f"variable {name} used before its definition", where
                )
                continue
            seen = self.externs_seen.get(name)
            if seen is not None:
                if seen is not v:
                    self.report(
                        "WF002",
                        f"external variable {name} used at two sorts",
                        where,
                    )
                continue
            if self.extern is not None and name not in self.extern:
                self.report(
                    "WF002",
                    f"variable {name} is neither defined nor a declared "
                    "external",
                    where,
                )
                continue
            if self.strict:
                self.report("WF009", f"undeclared external variable {name}", where)
                continue
            self.externs_seen[name] = v
