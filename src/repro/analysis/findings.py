"""Findings: the shared result type of every static-analysis pass.

Severities form a three-point lattice ``error > warning > info``; a pass
may only *raise* the severity of a situation it understands better, never
silently lower it.  Codes are stable identifiers (``WF*`` well-formedness,
``FP*`` footprint, ``FL*`` frame lint) that tests, the mutation-detection
suite, and downstream tooling match on — change a code's meaning, mint a
new code.

Code inventory:

===== ======== ==================================================
code  severity meaning
===== ======== ==================================================
WF001 error    ill-sorted SMT term (width/sort mismatch in the DAG)
WF002 error    variable used before its definition (SSA violation)
WF003 error    variable defined twice (SSA violation)
WF004 error    register event width differs from the declaration
WF005 error    memory event data width differs from ``8 * size``
WF006 error    ``Assert``/``Assume`` body is not Bool
WF007 error    ``DeclareConst``/``DefineConst`` var/expr sort mismatch
WF008 error    memory address is not a bitvector
WF009 error    undeclared external variable (strict mode only)
FP001 info     memory access with no base-register ± offset shape
FL001 error    instruction writes a register no spec mentions
FL002 warning  spec constrains a register outside the footprint
===== ======== ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: Lattice rank; higher is more severe.
_RANK = {ERROR: 2, WARNING: 1, INFO: 0}


def max_severity(*severities: str) -> str:
    """The join (most severe) of the given severities (``info`` if none)."""
    result = INFO
    for severity in severities:
        if severity not in _RANK:
            raise ValueError(f"unknown severity {severity!r}")
        if _RANK[severity] > _RANK[result]:
            result = severity
    return result


def worst_severity(findings) -> str | None:
    """The most severe severity among ``findings`` (``None`` when empty)."""
    severities = [f.severity for f in findings]
    return max_severity(*severities) if severities else None


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    ``where`` is a free-form location (pass-dependent): an event index path
    like ``events[3]`` or ``cases[1].events[0]``, a register name, etc.
    ``case``/``addr`` identify the case study and instruction address when
    the pass runs over a shipped program (``None`` for bare traces).
    """

    code: str
    severity: str
    message: str
    where: str = ""
    case: str | None = None
    addr: int | None = None
    detail: dict = field(default_factory=dict, compare=False)

    def render(self) -> str:
        place = []
        if self.case is not None:
            place.append(self.case)
        if self.addr is not None:
            place.append(f"0x{self.addr:x}")
        if self.where:
            place.append(self.where)
        location = ":".join(place)
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.severity} [{self.code}] {self.message}"

    def to_json(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
        }
        if self.case is not None:
            out["case"] = self.case
        if self.addr is not None:
            out["addr"] = self.addr
        if self.detail:
            out["detail"] = self.detail
        return out


def render_findings(findings) -> str:
    """Human-readable multi-line rendering, most severe first."""
    ordered = sorted(
        findings, key=lambda f: (-_RANK[f.severity], f.code, f.case or "", f.addr or 0)
    )
    return "\n".join(f.render() for f in ordered)
