"""Findings: the shared result type of every static-analysis pass.

Severities form a three-point lattice ``error > warning > info``; a pass
may only *raise* the severity of a situation it understands better, never
silently lower it.  Codes are stable identifiers (``WF*`` well-formedness,
``FP*`` footprint, ``FL*`` frame lint) that tests, the mutation-detection
suite, and downstream tooling match on — change a code's meaning, mint a
new code.

The full catalog lives in :data:`CODE_CATALOG`; the table below is its
rendered form.  Uniqueness is enforced at import time — two passes can
never mint the same code.

===== ======== ==================================================
code  severity meaning
===== ======== ==================================================
WF001 error    ill-sorted SMT term (width/sort mismatch in the DAG)
WF002 error    variable used before its definition (SSA violation)
WF003 error    variable defined twice (SSA violation)
WF004 error    register event width differs from the declaration
WF005 error    memory event data width differs from ``8 * size``
WF006 error    ``Assert``/``Assume`` body is not Bool
WF007 error    ``DeclareConst``/``DefineConst`` var/expr sort mismatch
WF008 error    memory address is not a bitvector
WF009 error    undeclared external variable (strict mode only)
FP001 info     memory access with no base-register ± offset shape
FL001 error    instruction writes a register no spec mentions
FL002 warning  spec constrains a register outside the footprint
ISA001 error   operand field layout malformed (overlap / gap / range)
ISA002 error   register field width disagrees with the register file
ISA003 error   two decode arms claim the same word (encoding overlap)
ISA004 error   decode-coverage hole: word neither claimed nor invalid
ISA005 error   arm claims a word outside its declared region
ISA006 error   encoder/decoder disagreement (symbolic round-trip)
ISA007 error   spec and implementation disagree on a witness word
ISA008 error   defined-invalid space overlaps an arm's claim
ISA009 error   decode arm has no family profile and no exemption
ISA010 error   malformed constraint clause in the ISA spec itself
ISA011 error   encoder packing malformed (fixed/places don't tile)
===== ======== ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: Lattice rank; higher is more severe.
_RANK = {ERROR: 2, WARNING: 1, INFO: 0}

#: Every stable finding code with its default severity and one-line meaning.
#: Passes look their codes up here instead of re-declaring them; the builder
#: below guarantees no two checks share a code.
_CATALOG_ENTRIES = (
    ("WF001", ERROR, "ill-sorted SMT term (width/sort mismatch in the DAG)"),
    ("WF002", ERROR, "variable used before its definition (SSA violation)"),
    ("WF003", ERROR, "variable defined twice (SSA violation)"),
    ("WF004", ERROR, "register event width differs from the declaration"),
    ("WF005", ERROR, "memory event data width differs from 8 * size"),
    ("WF006", ERROR, "Assert/Assume body is not Bool"),
    ("WF007", ERROR, "DeclareConst/DefineConst var/expr sort mismatch"),
    ("WF008", ERROR, "memory address is not a bitvector"),
    ("WF009", ERROR, "undeclared external variable (strict mode only)"),
    ("FP001", INFO, "memory access with no base-register ± offset shape"),
    ("FL001", ERROR, "instruction writes a register no spec mentions"),
    ("FL002", WARNING, "spec constrains a register outside the footprint"),
    ("ISA001", ERROR, "operand field layout malformed (overlap / gap / range)"),
    ("ISA002", ERROR, "register field width disagrees with the register file"),
    ("ISA003", ERROR, "two decode arms claim the same word (encoding overlap)"),
    ("ISA004", ERROR, "decode-coverage hole: word neither claimed nor invalid"),
    ("ISA005", ERROR, "arm claims a word outside its declared region"),
    ("ISA006", ERROR, "encoder/decoder disagreement (symbolic round-trip)"),
    ("ISA007", ERROR, "spec and implementation disagree on a witness word"),
    ("ISA008", ERROR, "defined-invalid space overlaps an arm's claim"),
    ("ISA009", ERROR, "decode arm has no family profile and no exemption"),
    ("ISA010", ERROR, "malformed constraint clause in the ISA spec itself"),
    ("ISA011", ERROR, "encoder packing malformed (fixed/places don't tile)"),
)


def _build_catalog() -> dict:
    catalog: dict[str, tuple[str, str]] = {}
    for code, severity, meaning in _CATALOG_ENTRIES:
        if code in catalog:
            raise ValueError(f"finding code {code} registered twice")
        if severity not in _RANK:
            raise ValueError(f"finding code {code} has unknown severity {severity!r}")
        catalog[code] = (severity, meaning)
    return catalog


#: code -> (default severity, one-line meaning).  Import-time uniqueness.
CODE_CATALOG = _build_catalog()


def max_severity(*severities: str) -> str:
    """The join (most severe) of the given severities (``info`` if none)."""
    result = INFO
    for severity in severities:
        if severity not in _RANK:
            raise ValueError(f"unknown severity {severity!r}")
        if _RANK[severity] > _RANK[result]:
            result = severity
    return result


def worst_severity(findings) -> str | None:
    """The most severe severity among ``findings`` (``None`` when empty)."""
    severities = [f.severity for f in findings]
    return max_severity(*severities) if severities else None


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic.

    ``where`` is a free-form location (pass-dependent): an event index path
    like ``events[3]`` or ``cases[1].events[0]``, a register name, etc.
    ``case``/``addr`` identify the case study and instruction address when
    the pass runs over a shipped program (``None`` for bare traces).
    """

    code: str
    severity: str
    message: str
    where: str = ""
    case: str | None = None
    addr: int | None = None
    detail: dict = field(default_factory=dict, compare=False)

    def render(self) -> str:
        place = []
        if self.case is not None:
            place.append(self.case)
        if self.addr is not None:
            place.append(f"0x{self.addr:x}")
        if self.where:
            place.append(self.where)
        location = ":".join(place)
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.severity} [{self.code}] {self.message}"

    def to_json(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
        }
        if self.case is not None:
            out["case"] = self.case
        if self.addr is not None:
            out["addr"] = self.addr
        if self.detail:
            out["detail"] = self.detail
        return out


def _sort_key(f: Finding):
    """Total order over distinct findings: most severe first, then every
    compare-participating field.  ``None`` sorts before a present value so
    ``case=None`` / ``addr=None`` never tie with ``case=""`` / ``addr=0``;
    with ``message`` included, findings that compare unequal never share a
    key, so sorting is insensitive to arrival order.
    """
    return (
        -_RANK[f.severity],
        f.code,
        f.case is not None,
        f.case or "",
        f.addr is not None,
        f.addr or 0,
        f.where,
        f.message,
    )


def merge_findings(*groups) -> list:
    """Merge findings from several workers into one deduplicated list.

    Order-insensitive: equal findings (``detail`` excluded — it does not
    participate in equality) collapse to one, and the sort key covers every
    compare-participating field (severity, code, case, addr, where,
    message), so any shard-to-worker assignment yields the same report.
    """
    seen = set()
    merged = []
    for group in groups:
        for finding in group:
            if finding in seen:
                continue
            seen.add(finding)
            merged.append(finding)
    merged.sort(key=_sort_key)
    return merged


def render_findings(findings) -> str:
    """Human-readable multi-line rendering, most severe first."""
    return "\n".join(f.render() for f in sorted(findings, key=_sort_key))
