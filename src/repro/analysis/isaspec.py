"""ISA-specification validator: the decode/encode tables as a proved artifact.

Islaris's trust story leans on the ISA model being authoritative; this pass
makes our hand-written per-architecture layers *earn* that status statically
instead of hoping a sampled corpus exercises every arm.  Each architecture
contributes a declarative :class:`IsaSpec` (``arch/<name>/spec.py``): per
decode arm an exact *claim* (the set of words the arm accepts) written in a
small constraint language, a coarse *region* (the ISA-manual box the arm
lives in), an encoder packing table, and a list of defined-invalid carve-outs
covering every reserved/unmodelled hole.  The validator then proves, with the
in-repo SMT core and **no sampling**:

- *overlap* (ISA003): claims are pairwise disjoint over the full word space —
  each pair is either separated by conflicting fixed bits (mask arithmetic,
  still exhaustive) or proved UNSAT; a SAT verdict yields the model as a
  concrete counterexample word.
- *coverage* (ISA004): every 32-bit word is inside some arm's region or some
  defined-invalid carve-out.  The query is sharded on a spec-chosen selector
  field — the shards partition the space, so the proof stays exhaustive while
  each subquery stays trivial.  Holes are reported as witness words.
- *containment* (ISA005): each claim implies its region, so the residual
  ``region ∧ ¬claim`` is exactly the arm's reserved space.
- *agreement* (ISA006/ISA011): the encoder packing tiles the word, its fixed
  bits are consistent with the claim, and symbolically
  ``extract(field, encode(vars)) == var`` for every operand — the solver-side
  ``decode(encode(fields)) == fields`` round trip.

The declarative layer is grounded against the *Python implementations* on
concrete words (ISA007): solver models of each claim must reach the same
decoder arm with the same field layout, enumerated invalid-space witnesses
must raise, and probe words from the real encoders must satisfy the claim.
Structural checks (ISA001/ISA002/ISA009/ISA010) validate field layouts,
register-file widths, and the parametric-family audit with its recorded
exemption mechanism.  Every check reports through the shared findings
lattice (:mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from ..smt import builder as B
from ..smt.solver import SAT, UNSAT, Solver
from ..smt.terms import FALSE, TRUE, Term
from .findings import CODE_CATALOG, INFO, Finding

__all__ = [
    "ArmSpec",
    "EncoderSpec",
    "InvalidRegion",
    "IsaSpec",
    "Raw",
    "SpecError",
    "isaspec_stats",
    "validate_spec",
]


class SpecError(Exception):
    """A constraint clause or spec table is structurally malformed."""


@dataclass(frozen=True)
class Raw:
    """Escape hatch: an arbitrary word-level predicate.

    ``build`` maps the 32-bit word term to a Bool term; ``name`` appears in
    diagnostics.  Concrete evaluation substitutes a literal word, so the
    predicate must fold to TRUE/FALSE on constants (all smart-constructor
    built terms do).
    """

    name: str
    build: Callable = field(compare=False)


@dataclass(frozen=True)
class EncoderSpec:
    """The encoder's packing of one arm: fixed bits plus operand places.

    ``fixed``/``fixed_mask`` give the constant bits; ``places`` is a tuple of
    ``(field_name, lo, width)`` for every variable field, named to match the
    arm's decode layout.  Together they must tile the word (ISA011).
    """

    fixed: int
    fixed_mask: int
    places: tuple


@dataclass(frozen=True)
class ArmSpec:
    """One decode arm: an exact claim inside a coarse region.

    ``match`` clauses (ANDed) are the exact word set the Python decoder arm
    accepts; ``region`` is the ISA-manual box containing it (claims must not
    escape it — ISA005); ``region ∧ ¬match`` is implicitly defined-invalid
    for coverage.  ``family`` is ``"profiled"`` when the arm participates in
    parametric-family execution, or ``"exempt:<reason>"`` to record a
    deliberate opt-out (audited — ISA009).
    """

    name: str
    match: tuple
    region: tuple = ()
    encoder: EncoderSpec | None = None
    family: str = "profiled"


@dataclass(frozen=True)
class InvalidRegion:
    """A hand-authored defined-invalid carve-out (reserved/unmodelled space)."""

    name: str
    clauses: tuple


@dataclass(frozen=True)
class IsaSpec:
    """A whole architecture as a checkable specification."""

    arch: str
    arms: tuple
    invalid: tuple
    #: arm name -> tuple of layout variants, each a tuple of
    #: (name, hi, lo, kind) tuples tiling the word MSB-first.
    layouts: dict
    #: number of architectural registers (reg-kind field width check).
    reg_count: int
    #: ``decode_arm(word) -> str`` from the real decoder; must raise on
    #: invalid words (exception type in ``invalid_exc``).
    decode_arm: Callable
    #: ``decode_fields(word) -> (arm, fields) | None`` from the real decoder.
    decode_fields: Callable
    invalid_exc: type
    #: arm name -> concrete words from the *real* encoder (grounding probes).
    probes: dict
    #: (hi, lo) selector used to shard the coverage proof; shards enumerate
    #: every value of the field, partitioning the word space.
    coverage_shard: tuple | None = None
    word_width: int = 32


# ---------------------------------------------------------------------------
# Stats (daemon /metrics surface)
# ---------------------------------------------------------------------------


class IsaSpecStats:
    """Flat, Prometheus-safe integer counters (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


#: Process-global counters; the service daemon surfaces these at /metrics.
ISASPEC_STATS = IsaSpecStats()


def isaspec_stats() -> dict[str, int]:
    return ISASPEC_STATS.snapshot()


# ---------------------------------------------------------------------------
# Constraint language -> terms
# ---------------------------------------------------------------------------

_FIELD_OPS = {"eq", "ne", "in", "notin", "lt", "ge"}


def _check_range(hi: int, lo: int, width: int, clause) -> int:
    if not (isinstance(hi, int) and isinstance(lo, int)):
        raise SpecError(f"non-integer bit range in clause {clause!r}")
    if not 0 <= lo <= hi < width:
        raise SpecError(f"bit range [{hi}:{lo}] out of word range in {clause!r}")
    return hi - lo + 1


def _check_value(value: int, bits: int, clause) -> int:
    if not isinstance(value, int) or not 0 <= value < (1 << bits):
        raise SpecError(f"value {value!r} does not fit [{bits} bits] in {clause!r}")
    return value


def compile_clause(clause, word: Term, width: int = 32) -> Term:
    """One clause of the constraint mini-language as a Bool term over ``word``.

    Clauses are tuples ``(op, hi, lo, ...)`` with ``op`` one of ``eq``,
    ``ne``, ``in``, ``notin``, ``lt`` (unsigned), ``ge``, the connectives
    ``("and", *cs)`` / ``("or", *cs)`` / ``("not", c)``, or a :class:`Raw`.
    Raises :class:`SpecError` on malformed clauses (surfaced as ISA010).
    """
    if isinstance(clause, Raw):
        built = clause.build(word)
        if not isinstance(built, Term) or not built.sort.is_bool():
            raise SpecError(f"raw clause {clause.name!r} did not build a Bool term")
        return built
    if not isinstance(clause, tuple) or not clause:
        raise SpecError(f"clause {clause!r} is not a non-empty tuple")
    op = clause[0]
    if op in ("and", "or"):
        if len(clause) < 2:
            raise SpecError(f"empty connective {clause!r}")
        parts = [compile_clause(c, word, width) for c in clause[1:]]
        return B.and_(*parts) if op == "and" else B.or_(*parts)
    if op == "not":
        if len(clause) != 2:
            raise SpecError(f"'not' takes one clause: {clause!r}")
        return B.not_(compile_clause(clause[1], word, width))
    if op not in _FIELD_OPS:
        raise SpecError(f"unknown clause op {op!r} in {clause!r}")
    if len(clause) != 4:
        raise SpecError(f"field clause needs (op, hi, lo, value): {clause!r}")
    _, hi, lo, value = clause
    bits = _check_range(hi, lo, width, clause)
    fld = B.extract(hi, lo, word)
    if op in ("in", "notin"):
        if not isinstance(value, tuple) or not value:
            raise SpecError(f"'{op}' needs a non-empty value tuple: {clause!r}")
        disjuncts = [
            B.eq(fld, B.bv(_check_value(v, bits, clause), bits)) for v in value
        ]
        result = B.or_(*disjuncts)
        return result if op == "in" else B.not_(result)
    value = _check_value(value, bits, clause)
    if op == "eq":
        return B.eq(fld, B.bv(value, bits))
    if op == "ne":
        return B.not_(B.eq(fld, B.bv(value, bits)))
    if op == "lt":
        return B.bvult(fld, B.bv(value, bits))
    return B.bvuge(fld, B.bv(value, bits))  # "ge"


def compile_clauses(clauses, word: Term, width: int = 32) -> Term:
    """The conjunction of ``clauses`` (TRUE when empty)."""
    return B.and_(*[compile_clause(c, word, width) for c in clauses])


def eval_clauses(clauses, value: int, width: int = 32) -> bool:
    """Evaluate a clause list on a concrete word (pure constant folding)."""
    term = compile_clauses(clauses, B.bv(value, width), width)
    if term is TRUE:
        return True
    if term is FALSE:
        return False
    raise SpecError(f"clauses did not fold on concrete word {value:#x}")


def fixed_bits_of(clauses, width: int = 32) -> tuple[int, int]:
    """``(mask, value)`` of the bits any satisfying word must have.

    Only top-level ``eq`` clauses (and singleton ``in``) contribute; this is
    a sound under-approximation used to discharge overlap pairs by mask
    arithmetic before touching the solver.
    """
    mask = 0
    value = 0
    for clause in clauses:
        if isinstance(clause, Raw) or not isinstance(clause, tuple) or not clause:
            continue
        op = clause[0]
        if op == "eq":
            _, hi, lo, v = clause
        elif op == "in" and len(clause) == 4 and len(clause[3]) == 1:
            _, hi, lo, vs = clause
            v = vs[0]
        else:
            continue
        fmask = ((1 << (hi - lo + 1)) - 1) << lo
        mask |= fmask
        value |= (v << lo) & fmask
    return mask, value


# ---------------------------------------------------------------------------
# The validator
# ---------------------------------------------------------------------------


def _finding(code: str, message: str, where: str, **detail) -> Finding:
    severity, _ = CODE_CATALOG[code]
    return Finding(code=code, severity=severity, message=message, where=where,
                   detail=detail)


class _Validator:
    def __init__(self, spec: IsaSpec, witnesses: int = 3):
        self.spec = spec
        self.witnesses = witnesses
        self.solver = Solver()
        self.word = B.bv_var(f"isa_w_{spec.arch}", spec.word_width)
        self.findings: list[Finding] = []
        # Compiled claim/region terms per arm (skipping ISA010-broken arms).
        self.claims: dict[str, Term] = {}
        self.regions: dict[str, Term] = {}

    # -- plumbing ---------------------------------------------------------

    def emit(self, code: str, message: str, where: str,
             severity: str | None = None, **detail) -> None:
        finding = _finding(code, message, where, **detail)
        if severity is not None:
            finding = Finding(code=finding.code, severity=severity,
                              message=finding.message, where=finding.where,
                              detail=finding.detail)
        self.findings.append(finding)
        ISASPEC_STATS.inc(f"findings_{finding.severity}")

    def _check(self, *terms: Term) -> str:
        ISASPEC_STATS.inc("solver_checks")
        return self.solver.check(*terms)

    def _model_word(self) -> int:
        model = self.solver.model()
        value = model.get(self.word, 0)
        return int(value)

    def _enumerate(self, constraint: Term, count: int) -> list[int]:
        """Up to ``count`` distinct concrete words satisfying ``constraint``."""
        words: list[int] = []
        blockers: list[Term] = []
        for _ in range(count):
            if self._check(constraint, *blockers) != SAT:
                break
            w = self._model_word()
            words.append(w)
            blockers.append(B.not_(B.eq(self.word, B.bv(w, self.spec.word_width))))
        return words

    # -- structural checks ------------------------------------------------

    def check_layouts(self) -> None:
        width = self.spec.word_width
        reg_bits = (self.spec.reg_count - 1).bit_length()
        for arm, variants in sorted(self.spec.layouts.items()):
            for idx, layout in enumerate(variants):
                where = f"{arm}.layout[{idx}]"
                expect_hi = width - 1
                ok = True
                for name, hi, lo, kind in layout:
                    if not 0 <= lo <= hi < width:
                        self.emit("ISA001", f"field {name} [{hi}:{lo}] out of word range", where)
                        ok = False
                        break
                    if hi != expect_hi:
                        gap_or_overlap = "overlaps" if hi > expect_hi else "leaves a gap above"
                        self.emit(
                            "ISA001",
                            f"field {name} [{hi}:{lo}] {gap_or_overlap} bit {expect_hi}",
                            where, field=name,
                        )
                        ok = False
                        break
                    expect_hi = lo - 1
                    if kind == "reg" and hi - lo + 1 != reg_bits:
                        self.emit(
                            "ISA002",
                            f"reg field {name} is {hi - lo + 1} bits; register file"
                            f" has {self.spec.reg_count} registers ({reg_bits} bits)",
                            where, field=name,
                        )
                if ok and expect_hi != -1:
                    self.emit(
                        "ISA001",
                        f"layout stops at bit {expect_hi + 1}; word not tiled",
                        where,
                    )

    def check_family_audit(self) -> None:
        spec_arms = {arm.name for arm in self.spec.arms}
        for arm in sorted(spec_arms):
            in_layouts = arm in self.spec.layouts
            family = next(a.family for a in self.spec.arms if a.name == arm)
            if family.startswith("exempt:"):
                # Recorded exemptions are visible but advisory.
                reason = family.split(":", 1)[1]
                self.emit(
                    "ISA009",
                    f"arm {arm} exempt from family execution: {reason}",
                    arm, severity=INFO,
                )
                continue
            if family != "profiled":
                self.emit(
                    "ISA009",
                    f"arm {arm} family must be 'profiled' or 'exempt:<reason>',"
                    f" got {family!r}", arm,
                )
                continue
            if not in_layouts:
                self.emit(
                    "ISA009",
                    f"arm {arm} is profiled but has no structured field layout",
                    arm,
                )
        for arm in sorted(set(self.spec.layouts) - spec_arms):
            self.emit(
                "ISA009",
                f"field layout {arm} has no decode arm in the spec", arm,
            )

    # -- claim compilation ------------------------------------------------

    def compile_arms(self) -> None:
        for arm in self.spec.arms:
            try:
                claim = compile_clauses(arm.match, self.word, self.spec.word_width)
                region = compile_clauses(arm.region, self.word, self.spec.word_width)
            except SpecError as exc:
                self.emit("ISA010", str(exc), arm.name)
                continue
            self.claims[arm.name] = claim
            # An arm with no declared region contributes its exact claim to
            # coverage (and has no residual invalid space).
            self.regions[arm.name] = region if arm.region else claim
            ISASPEC_STATS.inc("arms_checked")

    # -- solver-proved checks ---------------------------------------------

    def check_overlap(self) -> None:
        arms = [a for a in self.spec.arms if a.name in self.claims]
        fixed = {a.name: fixed_bits_of(a.match, self.spec.word_width) for a in arms}
        for i, a in enumerate(arms):
            for b in arms[i + 1:]:
                mask_a, val_a = fixed[a.name]
                mask_b, val_b = fixed[b.name]
                common = mask_a & mask_b
                if (val_a ^ val_b) & common:
                    # Conflicting fixed bits: disjoint by arithmetic, and the
                    # argument covers the entire word space.
                    ISASPEC_STATS.inc("overlap_pairs_pruned")
                    continue
                verdict = self._check(self.claims[a.name], self.claims[b.name])
                if verdict == UNSAT:
                    ISASPEC_STATS.inc("overlap_pairs_proved")
                elif verdict == SAT:
                    w = self._model_word()
                    self.emit(
                        "ISA003",
                        f"arms {a.name} and {b.name} both claim {w:#010x}",
                        f"{a.name}*{b.name}", counterexample=w,
                    )
                else:
                    self.emit(
                        "ISA003",
                        f"solver could not decide overlap of {a.name}/{b.name}",
                        f"{a.name}*{b.name}", verdict=verdict,
                    )

    def check_containment(self) -> None:
        for arm in self.spec.arms:
            claim = self.claims.get(arm.name)
            if claim is None or not arm.region:
                continue
            region = self.regions[arm.name]
            verdict = self._check(claim, B.not_(region))
            if verdict == SAT:
                w = self._model_word()
                self.emit(
                    "ISA005",
                    f"arm {arm.name} claims {w:#010x} outside its region",
                    arm.name, counterexample=w,
                )
            elif verdict != UNSAT:
                self.emit(
                    "ISA005",
                    f"solver could not decide containment for {arm.name}",
                    arm.name, verdict=verdict,
                )

    def _covered_term(self) -> Term:
        parts = [self.regions[a.name] for a in self.spec.arms
                 if a.name in self.regions]
        for inv in self.spec.invalid:
            try:
                parts.append(
                    compile_clauses(inv.clauses, self.word, self.spec.word_width)
                )
            except SpecError as exc:
                self.emit("ISA010", str(exc), f"invalid:{inv.name}")
        return B.or_(*parts)

    def check_coverage(self) -> None:
        covered = self._covered_term()
        hole = B.not_(covered)
        shard = self.spec.coverage_shard
        if shard is None:
            shards: list[Term] = [TRUE]
        else:
            hi, lo = shard
            bits = hi - lo + 1
            fld = B.extract(hi, lo, self.word)
            shards = [B.eq(fld, B.bv(v, bits)) for v in range(1 << bits)]
        for idx, selector in enumerate(shards):
            verdict = self._check(hole, selector)
            if verdict == UNSAT:
                ISASPEC_STATS.inc("coverage_shards_proved")
                continue
            if verdict == SAT:
                w = self._model_word()
                self.emit(
                    "ISA004",
                    f"word {w:#010x} is neither claimed nor defined-invalid",
                    f"coverage[{idx}]", witness=w,
                )
            else:
                self.emit(
                    "ISA004",
                    f"solver could not decide coverage shard {idx}",
                    f"coverage[{idx}]", verdict=verdict,
                )

    def check_invalid_disjoint(self) -> None:
        """Hand carve-outs must not swallow claimed words (ISA008).

        Arm *residuals* (``region ∧ ¬claim``) are disjoint from their own
        claim by construction and may overlap other carve-outs freely; only
        the explicit invalid list is checked against every claim.
        """
        for inv in self.spec.invalid:
            try:
                carve = compile_clauses(inv.clauses, self.word, self.spec.word_width)
            except SpecError:
                continue  # reported as ISA010 elsewhere
            carve_mask, carve_val = fixed_bits_of(inv.clauses, self.spec.word_width)
            for arm in self.spec.arms:
                claim = self.claims.get(arm.name)
                if claim is None:
                    continue
                mask, val = fixed_bits_of(arm.match, self.spec.word_width)
                common = mask & carve_mask
                if (val ^ carve_val) & common:
                    ISASPEC_STATS.inc("overlap_pairs_pruned")
                    continue
                verdict = self._check(carve, claim)
                if verdict == SAT:
                    w = self._model_word()
                    self.emit(
                        "ISA008",
                        f"defined-invalid {inv.name} overlaps {arm.name}'s"
                        f" claim at {w:#010x}",
                        f"invalid:{inv.name}*{arm.name}", counterexample=w,
                    )
                elif verdict != UNSAT:
                    self.emit(
                        "ISA008",
                        f"solver could not decide {inv.name} vs {arm.name}",
                        f"invalid:{inv.name}*{arm.name}", verdict=verdict,
                    )

    # -- encoder/decoder agreement ---------------------------------------

    def check_encoders(self) -> None:
        width = self.spec.word_width
        for arm in self.spec.arms:
            enc = arm.encoder
            if enc is None or arm.name not in self.claims:
                continue
            where = f"{arm.name}.encoder"
            mask = 0
            overlap = False
            for name, lo, bits in enc.places:
                pmask = ((1 << bits) - 1) << lo
                if pmask & (mask | enc.fixed_mask):
                    self.emit("ISA011", f"place {name} overlaps earlier bits", where)
                    overlap = True
                mask |= pmask
            if enc.fixed & ~enc.fixed_mask:
                self.emit("ISA011", "fixed value sets bits outside fixed mask", where)
                overlap = True
            if not overlap and (mask | enc.fixed_mask) != (1 << width) - 1:
                self.emit("ISA011", "fixed mask plus places do not tile the word", where)
                overlap = True
            if overlap:
                continue
            # Build encode(vars) symbolically.
            word_enc = B.bv(enc.fixed, width)
            vars_by_name: dict[str, Term] = {}
            for name, lo, bits in enc.places:
                v = B.bv_var(f"isa_e_{arm.name}_{name}", bits)
                vars_by_name[name] = v
                word_enc = B.bvor(word_enc, B.bvshl(
                    B.zext_to(width, v), B.bv(lo, width)))
            # Fixed bits must be consistent with the claim: some operand
            # assignment yields a claimed word.
            claim_enc = B.substitute(self.claims[arm.name], {self.word: word_enc})
            if self._check(claim_enc) != SAT:
                self.emit(
                    "ISA006",
                    f"no operand assignment of {arm.name}'s encoder satisfies"
                    " the decode claim (fixed-bit clash)", where,
                )
                continue
            # decode(encode(fields)) == fields, per field, proved — against
            # every layout variant (e.g. ccmp's register vs immediate forms),
            # deduplicating spans the variants share so each distinct
            # (name, hi, lo) is discharged once.
            names_seen = set()
            spans_proved = set()
            for layout in self.spec.layouts.get(arm.name, ()):
                for name, hi, lo, kind in layout:
                    names_seen.add(name)
                    if (name, hi, lo) in spans_proved:
                        continue
                    spans_proved.add((name, hi, lo))
                    v = vars_by_name.get(name)
                    if v is None:
                        fmask = ((1 << (hi - lo + 1)) - 1) << lo
                        if fmask & enc.fixed_mask != fmask:
                            self.emit(
                                "ISA006",
                                f"field {name} [{hi}:{lo}] is neither an encoder"
                                " place nor fully fixed", where, field=name,
                            )
                        continue
                    if v.sort.width != hi - lo + 1:
                        self.emit(
                            "ISA006",
                            f"encoder packs {name} as {v.sort.width} bits;"
                            f" decoder reads [{hi}:{lo}]", where, field=name,
                        )
                        continue
                    roundtrip = B.eq(B.extract(hi, lo, word_enc), v)
                    if roundtrip is not TRUE and self._check(B.not_(roundtrip)) != UNSAT:
                        self.emit(
                            "ISA006",
                            f"decode(encode(fields)).{name} != fields.{name}"
                            " (misplaced operand)", where, field=name,
                        )
            for name in vars_by_name:
                if name not in names_seen:
                    self.emit(
                        "ISA006",
                        f"encoder place {name} has no decode field", where,
                        field=name,
                    )

    # -- grounding against the Python implementations ---------------------

    def check_witnesses(self) -> None:
        spec = self.spec
        for arm in spec.arms:
            claim = self.claims.get(arm.name)
            if claim is None:
                continue
            for w in self._enumerate(claim, self.witnesses):
                ISASPEC_STATS.inc("witnesses_checked")
                try:
                    got = spec.decode_arm(w)
                except spec.invalid_exc:
                    self.emit(
                        "ISA007",
                        f"spec claims {w:#010x} for {arm.name}; decoder rejects it",
                        arm.name, witness=w,
                    )
                    continue
                if got != arm.name:
                    self.emit(
                        "ISA007",
                        f"spec claims {w:#010x} for {arm.name}; decoder says {got}",
                        arm.name, witness=w,
                    )
                    continue
                decoded = spec.decode_fields(w)
                variants = spec.layouts.get(arm.name, ())
                if decoded is None or (variants and decoded[1] not in variants):
                    self.emit(
                        "ISA007",
                        f"decode_fields({w:#010x}) layout not among {arm.name}'s"
                        " spec variants", arm.name, witness=w,
                    )
        # Invalid space: enumerated witnesses must be rejected.  The space is
        # each arm's residual (region ∧ ¬claim) plus the hand carve-outs,
        # minus every claim (a residual word may legitimately belong to a
        # *different* arm).
        any_claim = B.or_(*self.claims.values())
        residuals = [
            (f"residual:{arm.name}",
             B.and_(self.regions[arm.name], B.not_(self.claims[arm.name])))
            for arm in spec.arms
            if arm.name in self.claims and arm.region
        ]
        carves = []
        for inv in spec.invalid:
            try:
                carves.append(
                    (f"invalid:{inv.name}",
                     compile_clauses(inv.clauses, self.word, spec.word_width))
                )
            except SpecError:
                continue  # already reported as ISA010 during coverage
        for label, term in residuals + carves:
            constraint = B.and_(term, B.not_(any_claim))
            for w in self._enumerate(constraint, 2):
                ISASPEC_STATS.inc("witnesses_checked")
                try:
                    got = spec.decode_arm(w)
                except spec.invalid_exc:
                    continue
                self.emit(
                    "ISA007",
                    f"{w:#010x} is defined-invalid ({label}) but the decoder"
                    f" claims it as {got}", label, witness=w,
                )

    def check_probes(self) -> None:
        spec = self.spec
        for arm_name, words in sorted(spec.probes.items()):
            arm = next((a for a in spec.arms if a.name == arm_name), None)
            if arm is None:
                self.emit(
                    "ISA007", f"probe arm {arm_name} not in the spec", arm_name,
                )
                continue
            for w in words:
                ISASPEC_STATS.inc("probes_checked")
                try:
                    claimed = eval_clauses(arm.match, w, spec.word_width)
                except SpecError as exc:
                    self.emit("ISA010", str(exc), arm_name)
                    break
                if not claimed:
                    self.emit(
                        "ISA007",
                        f"encoder word {w:#010x} is outside {arm_name}'s claim",
                        arm_name, witness=w,
                    )
                enc = arm.encoder
                if enc is not None and w & enc.fixed_mask != enc.fixed:
                    self.emit(
                        "ISA007",
                        f"encoder word {w:#010x} disagrees with {arm_name}'s"
                        " fixed bits", arm_name, witness=w,
                    )

    # -- driver -----------------------------------------------------------

    def run(self) -> list[Finding]:
        ISASPEC_STATS.inc("specs_validated")
        self.check_layouts()
        self.check_family_audit()
        self.compile_arms()
        self.check_overlap()
        self.check_containment()
        self.check_coverage()
        self.check_invalid_disjoint()
        self.check_encoders()
        self.check_witnesses()
        self.check_probes()
        return self.findings


def validate_spec(spec: IsaSpec, witnesses: int = 3) -> list[Finding]:
    """Run every ISA-spec check over ``spec``; returns the findings.

    The overlap and coverage results are exhaustive over the full word
    space: pairs are discharged by fixed-bit arithmetic or UNSAT proofs,
    and coverage shards partition all ``2**word_width`` words.
    """
    return _Validator(spec, witnesses=witnesses).run()


def available_archs() -> tuple[str, ...]:
    from ..arch import registry

    return registry.names()


def load_spec(arch: str) -> IsaSpec:
    """The declarative :class:`IsaSpec` for a registered architecture."""
    from ..arch import registry

    try:
        info = registry.get(arch)
    except KeyError:
        raise SpecError(f"no ISA spec for architecture {arch!r}") from None
    return info.spec()


def validate_arch(arch: str, witnesses: int = 3) -> list[Finding]:
    """Load and validate one architecture's spec."""
    return validate_spec(load_spec(arch), witnesses=witnesses)
