"""``repro.cosim`` — mass differential co-simulation.

Scales the conformance story from hundreds of checked-in cases to millions
of generated ones, following the state-comparison idiom of symbolic-
execution validation against formal ISA semantics (Tempel et al.): a *fast
direct interpreter* per architecture executes generated programs in plain
Python integers, and a co-simulation driver steps it in lockstep against
the concrete ITL operational semantics (the authoritative side), diffing
registers, memory, flags, and visible labels after every instruction.

Trust story (see DESIGN.md): the fast interpreter is an **oracle
cross-check, not a trusted component**.  A divergence means one of the two
executors is wrong; the shrinker minimises the witness and the reproducer
lands in the conformance corpus where the existing differential machinery
(concrete mini-Sail model vs ITL trace replay) adjudicates.  Nothing the
interpreter computes ever enters a proof.
"""

from .archs import COSIM_ARCHS, CosimArch
from .driver import BatchReport, CoSimDriver, Divergence, run_service_batch
from .generate import CoverageMap, ProgramGenerator, GeneratedProgram
from .interp import (
    ArmInterp,
    CosimDomainError,
    CosimUnsupported,
    DEFECTS,
    RiscvInterp,
    interp_for,
)
from .state import diff_states, snapshot_state

__all__ = [
    "ArmInterp", "BatchReport", "COSIM_ARCHS", "CoSimDriver", "CosimArch",
    "CosimDomainError", "CosimUnsupported", "CoverageMap", "DEFECTS",
    "Divergence", "GeneratedProgram", "ProgramGenerator", "RiscvInterp",
    "diff_states", "interp_for", "run_service_batch", "snapshot_state",
]
