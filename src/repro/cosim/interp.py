"""Fast direct interpreters: decode arms straight to Python int ops.

One class per architecture, dispatching on the *existing* decoder's arm
names (``arch/*/decode.py``) into handlers that execute the instruction
with plain Python integers — no SMT terms, no ITL, no symbolic pipeline.
This is the fast side of the co-simulation pair; the concrete ITL opsem
is the authoritative side.

The interpreter deliberately mirrors the mini-Sail models' *semantics*
(including the corners: X31-as-zero vs SP selection, AddWithCarry flag
computation, division-by-zero-yields-zero, alignment faults routed
through ``take_exception`` when SCTLR.A is set) while sharing none of
their *code* — sharing code would make the cross-check circular.

Domain errors mirror the concrete machine's:

- :class:`CosimDomainError` — the state left the comparable domain
  (partially-mapped access, unmapped register), like ``ModelError``;
- :class:`CosimUnsupported` — the encoding or state hits a path the
  models declare unreachable (reserved shift amounts, unknown system
  registers, AArch32 returns), so neither executor models it.

Defect injection (``defect=`` name from :data:`DEFECTS`) deliberately
miscomputes one datapath; the mutation tests assert the co-sim driver
finds and shrinks every one of them.
"""

from __future__ import annotations

from ..arch.arm import regs as AR
from ..arch.arm.model import decode_bit_masks
from ..itl.events import LabelRead, LabelWrite, Reg
from ..itl.machine import MachineState
from .archs import CosimArch

MASK64 = (1 << 64) - 1


class CosimDomainError(Exception):
    """The state is outside the comparable domain (mirrors ``ModelError``)."""


class CosimUnsupported(Exception):
    """The encoding/state reaches a model-unreachable path; skip the case."""


#: Injectable defects for the mutation tests: name -> description of the
#: *wrong* behaviour.  Each one is a single-datapath miscomputation that a
#: clean co-sim run must flag as a divergence.
DEFECTS = {
    "arm-adds-carry-inverted": "ADDS/SUBS computes the C flag inverted",
    "arm-ror-off-by-one": "ROR shifted-register rotates by amount+1",
    "arm-movk-clears": "MOVK zeroes the untouched lanes (acts like MOVZ)",
    "arm-ldp-swapped": "LDP writes the two loaded values to swapped registers",
    "arm-cbz-inverted": "CBZ/CBNZ branches on the inverted condition",
    "arm-str-addr-off": "STR (unsigned imm) stores 4 bytes below the address",
    "riscv-sra-logical": "SRA/SRAI/SRAW perform a logical shift",
    "riscv-jalr-keeps-bit0": "JALR fails to clear bit 0 of the target",
    "riscv-sltu-signed": "SLTU/SLTIU compare signed",
    "riscv-lh-zero-extends": "LH zero-extends instead of sign-extending",
    "ppc-subf-swapped": "SUBF computes RA - RB instead of RB - RA",
    "ppc-cmpi-unsigned": "CMPI compares unsigned (acts like CMPLI)",
    "ppc-bdnz-predec": "BC tests (and keeps) the pre-decrement CTR value",
    "ppc-lbz-sign-extends": "LBZ sign-extends instead of zero-extending",
}


def _sx(value: int, bits: int) -> int:
    """Two's-complement signed view of a ``bits``-wide field."""
    return value - (1 << bits) if value >> (bits - 1) else value


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def _f(op: int, hi: int, lo: int) -> int:
    return (op >> lo) & _mask(hi - lo + 1)


class _BaseInterp:
    """State access shared by both interpreters (mirrors ConcreteMachine's
    unmapped-memory-as-MMIO behaviour so the label streams compare)."""

    def __init__(
        self,
        arch: CosimArch,
        state: MachineState,
        device=None,
        defect: str | None = None,
    ) -> None:
        if defect is not None and defect not in DEFECTS:
            raise KeyError(f"unknown defect {defect!r}")
        self.arch = arch
        self.state = state
        self.device = device or (lambda addr, n: 0)
        self.defect = defect
        self.labels: list = []
        self.instructions = 0

    # -- registers ---------------------------------------------------------

    def _rr(self, reg: Reg) -> int:
        value = self.state.read_reg(reg)
        if value is None:
            raise CosimDomainError(f"read of unmapped register {reg}")
        return int(value)

    def _wr(self, reg: Reg, value: int, width: int = 64) -> None:
        self.state.write_reg(reg, value & _mask(width))

    # -- memory ------------------------------------------------------------

    def _read_mem(self, addr: int, nbytes: int) -> int:
        addr &= MASK64
        if self.state.mem_mapped(addr, nbytes):
            return self.state.read_mem(addr, nbytes)
        if self.state.mem_unmapped(addr, nbytes):
            data = self.device(addr, nbytes) & _mask(8 * nbytes)
            self.labels.append(LabelRead(addr, data, nbytes))
            return data
        raise CosimDomainError(f"partially mapped read at 0x{addr:x}")

    def _write_mem(self, addr: int, data: int, nbytes: int) -> None:
        addr &= MASK64
        data &= _mask(8 * nbytes)
        if self.state.mem_mapped(addr, nbytes):
            self.state.write_mem(addr, data, nbytes)
        elif self.state.mem_unmapped(addr, nbytes):
            self.labels.append(LabelWrite(addr, data, nbytes))
        else:
            raise CosimDomainError(f"partially mapped write at 0x{addr:x}")

    # -- stepping ----------------------------------------------------------

    def step(self) -> None:
        """Fetch, decode (via the existing decoder's arm name), execute."""
        pc = self._rr(self.state.pc_reg)
        if not self.state.mem_mapped(pc, 4):
            raise CosimDomainError(f"instruction fetch at 0x{pc:x} unmapped")
        op = self.state.read_mem(pc, 4)
        arm = self.arch.decode.decode_arm(op)  # UnknownInstruction propagates
        handler = getattr(self, f"op_{arm}", None)
        if handler is None:
            raise CosimUnsupported(f"no handler for decode arm {arm!r}")
        handler(op, pc)
        self.instructions += 1


# ---------------------------------------------------------------------------
# AArch64
# ---------------------------------------------------------------------------


def _pst(field: str) -> Reg:
    return AR.pstate(field)


class ArmInterp(_BaseInterp):
    """Plain-integer AArch64 interpreter over the modelled subset."""

    # -- register-bank helpers --------------------------------------------

    def _x(self, n: int, size: int = 64) -> int:
        if n == 31:
            return 0
        return self._rr(AR.gpr(n)) & _mask(size)

    def _set_x(self, n: int, value: int, size: int = 64) -> None:
        if n == 31:
            return
        self._wr(AR.gpr(n), value & _mask(size))

    def _sp_reg(self) -> Reg:
        if self._rr(_pst("SP")) == 0:
            return AR.sp_for_el(0)
        el = self._rr(_pst("EL"))
        return AR.sp_for_el(el if el < 3 else 3)

    def _sp(self, size: int = 64) -> int:
        return self._rr(self._sp_reg()) & _mask(size)

    def _set_sp(self, value: int) -> None:
        self._wr(self._sp_reg(), value & MASK64)

    def _advance(self, pc: int) -> None:
        self._wr(self.state.pc_reg, (pc + 4) & MASK64)

    # -- flags -------------------------------------------------------------

    def _cond_holds(self, cond: int) -> bool:
        n = self._rr(_pst("N"))
        z = self._rr(_pst("Z"))
        c = self._rr(_pst("C"))
        v = self._rr(_pst("V"))
        base = cond >> 1
        if base == 0b000:
            result = z == 1
        elif base == 0b001:
            result = c == 1
        elif base == 0b010:
            result = n == 1
        elif base == 0b011:
            result = v == 1
        elif base == 0b100:
            result = c == 1 and z == 0
        elif base == 0b101:
            result = n == v
        elif base == 0b110:
            result = n == v and z == 0
        else:
            result = True
        if cond & 1 and cond != 0b1111:
            result = not result
        return result

    def _set_nzcv(self, nzcv: int) -> None:
        self._wr(_pst("N"), (nzcv >> 3) & 1, 1)
        self._wr(_pst("Z"), (nzcv >> 2) & 1, 1)
        self._wr(_pst("C"), (nzcv >> 1) & 1, 1)
        self._wr(_pst("V"), nzcv & 1, 1)

    def _add_with_carry(self, x: int, y: int, carry: int, w: int) -> tuple[int, int]:
        usum = x + y + carry
        result = usum & _mask(w)
        n = result >> (w - 1)
        z = 1 if result == 0 else 0
        c = 1 if usum >> w else 0
        ssum = _sx(x, w) + _sx(y, w) + carry
        v = 0 if -(1 << (w - 1)) <= ssum < (1 << (w - 1)) else 1
        if self.defect == "arm-adds-carry-inverted":
            c ^= 1
        return result, (n << 3) | (z << 2) | (c << 1) | v

    def _set_logical_flags(self, result: int, w: int) -> None:
        n = (result >> (w - 1)) & 1
        z = 1 if result & _mask(w) == 0 else 0
        self._set_nzcv((n << 3) | (z << 2))

    # -- memory path (alignment + exceptions) ------------------------------

    class _ExceptionTaken(Exception):
        pass

    def _check_alignment(self, addr: int, nbytes: int, iswrite: bool, pc: int) -> None:
        if nbytes == 1:
            return
        el = self._rr(_pst("EL"))
        sctlr = self._rr(Reg("SCTLR_EL2" if el == 2 else "SCTLR_EL1"))
        if (sctlr >> 1) & 1 and addr % nbytes:
            iss = AR.DFSC_ALIGNMENT | (int(iswrite) << 6)
            self._take_exception(
                ec=AR.EC_DATA_ABORT_SAME, iss=iss, preferred_return=pc,
                far=addr, same_el=True,
            )
            raise self._ExceptionTaken()

    def _mem_read(self, addr: int, nbytes: int, pc: int) -> int:
        self._check_alignment(addr, nbytes, iswrite=False, pc=pc)
        return self._read_mem(addr, nbytes)

    def _mem_write(self, addr: int, data: int, nbytes: int, pc: int) -> None:
        self._check_alignment(addr, nbytes, iswrite=True, pc=pc)
        self._write_mem(addr, data, nbytes)

    # -- exception entry / return ------------------------------------------

    def _take_exception(
        self, ec: int, iss: int, preferred_return: int,
        far: int | None = None, same_el: bool = False, target_el: int = 2,
    ) -> None:
        if same_el:
            el = self._rr(_pst("EL"))
            if el in (2, 1):
                target_el = el
            else:
                raise CosimUnsupported("exceptions to EL0/EL3 not modelled")
        suffix = f"EL{target_el}"
        self._wr(Reg(f"SPSR_{suffix}"), self._build_spsr())
        self._wr(Reg(f"ELR_{suffix}"), preferred_return)
        self._wr(Reg(f"ESR_{suffix}"), (ec << 26) | (1 << 25) | iss)
        if far is not None:
            self._wr(Reg(f"FAR_{suffix}"), far)
        if same_el:
            offset = (
                AR.VECTOR_CURRENT_SP0_SYNC
                if self._rr(_pst("SP")) == 0
                else AR.VECTOR_CURRENT_SPX_SYNC
            )
        else:
            offset = AR.VECTOR_LOWER_A64_SYNC
        self._wr(_pst("EL"), target_el, 2)
        self._wr(_pst("SP"), 1, 1)
        for flag in "DAIF":
            self._wr(_pst(flag), 1, 1)
        vbar = self._rr(Reg(f"VBAR_{suffix}"))
        self._wr(self.state.pc_reg, (vbar + offset) & MASK64)

    def _build_spsr(self) -> int:
        spsr = 0
        spsr |= self._rr(_pst("N")) << 31
        spsr |= self._rr(_pst("Z")) << 30
        spsr |= self._rr(_pst("C")) << 29
        spsr |= self._rr(_pst("V")) << 28
        spsr |= self._rr(_pst("D")) << 9
        spsr |= self._rr(_pst("A")) << 8
        spsr |= self._rr(_pst("I")) << 7
        spsr |= self._rr(_pst("F")) << 6
        spsr |= self._rr(_pst("EL")) << 2
        spsr |= self._rr(_pst("SP"))
        return spsr

    def _eret(self) -> None:
        el = self._rr(_pst("EL"))
        if el not in (2, 1, 3):
            raise CosimUnsupported("eret at EL0")
        suffix = f"EL{el}"
        spsr = self._rr(Reg(f"SPSR_{suffix}"))
        elr = self._rr(Reg(f"ELR_{suffix}"))
        if (spsr >> 4) & 1:
            raise CosimUnsupported("AArch32 exception return not modelled")
        target_el = (spsr >> 2) & 0b11
        if target_el > el:
            raise CosimUnsupported("illegal exception return (target above current)")
        if target_el < 2 and el == 2:
            hcr = self._rr(Reg("HCR_EL2"))
            if not (hcr >> 31) & 1:
                raise CosimUnsupported("AArch32 EL1 not modelled (HCR_EL2.RW = 0)")
        self._wr(_pst("N"), (spsr >> 31) & 1, 1)
        self._wr(_pst("Z"), (spsr >> 30) & 1, 1)
        self._wr(_pst("C"), (spsr >> 29) & 1, 1)
        self._wr(_pst("V"), (spsr >> 28) & 1, 1)
        self._wr(_pst("D"), (spsr >> 9) & 1, 1)
        self._wr(_pst("A"), (spsr >> 8) & 1, 1)
        self._wr(_pst("I"), (spsr >> 7) & 1, 1)
        self._wr(_pst("F"), (spsr >> 6) & 1, 1)
        self._wr(_pst("EL"), target_el, 2)
        self._wr(_pst("SP"), spsr & 1, 1)
        self._wr(self.state.pc_reg, elr & MASK64)

    # -- shifts -------------------------------------------------------------

    def _shift_reg(self, value: int, shift_type: int, amount: int, w: int) -> int:
        value &= _mask(w)
        if shift_type == 0b00:  # LSL
            return (value << amount) & _mask(w) if amount < w else 0
        if shift_type == 0b01:  # LSR
            return value >> amount if amount < w else 0
        if shift_type == 0b10:  # ASR
            return (_sx(value, w) >> amount) & _mask(w) if amount < w else (
                _mask(w) if value >> (w - 1) else 0
            )
        amount %= w  # ROR
        if self.defect == "arm-ror-off-by-one":
            amount = (amount + 1) % w
        if amount == 0:
            return value
        return ((value >> amount) | (value << (w - amount))) & _mask(w)

    # -- decode arms --------------------------------------------------------

    def op_addsub_imm(self, op: int, pc: int) -> None:
        sf, is_sub = _f(op, 31, 31), _f(op, 30, 30)
        setflags, shift = _f(op, 29, 29), _f(op, 23, 22)
        imm12, rn, rd = _f(op, 21, 10), _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if shift not in (0b00, 0b01):
            raise CosimUnsupported("ADDG/SUBG (MTE) not modelled")
        imm = (imm12 << 12 if shift else imm12) & _mask(w)
        op1 = self._sp(w) if rn == 31 else self._x(rn, w)
        if is_sub:
            op2, carry = ~imm & _mask(w), 1
        else:
            op2, carry = imm, 0
        result, nzcv = self._add_with_carry(op1, op2, carry, w)
        if setflags:
            self._set_nzcv(nzcv)
        if rd == 31 and not setflags:
            self._set_sp(result)
        else:
            self._set_x(rd, result, w)
        self._advance(pc)

    def op_addsub_reg(self, op: int, pc: int) -> None:
        sf, is_sub = _f(op, 31, 31), _f(op, 30, 30)
        setflags, shift_type = _f(op, 29, 29), _f(op, 23, 22)
        rm, imm6 = _f(op, 20, 16), _f(op, 15, 10)
        rn, rd = _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if shift_type == 0b11:
            raise CosimUnsupported("reserved shift for add/sub")
        if not sf and imm6 >= 32:
            raise CosimUnsupported("reserved shift amount")
        op1 = self._x(rn, w)
        op2 = self._shift_reg(self._x(rm, w), shift_type, imm6, w)
        if is_sub:
            op2, carry = ~op2 & _mask(w), 1
        else:
            carry = 0
        result, nzcv = self._add_with_carry(op1, op2, carry, w)
        if setflags:
            self._set_nzcv(nzcv)
        self._set_x(rd, result, w)
        self._advance(pc)

    def op_logical_reg(self, op: int, pc: int) -> None:
        sf, opc = _f(op, 31, 31), _f(op, 30, 29)
        shift_type, invert = _f(op, 23, 22), _f(op, 21, 21)
        rm, imm6 = _f(op, 20, 16), _f(op, 15, 10)
        rn, rd = _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if not sf and imm6 >= 32:
            raise CosimUnsupported("reserved shift amount")
        op1 = self._x(rn, w)
        op2 = self._shift_reg(self._x(rm, w), shift_type, imm6, w)
        if invert:
            op2 = ~op2 & _mask(w)
        result, setflags = self._logical_op(opc, op1, op2, w)
        if setflags:
            self._set_logical_flags(result, w)
        self._set_x(rd, result, w)
        self._advance(pc)

    @staticmethod
    def _logical_op(opc: int, op1: int, op2: int, w: int) -> tuple[int, bool]:
        if opc == 0b00:
            return op1 & op2, False
        if opc == 0b01:
            return op1 | op2, False
        if opc == 0b10:
            return op1 ^ op2, False
        return op1 & op2, True

    def op_logical_imm(self, op: int, pc: int) -> None:
        sf, opc = _f(op, 31, 31), _f(op, 30, 29)
        immn, immr, imms = _f(op, 22, 22), _f(op, 21, 16), _f(op, 15, 10)
        rn, rd = _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if not sf and immn:
            raise CosimUnsupported("reserved logical immediate (N=1, 32-bit)")
        try:
            imm = decode_bit_masks(immn, imms, immr, w)
        except ValueError as exc:
            raise CosimUnsupported(str(exc)) from exc
        op1 = self._x(rn, w)
        result, setflags = self._logical_op(opc, op1, imm, w)
        if setflags:
            self._set_logical_flags(result, w)
        if rd == 31 and not setflags:
            self._set_sp(result & _mask(w))
        else:
            self._set_x(rd, result, w)
        self._advance(pc)

    def op_movewide(self, op: int, pc: int) -> None:
        sf, opc = _f(op, 31, 31), _f(op, 30, 29)
        hw, imm16, rd = _f(op, 22, 21), _f(op, 20, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if not sf and hw >= 2:
            raise CosimUnsupported("reserved movewide shift")
        pos = hw * 16
        if opc == 0b00:  # MOVN
            value = ~(imm16 << pos) & _mask(w)
        elif opc == 0b10:  # MOVZ
            value = imm16 << pos
        elif opc == 0b11:  # MOVK
            old = self._x(rd, w)
            if self.defect == "arm-movk-clears":
                old = 0
            value = (old & ~(0xFFFF << pos)) | (imm16 << pos)
        else:
            raise CosimUnsupported("reserved movewide opc")
        self._set_x(rd, value, w)
        self._advance(pc)

    def op_bitfield(self, op: int, pc: int) -> None:
        sf, opc = _f(op, 31, 31), _f(op, 30, 29)
        immr, imms = _f(op, 21, 16), _f(op, 15, 10)
        rn, rd = _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        if opc not in (0b00, 0b10):
            raise CosimUnsupported("BFM not modelled")
        signed = opc == 0b00
        src = self._x(rn, w)
        if imms >= immr:
            part = (src >> immr) & _mask(imms - immr + 1)
            if signed:
                part = _sx(part, imms - immr + 1)
            result = part & _mask(w)
        else:
            part = src & _mask(imms + 1)
            shift = (w - immr) % w
            result = (part << shift) & _mask(w)
            if signed:
                width = imms + 1 + shift
                result = _sx(result & _mask(width), width) & _mask(w)
        self._set_x(rd, result, w)
        self._advance(pc)

    def op_csel(self, op: int, pc: int) -> None:
        sf, neg = _f(op, 31, 31), _f(op, 30, 30)
        rm, cond = _f(op, 20, 16), _f(op, 15, 12)
        o2, rn, rd = _f(op, 10, 10), _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        holds = self._cond_holds(cond)
        val_true = self._x(rn, w)
        val_false = self._x(rm, w)
        if neg and o2:
            val_false = -val_false & _mask(w)
        elif neg:
            val_false = ~val_false & _mask(w)
        elif o2:
            val_false = (val_false + 1) & _mask(w)
        self._set_x(rd, val_true if holds else val_false, w)
        self._advance(pc)

    def op_ccmp(self, op: int, pc: int) -> None:
        sf, is_ccmp = _f(op, 31, 31), _f(op, 30, 30)
        imm_form, cond = _f(op, 11, 11), _f(op, 15, 12)
        rn, nzcv_imm = _f(op, 9, 5), _f(op, 3, 0)
        w = 64 if sf else 32
        holds = self._cond_holds(cond)
        op1 = self._x(rn, w)
        op2 = _f(op, 20, 16) if imm_form else self._x(_f(op, 20, 16), w)
        if is_ccmp:
            op2, carry = ~op2 & _mask(w), 1
        else:
            carry = 0
        _, computed = self._add_with_carry(op1, op2, carry, w)
        self._set_nzcv(computed if holds else nzcv_imm)
        self._advance(pc)

    def op_div(self, op: int, pc: int) -> None:
        sf, rm = _f(op, 31, 31), _f(op, 20, 16)
        is_signed, rn, rd = _f(op, 10, 10), _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        dividend, divisor = self._x(rn, w), self._x(rm, w)
        if divisor == 0:
            result = 0
        elif is_signed:
            sn, sm = _sx(dividend, w), _sx(divisor, w)
            quotient = abs(sn) // abs(sm)
            if (sn < 0) != (sm < 0):
                quotient = -quotient
            result = quotient & _mask(w)
        else:
            result = dividend // divisor
        self._set_x(rd, result, w)
        self._advance(pc)

    def op_rbit(self, op: int, pc: int) -> None:
        sf, rn, rd = _f(op, 31, 31), _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        src = self._x(rn, w)
        result = 0
        for i in range(w):
            result = (result << 1) | ((src >> i) & 1)
        self._set_x(rd, result, w)
        self._advance(pc)

    # -- loads and stores ---------------------------------------------------

    def _ldst_base(self, rn: int) -> int:
        return self._sp() if rn == 31 else self._x(rn, 64)

    def _ldst_common(self, opc: int, size: int, addr: int, rt: int, pc: int) -> bool:
        """Shared ldst datapath; returns False when an exception redirected."""
        nbytes = 1 << size
        datasize = 8 * nbytes
        try:
            if opc == 0b00:  # STR
                data = self._x(rt, min(datasize, 64))
                if self.defect == "arm-str-addr-off" and size == 0b10:
                    addr = (addr - 4) & MASK64
                self._mem_write(addr, data & _mask(datasize), nbytes, pc)
            elif opc == 0b01:  # LDR (zero-extending)
                data = self._mem_read(addr, nbytes, pc)
                self._set_x(rt, data, 64)
            elif opc == 0b10 and size < 0b11:  # LDRS* to 64-bit
                data = self._mem_read(addr, nbytes, pc)
                self._set_x(rt, _sx(data, datasize) & MASK64, 64)
            else:
                raise CosimUnsupported(
                    f"load/store opc {opc:#04b} size {size} not modelled"
                )
        except self._ExceptionTaken:
            return False
        return True

    def op_ldst_imm(self, op: int, pc: int) -> None:
        size, opc = _f(op, 31, 30), _f(op, 23, 22)
        imm12, rn, rt = _f(op, 21, 10), _f(op, 9, 5), _f(op, 4, 0)
        addr = (self._ldst_base(rn) + (imm12 << size)) & MASK64
        if self._ldst_common(opc, size, addr, rt, pc):
            self._advance(pc)

    def op_ldst_reg(self, op: int, pc: int) -> None:
        size, opc = _f(op, 31, 30), _f(op, 23, 22)
        rm, option, s_bit = _f(op, 20, 16), _f(op, 15, 13), _f(op, 12, 12)
        rn, rt = _f(op, 9, 5), _f(op, 4, 0)
        shift = size if s_bit else 0
        if option == 0b011:  # LSL (UXTX)
            offset = self._x(rm, 64)
        elif option == 0b010:  # UXTW
            offset = self._x(rm, 32)
        elif option == 0b110:  # SXTW
            offset = _sx(self._x(rm, 32), 32) & MASK64
        else:
            raise CosimUnsupported(f"ldst register option {option:#05b} not modelled")
        offset = (offset << shift) & MASK64
        addr = (self._ldst_base(rn) + offset) & MASK64
        if self._ldst_common(opc, size, addr, rt, pc):
            self._advance(pc)

    def op_ldst_imm9(self, op: int, pc: int) -> None:
        size, opc = _f(op, 31, 30), _f(op, 23, 22)
        imm9, mode = _f(op, 20, 12), _f(op, 11, 10)
        rn, rt = _f(op, 9, 5), _f(op, 4, 0)
        nbytes = 1 << size
        offset = _sx(imm9, 9)
        base = self._ldst_base(rn)
        addr = base if mode == 0b01 else (base + offset) & MASK64
        wback = mode in (0b01, 0b11)
        try:
            if opc == 0b00:
                data = self._x(rt, min(8 * nbytes, 64))
                self._mem_write(addr, data & _mask(8 * nbytes), nbytes, pc)
            elif opc == 0b01:
                data = self._mem_read(addr, nbytes, pc)
                self._set_x(rt, data, 64)
            else:
                raise CosimUnsupported(f"imm9 load/store opc {opc:#04b} not modelled")
        except self._ExceptionTaken:
            return
        if wback:
            new_base = (base + offset) & MASK64
            if rn == 31:
                self._set_sp(new_base)
            else:
                self._set_x(rn, new_base, 64)
        self._advance(pc)

    def op_ldst_pair(self, op: int, pc: int) -> None:
        opc, mode = _f(op, 31, 30), _f(op, 24, 23)
        is_load, imm7 = _f(op, 22, 22), _f(op, 21, 15)
        rt2, rn, rt = _f(op, 14, 10), _f(op, 9, 5), _f(op, 4, 0)
        if opc in (0b01, 0b11):
            raise CosimUnsupported("LDPSW / SIMD pair not modelled")
        datasize = 64 if opc == 0b10 else 32
        nbytes = datasize // 8
        offset = _sx(imm7, 7) * nbytes
        base = self._ldst_base(rn)
        addr = base if mode == 0b01 else (base + offset) & MASK64
        addr2 = (addr + nbytes) & MASK64
        try:
            if is_load:
                data1 = self._mem_read(addr, nbytes, pc)
                data2 = self._mem_read(addr2, nbytes, pc)
                if self.defect == "arm-ldp-swapped":
                    data1, data2 = data2, data1
                self._set_x(rt, data1, 64)
                self._set_x(rt2, data2, 64)
            else:
                self._mem_write(addr, self._x(rt, datasize), nbytes, pc)
                self._mem_write(addr2, self._x(rt2, datasize), nbytes, pc)
        except self._ExceptionTaken:
            return
        if mode in (0b01, 0b11):
            new_base = (base + offset) & MASK64
            if rn == 31:
                self._set_sp(new_base)
            else:
                self._set_x(rn, new_base, 64)
        self._advance(pc)

    # -- pc-relative, multiply ---------------------------------------------

    def op_adr(self, op: int, pc: int) -> None:
        is_page, immlo = _f(op, 31, 31), _f(op, 30, 29)
        immhi, rd = _f(op, 23, 5), _f(op, 4, 0)
        imm = _sx((immhi << 2) | immlo, 21)
        if is_page:
            target = ((pc & ~0xFFF) + (imm << 12)) & MASK64
        else:
            target = (pc + imm) & MASK64
        self._set_x(rd, target, 64)
        self._advance(pc)

    def op_madd(self, op: int, pc: int) -> None:
        sf, rm = _f(op, 31, 31), _f(op, 20, 16)
        is_sub, ra = _f(op, 15, 15), _f(op, 14, 10)
        rn, rd = _f(op, 9, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        product = self._x(rn, w) * self._x(rm, w)
        acc = self._x(ra, w)
        result = acc - product if is_sub else acc + product
        self._set_x(rd, result & _mask(w), w)
        self._advance(pc)

    # -- branches -----------------------------------------------------------

    def op_cbz(self, op: int, pc: int) -> None:
        sf, is_cbnz = _f(op, 31, 31), _f(op, 24, 24)
        imm19, rt = _f(op, 23, 5), _f(op, 4, 0)
        w = 64 if sf else 32
        value = self._x(rt, w)
        taken = (value != 0) if is_cbnz else (value == 0)
        if self.defect == "arm-cbz-inverted":
            taken = not taken
        if taken:
            self._wr(self.state.pc_reg, (pc + _sx(imm19, 19) * 4) & MASK64)
        else:
            self._advance(pc)

    def op_tbz(self, op: int, pc: int) -> None:
        b5, is_tbnz = _f(op, 31, 31), _f(op, 24, 24)
        b40, imm14, rt = _f(op, 23, 19), _f(op, 18, 5), _f(op, 4, 0)
        bitpos = (b5 << 5) | b40
        w = 64 if b5 else 32
        bit = (self._x(rt, w) >> bitpos) & 1
        taken = bit == (1 if is_tbnz else 0)
        if taken:
            self._wr(self.state.pc_reg, (pc + _sx(imm14, 14) * 4) & MASK64)
        else:
            self._advance(pc)

    def op_bcond(self, op: int, pc: int) -> None:
        imm19, cond = _f(op, 23, 5), _f(op, 3, 0)
        if self._cond_holds(cond):
            self._wr(self.state.pc_reg, (pc + _sx(imm19, 19) * 4) & MASK64)
        else:
            self._advance(pc)

    def op_b_bl(self, op: int, pc: int) -> None:
        is_bl, imm26 = _f(op, 31, 31), _f(op, 25, 0)
        if is_bl:
            self._set_x(30, (pc + 4) & MASK64, 64)
        self._wr(self.state.pc_reg, (pc + _sx(imm26, 26) * 4) & MASK64)

    def op_br_blr_ret(self, op: int, pc: int) -> None:
        opc, rn = _f(op, 24, 21), _f(op, 9, 5)
        if opc == 0b0100:  # ERET (decoder only accepts rn == 31 here)
            self._eret()
            return
        target = self._x(rn, 64)
        if opc == 0b0001:  # BLR
            self._set_x(30, (pc + 4) & MASK64, 64)
        elif opc not in (0b0000, 0b0010):  # BR, RET
            raise CosimUnsupported(f"branch-register opc {opc:#06b} not modelled")
        self._wr(self.state.pc_reg, target)

    # -- system -------------------------------------------------------------

    def op_hint(self, op: int, pc: int) -> None:
        self._advance(pc)

    def op_sysreg(self, op: int, pc: int) -> None:
        is_read = _f(op, 21, 21)
        enc = (
            2 + _f(op, 19, 19), _f(op, 18, 16), _f(op, 15, 12),
            _f(op, 11, 8), _f(op, 7, 5),
        )
        rt = _f(op, 4, 0)
        name = AR.ENCODING_TO_SYSREG.get(enc)
        if name is None:
            raise CosimUnsupported(f"unknown system register encoding {enc}")
        reg = Reg(name)
        if is_read:
            self._set_x(rt, self._rr(reg), 64)
        else:
            self._wr(reg, self._x(rt, 64))
        self._advance(pc)

    def op_hvc(self, op: int, pc: int) -> None:
        """HVC and SVC share a decode arm (low bits distinguish them)."""
        imm16 = _f(op, 20, 5)
        low = _f(op, 4, 0)
        el = self._rr(_pst("EL"))
        if low == 0b00010:  # HVC
            if el == 0:
                raise CosimUnsupported("hvc at EL0 not modelled")
            self._take_exception(
                ec=AR.EC_HVC64, iss=imm16, preferred_return=(pc + 4) & MASK64,
                same_el=False, target_el=2,
            )
        elif low == 0b00001:  # SVC
            if el == 0:
                self._take_exception(
                    ec=AR.EC_SVC64, iss=imm16,
                    preferred_return=(pc + 4) & MASK64,
                    same_el=False, target_el=1,
                )
            elif el == 1:
                self._take_exception(
                    ec=AR.EC_SVC64, iss=imm16,
                    preferred_return=(pc + 4) & MASK64, same_el=True,
                )
            else:
                raise CosimUnsupported("svc above EL1 not modelled")
        else:
            raise CosimUnsupported(f"exception-generating low bits {low:#07b}")


# ---------------------------------------------------------------------------
# RV64I
# ---------------------------------------------------------------------------

_RISCV_PC = Reg("PC")

_MSTATUS_MIE = 3
_MSTATUS_MPIE = 7


class RiscvInterp(_BaseInterp):
    """Plain-integer RV64I interpreter over the modelled subset."""

    def _x(self, n: int) -> int:
        if n == 0:
            return 0
        return self._rr(Reg(f"x{n}"))

    def _set_x(self, n: int, value: int) -> None:
        if n == 0:
            return
        self._wr(Reg(f"x{n}"), value & MASK64)

    def _advance(self, pc: int) -> None:
        self._wr(_RISCV_PC, (pc + 4) & MASK64)

    # -- immediates ---------------------------------------------------------

    @staticmethod
    def _imm_i(op: int) -> int:
        return _sx(_f(op, 31, 20), 12)

    @staticmethod
    def _imm_s(op: int) -> int:
        return _sx((_f(op, 31, 25) << 5) | _f(op, 11, 7), 12)

    @staticmethod
    def _imm_b(op: int) -> int:
        raw = (
            (_f(op, 31, 31) << 12) | (_f(op, 7, 7) << 11)
            | (_f(op, 30, 25) << 5) | (_f(op, 11, 8) << 1)
        )
        return _sx(raw, 13)

    @staticmethod
    def _imm_u(op: int) -> int:
        return _sx(_f(op, 31, 12) << 12, 32)

    @staticmethod
    def _imm_j(op: int) -> int:
        raw = (
            (_f(op, 31, 31) << 20) | (_f(op, 19, 12) << 12)
            | (_f(op, 20, 20) << 11) | (_f(op, 30, 21) << 1)
        )
        return _sx(raw, 21)

    # -- ALU ----------------------------------------------------------------

    def _alu(self, funct3: int, alt: bool, a: int, b: int, w: int) -> int:
        a &= _mask(w)
        b_m = b & _mask(w)
        if funct3 == 0b000:
            return (a - b_m if alt else a + b_m) & _mask(w)
        if funct3 == 0b001:
            return (a << (b_m & (w - 1))) & _mask(w)
        if funct3 == 0b010:
            return 1 if _sx(a, w) < _sx(b_m, w) else 0
        if funct3 == 0b011:
            if self.defect == "riscv-sltu-signed":
                return 1 if _sx(a, w) < _sx(b_m, w) else 0
            return 1 if a < b_m else 0
        if funct3 == 0b100:
            return a ^ b_m
        if funct3 == 0b101:
            sh = b_m & (w - 1)
            if alt and self.defect != "riscv-sra-logical":
                return (_sx(a, w) >> sh) & _mask(w)
            return a >> sh
        if funct3 == 0b110:
            return a | b_m
        return a & b_m

    # -- decode arms --------------------------------------------------------

    def op_lui(self, op: int, pc: int) -> None:
        self._set_x(_f(op, 11, 7), self._imm_u(op) & MASK64)
        self._advance(pc)

    def op_auipc(self, op: int, pc: int) -> None:
        self._set_x(_f(op, 11, 7), (pc + self._imm_u(op)) & MASK64)
        self._advance(pc)

    def op_jal(self, op: int, pc: int) -> None:
        self._set_x(_f(op, 11, 7), (pc + 4) & MASK64)
        self._wr(_RISCV_PC, (pc + self._imm_j(op)) & MASK64)

    def op_jalr(self, op: int, pc: int) -> None:
        rd, rs1 = _f(op, 11, 7), _f(op, 19, 15)
        target = (self._x(rs1) + self._imm_i(op)) & MASK64
        if self.defect != "riscv-jalr-keeps-bit0":
            target &= ~1
        self._set_x(rd, (pc + 4) & MASK64)
        self._wr(_RISCV_PC, target)

    def op_branch(self, op: int, pc: int) -> None:
        funct3 = _f(op, 14, 12)
        a, b = self._x(_f(op, 19, 15)), self._x(_f(op, 24, 20))
        if funct3 == 0b000:
            taken = a == b
        elif funct3 == 0b001:
            taken = a != b
        elif funct3 == 0b100:
            taken = _sx(a, 64) < _sx(b, 64)
        elif funct3 == 0b101:
            taken = _sx(a, 64) >= _sx(b, 64)
        elif funct3 == 0b110:
            taken = a < b
        elif funct3 == 0b111:
            taken = a >= b
        else:
            raise CosimUnsupported(f"reserved branch funct3 {funct3:#05b}")
        if taken:
            self._wr(_RISCV_PC, (pc + self._imm_b(op)) & MASK64)
        else:
            self._advance(pc)

    def op_load(self, op: int, pc: int) -> None:
        funct3, rd, rs1 = _f(op, 14, 12), _f(op, 11, 7), _f(op, 19, 15)
        if funct3 == 0b111:
            raise CosimUnsupported("reserved load funct3")
        width = funct3 & 0b011
        unsigned = bool(funct3 & 0b100)
        nbytes = 1 << width
        addr = (self._x(rs1) + self._imm_i(op)) & MASK64
        data = self._read_mem(addr, nbytes)
        if funct3 == 0b001 and self.defect == "riscv-lh-zero-extends":
            unsigned = True
        value = data if unsigned else _sx(data, 8 * nbytes) & MASK64
        self._set_x(rd, value)
        self._advance(pc)

    def op_store(self, op: int, pc: int) -> None:
        funct3, rs1, rs2 = _f(op, 14, 12), _f(op, 19, 15), _f(op, 24, 20)
        if funct3 > 0b011:
            raise CosimUnsupported("reserved store funct3")
        nbytes = 1 << (funct3 & 0b011)
        addr = (self._x(rs1) + self._imm_s(op)) & MASK64
        self._write_mem(addr, self._x(rs2), nbytes)
        self._advance(pc)

    def _op_imm(self, op: int, pc: int, w: int) -> None:
        funct3, rd, rs1 = _f(op, 14, 12), _f(op, 11, 7), _f(op, 19, 15)
        a = self._x(rs1)
        imm = self._imm_i(op)
        alt = False
        if funct3 == 0b101:
            alt = bool(_f(op, 30, 30))
        result = self._alu(funct3, alt, a, imm, w)
        if w == 32:
            result = _sx(result, 32) & MASK64
        self._set_x(rd, result)
        self._advance(pc)

    def op_op_imm(self, op: int, pc: int) -> None:
        self._op_imm(op, pc, 64)

    def op_op_imm32(self, op: int, pc: int) -> None:
        self._op_imm(op, pc, 32)

    def _op_reg(self, op: int, pc: int, w: int) -> None:
        funct3, funct7 = _f(op, 14, 12), _f(op, 31, 25)
        rd, rs1, rs2 = _f(op, 11, 7), _f(op, 19, 15), _f(op, 24, 20)
        if funct7 not in (0b0000000, 0b0100000):
            raise CosimUnsupported(f"funct7 {funct7:#09b} not modelled")
        alt = funct7 == 0b0100000
        result = self._alu(funct3, alt, self._x(rs1), self._x(rs2), w)
        if w == 32:
            result = _sx(result, 32) & MASK64
        self._set_x(rd, result)
        self._advance(pc)

    def op_op(self, op: int, pc: int) -> None:
        self._op_reg(op, pc, 64)

    def op_op32(self, op: int, pc: int) -> None:
        self._op_reg(op, pc, 32)

    def op_fence(self, op: int, pc: int) -> None:
        self._advance(pc)

    # -- traps and CSRs -----------------------------------------------------

    def _take_trap(self, cause: int, pc: int, tval: int = 0) -> None:
        self._wr(Reg("mepc"), pc)
        self._wr(Reg("mcause"), cause)
        self._wr(Reg("mtval"), tval)
        status = self._rr(Reg("mstatus"))
        mie = (status >> _MSTATUS_MIE) & 1
        status = (status & ~(1 << _MSTATUS_MPIE)) | (mie << _MSTATUS_MPIE)
        status &= ~(1 << _MSTATUS_MIE)
        self._wr(Reg("mstatus"), status)
        tvec = self._rr(Reg("mtvec"))
        self._wr(_RISCV_PC, tvec & ~0b11 & MASK64)

    def _mret(self) -> None:
        status = self._rr(Reg("mstatus"))
        mpie = (status >> _MSTATUS_MPIE) & 1
        status = (status & ~(1 << _MSTATUS_MIE)) | (mpie << _MSTATUS_MIE)
        status |= 1 << _MSTATUS_MPIE
        self._wr(Reg("mstatus"), status)
        self._wr(_RISCV_PC, self._rr(Reg("mepc")))

    def _csr(self, op: int, pc: int) -> None:
        from ..arch.riscv.model import ADDRESS_TO_CSR

        funct3, rd, rs1 = _f(op, 14, 12), _f(op, 11, 7), _f(op, 19, 15)
        addr = _f(op, 31, 20)
        name = ADDRESS_TO_CSR.get(addr)
        if name is None:
            raise CosimUnsupported(f"CSR {addr:#05x} not modelled")
        csr = Reg(name)
        imm_form = bool(funct3 & 0b100)
        operand = rs1 if imm_form else self._x(rs1)
        kind = funct3 & 0b011
        old = None
        if not (kind == 0b01 and rd == 0):
            old = self._rr(csr)
        if kind == 0b01:  # CSRRW
            self._wr(csr, operand)
        elif rs1 != 0:
            if kind == 0b10:  # CSRRS
                self._wr(csr, old | operand)
            else:  # CSRRC
                self._wr(csr, old & ~operand)
        if old is not None:
            self._set_x(rd, old)
        self._advance(pc)

    def op_system(self, op: int, pc: int) -> None:
        funct3 = _f(op, 14, 12)
        if funct3 != 0:
            self._csr(op, pc)
            return
        funct12 = _f(op, 31, 20)
        if funct12 == 0b000000000000:  # ECALL
            self._take_trap(11, pc)
        elif funct12 == 0b000000000001:  # EBREAK
            self._take_trap(3, pc, tval=pc)
        elif funct12 == 0b001100000010:  # MRET
            self._mret()
        elif funct12 == 0b000100000101:  # WFI
            self._advance(pc)
        else:
            raise CosimUnsupported(f"SYSTEM funct12 {funct12:#014b} not modelled")


# ---------------------------------------------------------------------------
# OpenPOWER (ppc64 fixed-point subset)
# ---------------------------------------------------------------------------

_PPC_PC = Reg("PC")
_PPC_CTR = Reg("CTR")
_PPC_LR = Reg("LR")
_PPC_XER = Reg("XER")

#: SPR instruction-field value -> register (swapped-half encoding).
_PPC_SPRS = {32: _PPC_XER, 256: _PPC_LR, 288: _PPC_CTR}


class PpcInterp(_BaseInterp):
    """Plain-integer OpenPOWER interpreter over the modelled subset."""

    def _gpr(self, n: int) -> int:
        return self._rr(Reg(f"r{n}"))

    def _set_gpr(self, n: int, value: int) -> None:
        self._wr(Reg(f"r{n}"), value & MASK64)

    def _ra_or_zero(self, n: int) -> int:
        """(RA|0): r0 reads as zero in addressing/addi contexts."""
        return 0 if n == 0 else self._gpr(n)

    def _advance(self, pc: int) -> None:
        self._wr(_PPC_PC, (pc + 4) & MASK64)

    # -- condition register --------------------------------------------------

    def _so(self) -> int:
        return (self._rr(_PPC_XER) >> 31) & 1

    def _write_cr(self, bf: int, lt: bool, gt: bool, eq: bool) -> None:
        value = (int(lt) << 3) | (int(gt) << 2) | (int(eq) << 1) | self._so()
        self._wr(Reg(f"CR{bf}"), value, 4)

    def _record_cr0(self, result: int) -> None:
        signed = _sx(result & MASK64, 64)
        self._write_cr(0, signed < 0, signed > 0, signed == 0)

    # -- decode arms: D-form arithmetic / logical -----------------------------

    def _addi(self, op: int, pc: int, shifted: bool) -> None:
        rt, ra = _f(op, 25, 21), _f(op, 20, 16)
        imm = _sx(_f(op, 15, 0), 16)
        if shifted:
            imm <<= 16
        self._set_gpr(rt, self._ra_or_zero(ra) + imm)
        self._advance(pc)

    def op_addi(self, op: int, pc: int) -> None:
        self._addi(op, pc, shifted=False)

    def op_addis(self, op: int, pc: int) -> None:
        self._addi(op, pc, shifted=True)

    def _logic_imm(self, op: int, pc: int, combine, shifted: bool, record: bool) -> None:
        rs, ra = _f(op, 25, 21), _f(op, 20, 16)
        imm = _f(op, 15, 0) << 16 if shifted else _f(op, 15, 0)
        result = combine(self._gpr(rs), imm) & MASK64
        self._set_gpr(ra, result)
        if record:
            self._record_cr0(result)
        self._advance(pc)

    def op_ori(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__or__, shifted=False, record=False)

    def op_oris(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__or__, shifted=True, record=False)

    def op_xori(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__xor__, shifted=False, record=False)

    def op_xoris(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__xor__, shifted=True, record=False)

    def op_andi(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__and__, shifted=False, record=True)

    def op_andis(self, op: int, pc: int) -> None:
        self._logic_imm(op, pc, int.__and__, shifted=True, record=True)

    # -- compares -------------------------------------------------------------

    def _compare(self, op: int, pc: int, b_value: int, unsigned: bool) -> None:
        bf, ell = _f(op, 25, 23), _f(op, 21, 21)
        a_value = self._gpr(_f(op, 20, 16))
        w = 64 if ell else 32
        if unsigned:
            a, b = a_value & _mask(w), b_value & _mask(w)
        else:
            a, b = _sx(a_value & _mask(w), w), _sx(b_value & _mask(w), w)
        self._write_cr(bf, a < b, a > b, a == b)
        self._advance(pc)

    def op_cmpi(self, op: int, pc: int) -> None:
        unsigned = self.defect == "ppc-cmpi-unsigned"
        imm = _f(op, 15, 0) if unsigned else _sx(_f(op, 15, 0), 16)
        self._compare(op, pc, imm, unsigned)

    def op_cmpli(self, op: int, pc: int) -> None:
        self._compare(op, pc, _f(op, 15, 0), unsigned=True)

    def op_cmp(self, op: int, pc: int) -> None:
        self._compare(op, pc, self._gpr(_f(op, 15, 11)), unsigned=False)

    def op_cmpl(self, op: int, pc: int) -> None:
        self._compare(op, pc, self._gpr(_f(op, 15, 11)), unsigned=True)

    # -- loads and stores ------------------------------------------------------

    def _ea(self, op: int, ds_form: bool) -> int:
        ra = _f(op, 20, 16)
        if ds_form:
            disp = _sx(_f(op, 15, 2), 14) << 2
        else:
            disp = _sx(_f(op, 15, 0), 16)
        return (self._ra_or_zero(ra) + disp) & MASK64

    def _load(self, op: int, pc: int, nbytes: int, ds_form: bool = False) -> None:
        data = self._read_mem(self._ea(op, ds_form), nbytes)
        if nbytes == 1 and self.defect == "ppc-lbz-sign-extends":
            data = _sx(data, 8) & MASK64
        self._set_gpr(_f(op, 25, 21), data)
        self._advance(pc)

    def _store(self, op: int, pc: int, nbytes: int, ds_form: bool = False) -> None:
        data = self._gpr(_f(op, 25, 21)) & _mask(8 * nbytes)
        self._write_mem(self._ea(op, ds_form), data, nbytes)
        self._advance(pc)

    def op_lwz(self, op: int, pc: int) -> None:
        self._load(op, pc, 4)

    def op_lbz(self, op: int, pc: int) -> None:
        self._load(op, pc, 1)

    def op_stw(self, op: int, pc: int) -> None:
        self._store(op, pc, 4)

    def op_stb(self, op: int, pc: int) -> None:
        self._store(op, pc, 1)

    def op_ld(self, op: int, pc: int) -> None:
        self._load(op, pc, 8, ds_form=True)

    def op_std(self, op: int, pc: int) -> None:
        self._store(op, pc, 8, ds_form=True)

    # -- branches --------------------------------------------------------------

    def _branch_taken(self, op: int) -> bool:
        """Evaluate BO/BI, decrementing CTR when BO asks (test reads the
        *new* value, per the Power ISA's 'decrement then test')."""
        bo, bi = _f(op, 25, 21), _f(op, 20, 16)
        taken = True
        if not bo & 0b00100:  # decrement CTR, test against ctr_sense
            old = self._rr(_PPC_CTR)
            ctr = (old - 1) & MASK64
            if self.defect == "ppc-bdnz-predec":
                ctr = old
            self._wr(_PPC_CTR, ctr)
            taken = (ctr == 0) == bool(bo & 0b00010)
        if not bo & 0b10000:  # test the CR bit against cond_sense
            crf = self._rr(Reg(f"CR{bi >> 2}"))
            bit = (crf >> (3 - (bi & 3))) & 1
            taken = taken and bit == ((bo >> 3) & 1)
        return taken

    def op_b(self, op: int, pc: int) -> None:
        if _f(op, 0, 0):
            self._wr(_PPC_LR, (pc + 4) & MASK64)
        target = (pc + (_sx(_f(op, 25, 2), 24) << 2)) & MASK64
        self._wr(_PPC_PC, target)

    def _cond_branch(self, op: int, pc: int, target: int) -> None:
        """Shared bc/bclr/bcctr tail: LK then condition then redirect.

        ``target`` must be computed by the caller *before* this runs — the
        LK write clobbers LR, and bclr targets the old value.
        """
        taken = self._branch_taken(op)
        if _f(op, 0, 0):
            self._wr(_PPC_LR, (pc + 4) & MASK64)
        if taken:
            self._wr(_PPC_PC, target)
        else:
            self._advance(pc)

    def op_bc(self, op: int, pc: int) -> None:
        target = (pc + (_sx(_f(op, 15, 2), 14) << 2)) & MASK64
        self._cond_branch(op, pc, target)

    def op_bclr(self, op: int, pc: int) -> None:
        target = self._rr(_PPC_LR) & ~0b11 & MASK64
        self._cond_branch(op, pc, target)

    def op_bcctr(self, op: int, pc: int) -> None:
        target = self._rr(_PPC_CTR) & ~0b11 & MASK64
        self._cond_branch(op, pc, target)

    # -- major 31: X / XO forms ------------------------------------------------

    def op_add(self, op: int, pc: int) -> None:
        a, b = self._gpr(_f(op, 20, 16)), self._gpr(_f(op, 15, 11))
        self._set_gpr(_f(op, 25, 21), a + b)
        self._advance(pc)

    def op_subf(self, op: int, pc: int) -> None:
        a, b = self._gpr(_f(op, 20, 16)), self._gpr(_f(op, 15, 11))
        if self.defect == "ppc-subf-swapped":
            a, b = b, a
        self._set_gpr(_f(op, 25, 21), b - a)
        self._advance(pc)

    def _x_logic(self, op: int, pc: int, combine) -> None:
        rs, ra, rb = _f(op, 25, 21), _f(op, 20, 16), _f(op, 15, 11)
        self._set_gpr(ra, combine(self._gpr(rs), self._gpr(rb)))
        self._advance(pc)

    def op_and(self, op: int, pc: int) -> None:
        self._x_logic(op, pc, int.__and__)

    def op_or(self, op: int, pc: int) -> None:
        self._x_logic(op, pc, int.__or__)

    def op_xor(self, op: int, pc: int) -> None:
        self._x_logic(op, pc, int.__xor__)

    def _spr(self, op: int) -> Reg:
        spr = _PPC_SPRS.get(_f(op, 20, 11))
        if spr is None:
            raise CosimUnsupported(f"SPR field {_f(op, 20, 11)} not modelled")
        return spr

    def op_mtspr(self, op: int, pc: int) -> None:
        self._wr(self._spr(op), self._gpr(_f(op, 25, 21)))
        self._advance(pc)

    def op_mfspr(self, op: int, pc: int) -> None:
        self._set_gpr(_f(op, 25, 21), self._rr(self._spr(op)))
        self._advance(pc)


def interp_for(
    arch: CosimArch,
    state: MachineState,
    device=None,
    defect: str | None = None,
) -> _BaseInterp:
    """The fast interpreter for ``arch`` operating on ``state`` in place."""
    from ..arch import registry

    cls = registry.get(arch.name).interp_class()
    return cls(arch, state, device=device, defect=defect)
