"""Architectural-state construction and diffing for co-simulation.

The two executors (fast interpreter and ITL opsem) each own a
:class:`~repro.itl.machine.MachineState` copy; after every instruction the
driver diffs the two — registers (including the PSTATE flag cells), byte
memory, and the visible MMIO labels each side emitted — and any mismatch
is a divergence witness.

States round-trip through the same JSON shape the conformance corpus
uses (hex-string registers, per-byte memory), so shrunk co-sim
reproducers can be checked in next to the differential entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..itl.events import Reg
from ..itl.machine import MachineState
from .archs import CODE_BASE, MEM_BASE, MEM_LEN, CosimArch


@dataclass
class ProgramCase:
    """One concrete co-sim start state plus its program, JSON-able."""

    regs: dict[str, int] = field(default_factory=dict)
    mem: dict[int, int] = field(default_factory=dict)  # addr -> byte
    pc: int = CODE_BASE
    words: list[int] = field(default_factory=list)  # program, 4-byte words

    def to_json(self) -> dict:
        return {
            "regs": {k: hex(v) for k, v in sorted(self.regs.items())},
            "mem": {hex(a): b for a, b in sorted(self.mem.items())},
            "pc": hex(self.pc),
            "words": [hex(w) for w in self.words],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ProgramCase":
        return cls(
            regs={k: int(v, 16) for k, v in data.get("regs", {}).items()},
            mem={int(a, 16): b for a, b in data.get("mem", {}).items()},
            pc=int(data.get("pc", hex(CODE_BASE)), 16),
            words=[int(w, 16) for w in data.get("words", [])],
        )

    def copy(self) -> "ProgramCase":
        return ProgramCase(
            regs=dict(self.regs), mem=dict(self.mem),
            pc=self.pc, words=list(self.words),
        )


def random_case(arch: CosimArch, rng: random.Random, words: list[int]) -> ProgramCase:
    """A random start state in the comparable domain (mirrors the
    conformance harness's distribution: window pointers, corner values,
    uniform bits)."""
    regs = dict(arch.pins)
    mask = lambda v, w: v & ((1 << w) - 1)  # noqa: E731 — narrow regs (CR fields)
    for name in arch.vary:
        width = arch.model.regfile.width_of(Reg.parse(name))
        roll = rng.random()
        if roll < 0.3:
            regs[name] = mask(MEM_BASE + 8 * rng.randrange(MEM_LEN // 8 - 1), width)
        elif roll < 0.5:
            regs[name] = mask(
                rng.choice([0, 1, 2, 0xFF, (1 << width) - 1, 1 << (width - 1)]),
                width,
            )
        else:
            regs[name] = rng.getrandbits(width)
    for flag in arch.flags:
        regs[flag] = rng.getrandbits(1)
    mem = {MEM_BASE + off: rng.getrandbits(8) for off in range(MEM_LEN)}
    return ProgramCase(regs=regs, mem=mem, pc=CODE_BASE, words=list(words))


def build_machine_state(arch: CosimArch, case: ProgramCase) -> MachineState:
    """Materialise a :class:`MachineState` (every declared register at its
    reset value, then pins, then the case's registers, memory, program)."""
    state = arch.model.initial_state()
    state.write_reg(arch.model.pc_reg, case.pc)
    for name, value in arch.pins.items():
        state.write_reg(Reg.parse(name), value)
    for name, value in case.regs.items():
        state.write_reg(Reg.parse(name), value)
    for addr, byte in case.mem.items():
        state.write_mem(addr, byte, 1)
    for i, word in enumerate(case.words):
        state.load_bytes(case.pc + 4 * i, word.to_bytes(4, "little"))
    return state


def snapshot_state(state: MachineState) -> dict:
    """A hashable-ish plain snapshot (for journaling divergences)."""
    return {
        "regs": {str(reg): value for reg, value in sorted(
            state.regs.items(), key=lambda kv: str(kv[0])
        )},
        "mem": dict(sorted(state.mem.items())),
    }


def diff_states(
    a: MachineState,
    b: MachineState,
    labels_a: list | None = None,
    labels_b: list | None = None,
    a_name: str = "interp",
    b_name: str = "itl",
) -> list[str]:
    """All observable differences between two machine states.

    Returns human-readable difference lines, one per diverging register,
    memory byte, or label stream; empty means the states agree.  The first
    line's *shape* (``register R3``, ``memory 0x5008``, ``labels``) is the
    divergence signature the shrinker preserves.
    """
    out: list[str] = []
    for reg in sorted(set(a.regs) | set(b.regs), key=str):
        va, vb = a.read_reg(reg), b.read_reg(reg)
        if va != vb:
            out.append(
                f"register {reg} diverges: {a_name}={va!r} vs {b_name}={vb!r}"
            )
    for addr in sorted(set(a.mem) | set(b.mem)):
        va, vb = a.mem.get(addr), b.mem.get(addr)
        if va != vb:
            out.append(
                f"memory 0x{addr:x} diverges: {a_name}={va!r} vs {b_name}={vb!r}"
            )
    if labels_a is not None and labels_b is not None and labels_a != labels_b:
        out.append(
            f"labels diverge: {a_name}={labels_a} vs {b_name}={labels_b}"
        )
    return out
