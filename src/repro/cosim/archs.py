"""Per-architecture co-simulation profiles.

One :class:`CosimArch` per registered architecture bundles everything the
generator and driver need: the mini-Sail model (for the authoritative
side), the decoder (arm accounting), the assembler (directed templates),
the pinned registers the ITL traces assume, and the register/memory domain
generated states draw from.  All of it comes from
:mod:`repro.arch.registry` — adding an architecture there adds it here.

The pins mirror the conformance harness: ARM runs at EL2 with the banked
stack pointer selected and alignment checking off (``SCTLR_EL2 = 0``);
RISC-V and OpenPOWER need no pins.  Generated programs may *leave* this
domain (an ``eret`` dropping to EL1, an ``msr`` to SCTLR_EL2); the driver
detects that and ends the case — the ITL traces were generated under the
pinned assumptions and are only authoritative inside them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import registry
from ..isla import Assumptions
from ..itl.events import Reg

#: Mapped memory window for generated states (mirrors the conformance
#: harness): registers are biased to point into it so loads/stores hit
#: real memory as well as the MMIO device fallback.
MEM_BASE = 0x5000
MEM_LEN = 64

#: Where generated programs are placed.
CODE_BASE = 0x1000


@dataclass(frozen=True)
class CosimArch:
    """Everything the co-sim stack needs to know about one architecture."""

    name: str
    model: object
    decode: object
    asm: object
    pins: dict
    vary: tuple
    flags: tuple

    def assumptions(self) -> Assumptions:
        out = Assumptions()
        for reg, value in self.pins.items():
            out.pin(reg, value, self.model.regfile.width_of(Reg.parse(reg)))
        return out

    def pins_hold(self, state) -> bool:
        """Do the pinned-register assumptions still hold in ``state``?

        ITL traces are generated under these assumptions; once a program
        escapes them (eret, msr to a pinned register) the oracle side is
        no longer authoritative and the case must end.
        """
        for name, value in self.pins.items():
            if state.read_reg(Reg.parse(name)) != value:
                return False
        return True

    def arm_names(self) -> list[str]:
        """Every decode-arm name of this architecture's decoder."""
        return decode_arm_names(self.name)


def decode_arm_names(arch_name: str) -> list[str]:
    """The full universe of decode-arm names, straight from the decoders."""
    return list(registry.get(arch_name).decode_arms())


def _build_archs() -> dict[str, CosimArch]:
    return {
        info.name: CosimArch(
            name=info.name,
            model=info.model(),
            decode=info.decode(),
            asm=info.asm(),
            pins=info.pin_dict(),
            vary=info.vary,
            flags=info.flags,
        )
        for info in registry.infos()
    }


COSIM_ARCHS: dict[str, CosimArch] = _build_archs()
