"""Per-architecture co-simulation profiles.

One :class:`CosimArch` per supported architecture bundles everything the
generator and driver need: the mini-Sail model (for the authoritative
side), the decoder (arm accounting), the assembler (directed templates),
the pinned registers the ITL traces assume, and the register/memory domain
generated states draw from.

The pins mirror the conformance harness: ARM runs at EL2 with the banked
stack pointer selected and alignment checking off (``SCTLR_EL2 = 0``);
RISC-V needs no pins.  Generated programs may *leave* this domain (an
``eret`` dropping to EL1, an ``msr`` to SCTLR_EL2); the driver detects
that and ends the case — the ITL traces were generated under the pinned
assumptions and are only authoritative inside them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..arch.arm import ArmModel
from ..arch.arm import asm as arm_asm
from ..arch.arm import decode as arm_decode
from ..arch.riscv import RiscvModel
from ..arch.riscv import asm as riscv_asm
from ..arch.riscv import decode as riscv_decode
from ..isla import Assumptions
from ..itl.events import Reg

#: Mapped memory window for generated states (mirrors the conformance
#: harness): registers are biased to point into it so loads/stores hit
#: real memory as well as the MMIO device fallback.
MEM_BASE = 0x5000
MEM_LEN = 64

#: Where generated programs are placed.
CODE_BASE = 0x1000

ARM_PINS = {"PSTATE.EL": 2, "PSTATE.SP": 1, "SCTLR_EL2": 0}
ARM_VARY = [f"R{i}" for i in range(31)] + ["SP_EL2"]
ARM_FLAGS = ["PSTATE.N", "PSTATE.Z", "PSTATE.C", "PSTATE.V"]
RISCV_VARY = [f"x{i}" for i in range(1, 32)]


@dataclass(frozen=True)
class CosimArch:
    """Everything the co-sim stack needs to know about one architecture."""

    name: str
    model: object
    decode: object
    asm: object
    pins: dict
    vary: tuple
    flags: tuple

    def assumptions(self) -> Assumptions:
        out = Assumptions()
        for reg, value in self.pins.items():
            out.pin(reg, value, self.model.regfile.width_of(Reg.parse(reg)))
        return out

    def pins_hold(self, state) -> bool:
        """Do the pinned-register assumptions still hold in ``state``?

        ITL traces are generated under these assumptions; once a program
        escapes them (eret, msr to a pinned register) the oracle side is
        no longer authoritative and the case must end.
        """
        for name, value in self.pins.items():
            if state.read_reg(Reg.parse(name)) != value:
                return False
        return True

    def arm_names(self) -> list[str]:
        """Every decode-arm name of this architecture's decoder."""
        return decode_arm_names(self.name)


@lru_cache(maxsize=None)
def _models():
    return {"arm": ArmModel(), "riscv": RiscvModel()}


def decode_arm_names(arch_name: str) -> list[str]:
    """The full universe of decode-arm names, straight from the decoders."""
    if arch_name == "arm":
        return [fn.__name__.lstrip("_") for fn in arm_decode._DECODERS]
    if arch_name == "riscv":
        return list(riscv_decode._MAJOR_ARMS.values())
    raise KeyError(f"unknown cosim arch {arch_name!r}")


def _build_archs() -> dict[str, CosimArch]:
    models = _models()
    return {
        "arm": CosimArch(
            name="arm",
            model=models["arm"],
            decode=arm_decode,
            asm=arm_asm,
            pins=dict(ARM_PINS),
            vary=tuple(ARM_VARY),
            flags=tuple(ARM_FLAGS),
        ),
        "riscv": CosimArch(
            name="riscv",
            model=models["riscv"],
            decode=riscv_decode,
            asm=riscv_asm,
            pins={},
            vary=tuple(RISCV_VARY),
            flags=(),
        ),
    }


COSIM_ARCHS: dict[str, CosimArch] = _build_archs()
