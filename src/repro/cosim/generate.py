"""Seeded random program generation with decode-arm coverage bias.

The generator assembles short multi-block programs through the existing
per-architecture assemblers (``arch/*/asm.py``) — one directed template
family per decode arm — mixed with decoder-filtered random words, and
keeps a per-arm :class:`CoverageMap`.  Arm selection is biased toward the
arms with the *lowest* counters, so long co-sim runs converge to uniform
coverage of the decoder instead of piling onto the dense encodings.

Branch-family templates pick targets *inside* the program (forward-biased
so generated programs usually terminate), which is what makes the output
multi-block rather than straight-line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..arch.riscv.decode import ABI
from .archs import CosimArch, decode_arm_names
from .state import ProgramCase, random_case

#: Condition names for ARM b.cond / csel templates.
_CONDS = ["eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le"]

#: Known-good system registers for mrs/msr templates (always encodable,
#: never pinned by the co-sim domain).
_SYSREGS = ["elr_el2", "spsr_el2", "far_el2", "esr_el2", "vbar_el2", "tpidr_el2"]


class CoverageMap:
    """Per-decode-arm hit counters for one architecture."""

    def __init__(self, arch_name: str) -> None:
        self.arch_name = arch_name
        self.counts: dict[str, int] = {name: 0 for name in decode_arm_names(arch_name)}

    def record(self, arm: str) -> None:
        self.counts[arm] = self.counts.get(arm, 0) + 1

    def merge(self, other: "CoverageMap") -> None:
        for arm, count in other.counts.items():
            self.counts[arm] = self.counts.get(arm, 0) + count

    def unhit(self) -> list[str]:
        return sorted(arm for arm, count in self.counts.items() if count == 0)

    def fraction_hit(self) -> float:
        if not self.counts:
            return 1.0
        hit = sum(1 for count in self.counts.values() if count > 0)
        return hit / len(self.counts)

    def lowest(self, k: int = 4) -> list[str]:
        """The ``k`` arms with the fewest hits (the bias targets)."""
        return sorted(self.counts, key=lambda arm: self.counts[arm])[:k]

    def to_json(self) -> dict:
        return {
            "arch": self.arch_name,
            "counts": dict(sorted(self.counts.items())),
            "fraction_hit": round(self.fraction_hit(), 4),
            "unhit": self.unhit(),
        }


@dataclass
class GeneratedProgram:
    """One generated program: its words, per-word decode arms, start state."""

    case: ProgramCase
    arms: list[str] = field(default_factory=list)

    @property
    def words(self) -> list[int]:
        return self.case.words


@dataclass
class _Slot:
    """Template context: which word of how many we are emitting."""

    index: int
    length: int

    def branch_offset(self, rng: random.Random, scale: int = 4) -> int:
        """A branch displacement landing on a program slot, forward-biased."""
        if self.index + 1 < self.length and rng.random() < 0.8:
            target = rng.randrange(self.index + 1, self.length)
        else:
            target = rng.randrange(self.length)
        return (target - self.index) * scale


def _xr(rng: random.Random) -> str:
    return f"x{rng.randrange(31)}"


def _wr_(rng: random.Random) -> str:
    return f"w{rng.randrange(31)}"


def _tr(rng: random.Random) -> str:
    """An ABI register name t0..t6 (maps into x5..x7, x28..x31 range)."""
    return ABI[rng.choice([5, 6, 7, 28, 29, 30])]


def _bitmask_imm(rng: random.Random) -> int:
    """A random encodable 64-bit logical immediate: a rotated run of ones."""
    ones = rng.randrange(1, 64)
    rot = rng.randrange(64)
    run = (1 << ones) - 1
    return ((run >> rot) | (run << (64 - rot))) & ((1 << 64) - 1)


def _arm_templates(rng: random.Random, slot: _Slot) -> dict:
    """One random assembly line per ARM decode arm."""
    mem_off = 8 * rng.randrange(8)
    return {
        "addsub_imm": lambda: (
            f"{rng.choice(['add', 'adds', 'sub', 'subs'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{rng.randrange(1 << 12)}"
        ),
        "addsub_reg": lambda: (
            f"{rng.choice(['add', 'adds', 'sub', 'subs'])} {_xr(rng)}, {_xr(rng)}, "
            f"{_xr(rng)}, {rng.choice(['lsl', 'lsr', 'asr'])} #{rng.randrange(64)}"
        ),
        "logical_reg": lambda: (
            f"{rng.choice(['and', 'orr', 'eor', 'ands', 'bic', 'orn', 'eon', 'bics'])} "
            f"{_xr(rng)}, {_xr(rng)}, {_xr(rng)}, "
            f"{rng.choice(['lsl', 'lsr', 'asr', 'ror'])} #{rng.randrange(64)}"
        ),
        "logical_imm": lambda: (
            f"{rng.choice(['and', 'orr', 'eor', 'ands'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{_bitmask_imm(rng):#x}"
        ),
        "movewide": lambda: (
            f"{rng.choice(['movn', 'movz', 'movk'])} {_xr(rng)}, "
            f"#{rng.randrange(1 << 16)}, lsl #{16 * rng.randrange(4)}"
        ),
        "bitfield": lambda: (
            f"{rng.choice(['ubfm', 'sbfm'])} {_xr(rng)}, {_xr(rng)}, "
            f"#{rng.randrange(64)}, #{rng.randrange(64)}"
        ),
        "csel": lambda: (
            f"{rng.choice(['csel', 'csinc', 'csinv', 'csneg'])} {_xr(rng)}, "
            f"{_xr(rng)}, {_xr(rng)}, {rng.choice(_CONDS)}"
        ),
        "ccmp": lambda: (
            f"{rng.choice(['ccmp', 'ccmn'])} {_xr(rng)}, "
            f"{rng.choice([f'#{rng.randrange(32)}', _xr(rng)])}, "
            f"#{rng.randrange(16)}, {rng.choice(_CONDS)}"
        ),
        "div": lambda: f"{rng.choice(['sdiv', 'udiv'])} {_xr(rng)}, {_xr(rng)}, {_xr(rng)}",
        "rbit": lambda: f"rbit {_xr(rng)}, {_xr(rng)}",
        "ldst_imm": lambda: rng.choice([
            f"ldr {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"str {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"ldrb {_wr_(rng)}, [{_xr(rng)}, #{rng.randrange(16)}]",
            f"strb {_wr_(rng)}, [{_xr(rng)}, #{rng.randrange(16)}]",
            f"ldrh {_wr_(rng)}, [{_xr(rng)}, #{2 * rng.randrange(8)}]",
            f"ldrsw {_xr(rng)}, [{_xr(rng)}, #{4 * rng.randrange(8)}]",
        ]),
        "ldst_reg": lambda: rng.choice([
            f"ldr {_xr(rng)}, [{_xr(rng)}, {_xr(rng)}]",
            f"str {_xr(rng)}, [{_xr(rng)}, {_xr(rng)}, lsl #3]",
            f"ldr {_wr_(rng)}, [{_xr(rng)}, {_wr_(rng)}, uxtw #2]",
            f"str {_wr_(rng)}, [{_xr(rng)}, {_wr_(rng)}, sxtw]",
        ]),
        "ldst_imm9": lambda: rng.choice([
            f"ldur {_xr(rng)}, [{_xr(rng)}, #{rng.randrange(-16, 16)}]",
            f"stur {_xr(rng)}, [{_xr(rng)}, #{rng.randrange(-16, 16)}]",
            f"ldr {_xr(rng)}, [{_xr(rng)}], #{8 * rng.randrange(-2, 3)}",
            f"str {_xr(rng)}, [{_xr(rng)}, #{8 * rng.randrange(-2, 3)}]!",
        ]),
        "ldst_pair": lambda: rng.choice([
            f"ldp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"stp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]",
            f"ldp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}], #{8 * rng.randrange(-2, 3)}",
            f"stp {_xr(rng)}, {_xr(rng)}, [{_xr(rng)}, #{mem_off}]!",
        ]),
        "adr": lambda: rng.choice([
            f"adr {_xr(rng)}, #{4 * rng.randrange(-64, 64)}",
            f"adrp {_xr(rng)}, #{4096 * rng.randrange(-8, 8)}",
        ]),
        "madd": lambda: (
            f"{rng.choice(['madd', 'msub'])} {_xr(rng)}, {_xr(rng)}, "
            f"{_xr(rng)}, {_xr(rng)}"
        ),
        "cbz": lambda: (
            f"{rng.choice(['cbz', 'cbnz'])} {_xr(rng)}, #{slot.branch_offset(rng)}"
        ),
        "tbz": lambda: (
            f"{rng.choice(['tbz', 'tbnz'])} {_xr(rng)}, #{rng.randrange(64)}, "
            f"#{slot.branch_offset(rng)}"
        ),
        "bcond": lambda: f"b.{rng.choice(_CONDS)} #{slot.branch_offset(rng)}",
        "b_bl": lambda: f"{rng.choice(['b', 'bl'])} #{slot.branch_offset(rng)}",
        "br_blr_ret": lambda: rng.choice([f"br {_xr(rng)}", f"blr {_xr(rng)}", "ret"]),
        "hint": lambda: rng.choice(["nop", f"hint #{rng.randrange(32)}"]),
        "sysreg": lambda: rng.choice([
            f"mrs {_xr(rng)}, {rng.choice(_SYSREGS)}",
            f"msr {rng.choice(_SYSREGS)}, {_xr(rng)}",
        ]),
        "hvc": lambda: (
            f"{rng.choice(['hvc', 'svc'])} #{rng.randrange(1 << 16)}"
        ),
    }


def _riscv_templates(rng: random.Random, slot: _Slot) -> dict:
    """One random assembly line per RISC-V decode arm."""
    mem_off = 8 * rng.randrange(-4, 4)
    return {
        "lui": lambda: f"lui {_tr(rng)}, {rng.randrange(1 << 20)}",
        "auipc": lambda: f"auipc {_tr(rng)}, {rng.randrange(1 << 20)}",
        "jal": lambda: f"jal {_tr(rng)}, {slot.branch_offset(rng)}",
        "jalr": lambda: f"jalr {_tr(rng)}, {8 * rng.randrange(-4, 4)}({_tr(rng)})",
        "branch": lambda: (
            f"{rng.choice(['beq', 'bne', 'blt', 'bge', 'bltu', 'bgeu'])} "
            f"{_tr(rng)}, {_tr(rng)}, {slot.branch_offset(rng)}"
        ),
        "load": lambda: (
            f"{rng.choice(['lb', 'lh', 'lw', 'ld', 'lbu', 'lhu', 'lwu'])} "
            f"{_tr(rng)}, {mem_off}({_tr(rng)})"
        ),
        "store": lambda: (
            f"{rng.choice(['sb', 'sh', 'sw', 'sd'])} {_tr(rng)}, {mem_off}({_tr(rng)})"
        ),
        "op_imm": lambda: rng.choice([
            f"{rng.choice(['addi', 'slti', 'sltiu', 'xori', 'ori', 'andi'])} "
            f"{_tr(rng)}, {_tr(rng)}, {rng.randrange(-2048, 2048)}",
            f"{rng.choice(['slli', 'srli', 'srai'])} {_tr(rng)}, {_tr(rng)}, "
            f"{rng.randrange(64)}",
        ]),
        "op_imm32": lambda: rng.choice([
            f"addiw {_tr(rng)}, {_tr(rng)}, {rng.randrange(-2048, 2048)}",
            f"{rng.choice(['slliw', 'srliw', 'sraiw'])} {_tr(rng)}, {_tr(rng)}, "
            f"{rng.randrange(32)}",
        ]),
        "op": lambda: (
            f"{rng.choice(['add', 'sub', 'sll', 'slt', 'sltu', 'xor', 'srl', 'sra', 'or', 'and'])} "
            f"{_tr(rng)}, {_tr(rng)}, {_tr(rng)}"
        ),
        "op32": lambda: (
            f"{rng.choice(['addw', 'subw', 'sllw', 'srlw', 'sraw'])} "
            f"{_tr(rng)}, {_tr(rng)}, {_tr(rng)}"
        ),
        "fence": lambda: "fence",
        "system": lambda: rng.choice([
            "ecall", "ebreak", "wfi", "mret",
            f"csrrw {_tr(rng)}, mscratch, {_tr(rng)}",
            f"csrrs {_tr(rng)}, mepc, {_tr(rng)}",
            f"csrrci {_tr(rng)}, mcause, {rng.randrange(32)}",
        ]),
    }


class ProgramGenerator:
    """Seeded generator of multi-block programs with coverage-biased arms."""

    #: Probability of steering a slot toward a low-coverage arm.
    BIAS = 0.5

    def __init__(self, arch: CosimArch, seed: int) -> None:
        self.arch = arch
        self.rng = random.Random(seed)
        self.coverage = CoverageMap(arch.name)
        self._templates = (
            _arm_templates if arch.name == "arm" else _riscv_templates
        )

    # -- single words -------------------------------------------------------

    def random_valid_word(self) -> int:
        """A decoder-accepted word by rejection sampling."""
        while True:
            word = self.rng.getrandbits(32)
            try:
                self.arch.decode.disassemble(word)
                return word
            except self.arch.decode.UnknownInstruction:
                continue

    def word_for_arm(self, arm: str, slot: _Slot) -> int | None:
        """A word decoding to ``arm``, via the directed template (a few
        retries absorb operand combinations the assembler rejects)."""
        for _ in range(8):
            template = self._templates(self.rng, slot).get(arm)
            if template is None:
                return None
            try:
                word = self.arch.asm.assemble_line(template())
            except self.arch.asm.AsmError:
                continue
            if self.arch.decode.decode_arm(word) == arm:
                return word
        return None

    # -- whole programs -----------------------------------------------------

    def program(self, min_words: int = 3, max_words: int = 10) -> GeneratedProgram:
        """One random program plus a start state in the comparable domain."""
        length = self.rng.randrange(min_words, max_words + 1)
        words: list[int] = []
        arms: list[str] = []
        for index in range(length):
            slot = _Slot(index=index, length=length)
            word = None
            if self.rng.random() < self.BIAS:
                word = self.word_for_arm(self.rng.choice(self.coverage.lowest()), slot)
            if word is None:
                word = self.random_valid_word()
            arm = self.arch.decode.decode_arm(word)
            self.coverage.record(arm)
            words.append(word)
            arms.append(arm)
        case = random_case(self.arch, self.rng, words)
        return GeneratedProgram(case=case, arms=arms)
