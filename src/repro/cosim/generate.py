"""Seeded random program generation with decode-arm coverage bias.

The generator assembles short multi-block programs through the existing
per-architecture assemblers (``arch/*/asm.py``) — one directed template
family per decode arm — mixed with decoder-filtered random words, and
keeps a per-arm :class:`CoverageMap`.  Arm selection is biased toward the
arms with the *lowest* counters, so long co-sim runs converge to uniform
coverage of the decoder instead of piling onto the dense encodings.

Branch-family templates pick targets *inside* the program (forward-biased
so generated programs usually terminate), which is what makes the output
multi-block rather than straight-line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..arch import registry
from .archs import CosimArch, decode_arm_names
from .state import ProgramCase, random_case


class CoverageMap:
    """Per-decode-arm hit counters for one architecture."""

    def __init__(self, arch_name: str) -> None:
        self.arch_name = arch_name
        self.counts: dict[str, int] = {name: 0 for name in decode_arm_names(arch_name)}

    def record(self, arm: str) -> None:
        self.counts[arm] = self.counts.get(arm, 0) + 1

    def merge(self, other: "CoverageMap") -> None:
        for arm, count in other.counts.items():
            self.counts[arm] = self.counts.get(arm, 0) + count

    def unhit(self) -> list[str]:
        return sorted(arm for arm, count in self.counts.items() if count == 0)

    def fraction_hit(self) -> float:
        if not self.counts:
            return 1.0
        hit = sum(1 for count in self.counts.values() if count > 0)
        return hit / len(self.counts)

    def lowest(self, k: int = 4) -> list[str]:
        """The ``k`` arms with the fewest hits (the bias targets)."""
        return sorted(self.counts, key=lambda arm: self.counts[arm])[:k]

    def to_json(self) -> dict:
        return {
            "arch": self.arch_name,
            "counts": dict(sorted(self.counts.items())),
            "fraction_hit": round(self.fraction_hit(), 4),
            "unhit": self.unhit(),
        }


@dataclass
class GeneratedProgram:
    """One generated program: its words, per-word decode arms, start state."""

    case: ProgramCase
    arms: list[str] = field(default_factory=list)

    @property
    def words(self) -> list[int]:
        return self.case.words


@dataclass
class _Slot:
    """Template context: which word of how many we are emitting."""

    index: int
    length: int

    def branch_offset(self, rng: random.Random, scale: int = 4) -> int:
        """A branch displacement landing on a program slot, forward-biased."""
        if self.index + 1 < self.length and rng.random() < 0.8:
            target = rng.randrange(self.index + 1, self.length)
        else:
            target = rng.randrange(self.length)
        return (target - self.index) * scale


class ProgramGenerator:
    """Seeded generator of multi-block programs with coverage-biased arms."""

    #: Probability of steering a slot toward a directed template; directed
    #: slots split evenly between low-coverage arms and a uniform draw, so
    #: dense encodings (whose counters random words keep pumping) still get
    #: template-quality operands instead of only uniform-random ones.
    BIAS = 0.5

    def __init__(self, arch: CosimArch, seed: int) -> None:
        self.arch = arch
        self.rng = random.Random(seed)
        self.coverage = CoverageMap(arch.name)
        self._arm_names = sorted(self.coverage.counts)
        self._templates = registry.get(arch.name).templates().cosim_templates

    # -- single words -------------------------------------------------------

    def random_valid_word(self) -> int:
        """A decoder-accepted word by rejection sampling."""
        while True:
            word = self.rng.getrandbits(32)
            try:
                self.arch.decode.disassemble(word)
                return word
            except self.arch.decode.UnknownInstruction:
                continue

    def word_for_arm(self, arm: str, slot: _Slot) -> int | None:
        """A word decoding to ``arm``, via the directed template (a few
        retries absorb operand combinations the assembler rejects)."""
        for _ in range(8):
            template = self._templates(self.rng, slot).get(arm)
            if template is None:
                return None
            try:
                word = self.arch.asm.assemble_line(template())
            except self.arch.asm.AsmError:
                continue
            if self.arch.decode.decode_arm(word) == arm:
                return word
        return None

    # -- whole programs -----------------------------------------------------

    def program(self, min_words: int = 3, max_words: int = 10) -> GeneratedProgram:
        """One random program plus a start state in the comparable domain."""
        length = self.rng.randrange(min_words, max_words + 1)
        words: list[int] = []
        arms: list[str] = []
        for index in range(length):
            slot = _Slot(index=index, length=length)
            word = None
            if self.rng.random() < self.BIAS:
                pool = (
                    self.coverage.lowest()
                    if self.rng.random() < 0.5
                    else self._arm_names
                )
                word = self.word_for_arm(self.rng.choice(pool), slot)
            if word is None:
                word = self.random_valid_word()
            arm = self.arch.decode.decode_arm(word)
            self.coverage.record(arm)
            words.append(word)
            arms.append(arm)
        case = random_case(self.arch, self.rng, words)
        return GeneratedProgram(case=case, arms=arms)
