"""Lockstep co-simulation driver with divergence shrinking.

For every generated case the driver steps the fast interpreter and the
concrete ITL operational semantics (the authoritative side) from the same
start state, one instruction at a time, and diffs registers, memory, and
visible MMIO labels after every step.  Any mismatch is a
:class:`Divergence`; the shrinker then delta-debugs the program (words →
NOPs, truncation) and the start state (memory, registers) while preserving
the divergence *signature* — the shape of the first differing observable —
and the minimized reproducer can be appended to the conformance corpus.

Traces come from the same Isla pipeline the proof stack uses
(``trace_for_opcode`` under the architecture's pinned assumptions) and
are cached per opcode behind a lock, so daemon runner threads can share
one driver process.  Only exhaustive enumerations are eligible for
replay from arbitrary states.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..arch import registry
from ..isla import IslaError, trace_for_opcode
from ..itl.opsem import Discarded, Failure, Runner
from .archs import COSIM_ARCHS, CosimArch
from .generate import CoverageMap, ProgramGenerator
from .interp import CosimDomainError, CosimUnsupported, interp_for
from .state import ProgramCase, build_machine_state, diff_states

#: ``(arch_name, opcode) -> Trace | None`` — None caches "out of scope".
_TRACE_CACHE: dict[tuple[str, int], object] = {}
_TRACE_LOCK = threading.Lock()


def cached_trace(arch: CosimArch, opcode: int):
    """The exhaustive ITL trace for ``opcode``, or None when out of scope.

    Generation happens at most once per opcode across all threads; replay
    of the returned trace is pure, so the cached object is shared freely.
    """
    key = (arch.name, opcode)
    try:
        return _TRACE_CACHE[key]
    except KeyError:
        pass
    with _TRACE_LOCK:
        if key not in _TRACE_CACHE:
            try:
                result = trace_for_opcode(arch.model, opcode, arch.assumptions())
                trace = result.trace if result.exhausted is None else None
            except IslaError:
                trace = None
            _TRACE_CACHE[key] = trace
        return _TRACE_CACHE[key]


@dataclass
class Divergence:
    """A minimized witness that the two executors disagree."""

    arch: str
    case: ProgramCase
    step: int
    pc: int
    opcode: int
    arm: str
    details: list[str]

    @property
    def signature(self) -> str:
        """The shape of the first differing observable (``register R3
        diverges`` / ``memory 0x5008 diverges`` / ``labels diverge`` /
        ``itl-bottom``); this is what the shrinker preserves."""
        return self.details[0].split(":", 1)[0] if self.details else ""

    def to_json(self) -> dict:
        return {
            "kind": "cosim",
            "arch": self.arch,
            "case": self.case.to_json(),
            "step": self.step,
            "pc": hex(self.pc),
            "opcode": hex(self.opcode),
            "arm": self.arm,
            "reason": self.details[0] if self.details else "",
        }


@dataclass
class BatchReport:
    """Counters for one co-simulation batch."""

    arch: str
    seed: int
    cases: int = 0
    instructions: int = 0
    skips: int = 0
    trace_misses: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    coverage: CoverageMap | None = None
    elapsed_s: float = 0.0

    def to_json(self) -> dict:
        return {
            "arch": self.arch,
            "seed": self.seed,
            "cases": self.cases,
            "instructions": self.instructions,
            "skips": self.skips,
            "trace_misses": self.trace_misses,
            "divergences": [d.to_json() for d in self.divergences],
            "coverage": self.coverage.to_json() if self.coverage else None,
            "elapsed_s": round(self.elapsed_s, 3),
        }


class CoSimDriver:
    """Steps the fast interpreter against the ITL opsem in lockstep."""

    def __init__(
        self,
        arch: CosimArch,
        defect: str | None = None,
        max_steps: int = 48,
    ) -> None:
        self.arch = arch
        self.defect = defect
        self.max_steps = max_steps

    # -- one case -----------------------------------------------------------

    def run_case(self, case: ProgramCase) -> tuple[Divergence | None, dict]:
        """Run one case to completion; returns ``(divergence, counters)``.

        The case ends without divergence when: the PC leaves the program,
        the pinned-register domain is escaped (the ITL traces are only
        authoritative inside it), the next opcode has no exhaustive trace,
        or the interpreter declares the encoding unsupported/out of domain.
        """
        counters = {"instructions": 0, "skips": 0, "trace_misses": 0, "arms": []}
        interp_state = build_machine_state(self.arch, case)
        itl_state = interp_state.copy()
        interp = interp_for(self.arch, interp_state, defect=self.defect)
        pc_reg = self.arch.model.pc_reg
        code_end = case.pc + 4 * len(case.words)

        for step in range(self.max_steps):
            if not self.arch.pins_hold(itl_state):
                break
            pc = itl_state.read_reg(pc_reg)
            if pc is None or not (case.pc <= pc < code_end) or pc % 4:
                break
            opcode = itl_state.read_mem(pc, 4)
            try:
                arm = self.arch.decode.decode_arm(opcode)
            except self.arch.decode.UnknownInstruction:
                break
            trace = cached_trace(self.arch, opcode)
            if trace is None:
                counters["trace_misses"] += 1
                break

            labels_before = len(interp.labels)
            try:
                interp.step()
            except (CosimUnsupported, CosimDomainError):
                counters["skips"] += 1
                break

            runner = Runner(itl_state)
            try:
                runner.run_trace(trace)
            except (Failure, Discarded) as exc:
                reason = getattr(exc, "reason", "discarded")
                return (
                    Divergence(
                        arch=self.arch.name, case=case, step=step, pc=pc,
                        opcode=opcode, arm=arm,
                        details=[f"itl-bottom: ITL replay reached ⊥ ({reason})"],
                    ),
                    counters,
                )
            itl_state = runner.state

            diff = diff_states(
                interp.state, itl_state,
                interp.labels[labels_before:], runner.labels,
            )
            if diff:
                return (
                    Divergence(
                        arch=self.arch.name, case=case, step=step, pc=pc,
                        opcode=opcode, arm=arm, details=diff,
                    ),
                    counters,
                )
            counters["instructions"] += 1
            counters["arms"].append(arm)
        return None, counters

    # -- shrinking ----------------------------------------------------------

    def _diverges_like(self, case: ProgramCase, signature: str) -> bool:
        divergence, _ = self.run_case(case)
        return divergence is not None and divergence.signature == signature

    def shrink(self, case: ProgramCase, divergence: Divergence) -> ProgramCase:
        """Greedy delta-debug of program and state, re-verifying after
        *every* reduction that the original divergence signature still
        reproduces (a reduction that merely fails differently is rejected)."""
        signature = divergence.signature
        current = case.copy()
        nop = registry.get(self.arch.name).nop

        # 1. Truncate the program after the diverging step's reach.
        for length in range(1, len(current.words)):
            candidate = current.copy()
            candidate.words = candidate.words[:length]
            if self._diverges_like(candidate, signature):
                current = candidate
                break

        # 2. Delete words one at a time, repeat to fixpoint.  Deletion
        #    shifts later words down (relative branch displacements keep
        #    their in-program targets); the signature re-check rejects any
        #    deletion that changes what fails, so this stays sound even
        #    for programs with absolute-target branches (bclr/bcctr).
        changed = True
        while changed:
            changed = False
            i = 0
            while i < len(current.words):
                candidate = current.copy()
                del candidate.words[i]
                if candidate.words and self._diverges_like(candidate, signature):
                    current = candidate
                    changed = True
                else:
                    i += 1

        # 3. Replace words with NOPs, one at a time, repeat to fixpoint.
        changed = True
        while changed:
            changed = False
            for i, word in enumerate(current.words):
                if word == nop:
                    continue
                candidate = current.copy()
                candidate.words[i] = nop
                if self._diverges_like(candidate, signature):
                    current = candidate
                    changed = True

        # 4. Drop the data memory window entirely if possible.
        candidate = current.copy()
        candidate.mem = {}
        if self._diverges_like(candidate, signature):
            current = candidate

        # 5. Minimise registers: delete, then 0, then 1.
        for name in sorted(current.regs):
            if name in self.arch.pins:
                continue
            for value in (None, 0, 1):
                candidate = current.copy()
                del candidate.regs[name]
                if value is not None:
                    candidate.regs[name] = value
                if self._diverges_like(candidate, signature):
                    current = candidate
                    break
        return current

    # -- batches ------------------------------------------------------------

    def run_batch(
        self,
        seed: int,
        count: int,
        shrink: bool = True,
        max_divergences: int = 10,
    ) -> BatchReport:
        """Generate and run ``count`` cases; shrink any divergences found."""
        start = time.monotonic()
        generator = ProgramGenerator(self.arch, seed)
        executed = CoverageMap(self.arch.name)
        report = BatchReport(arch=self.arch.name, seed=seed, coverage=executed)
        for _ in range(count):
            program = generator.program()
            divergence, counters = self.run_case(program.case)
            report.cases += 1
            report.instructions += counters["instructions"]
            report.skips += counters["skips"]
            report.trace_misses += counters["trace_misses"]
            for arm in counters["arms"]:
                executed.record(arm)
            if divergence is not None:
                if shrink:
                    shrunk = self.shrink(program.case, divergence)
                    redo, _ = self.run_case(shrunk)
                    if redo is not None:
                        divergence = redo
                report.divergences.append(divergence)
                if len(report.divergences) >= max_divergences:
                    break
        report.elapsed_s = time.monotonic() - start
        return report


def record_reproducer(divergence: Divergence, corpus_dir: Path | str) -> Path:
    """Append a minimized co-sim reproducer to the conformance corpus."""
    path = Path(corpus_dir) / f"{divergence.arch}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(divergence.to_json()) + "\n")
    return path


def run_service_batch(
    arch_name: str,
    seed: int = 0,
    count: int = 50,
    defect: str | None = None,
    max_steps: int = 48,
    shrink: bool = True,
) -> dict:
    """Daemon entry point: one co-sim batch as a JSON-able result payload."""
    arch = COSIM_ARCHS[arch_name]
    driver = CoSimDriver(arch, defect=defect, max_steps=max_steps)
    report = driver.run_batch(seed=seed, count=count, shrink=shrink)
    payload = report.to_json()
    payload["outcome"] = "pass" if not report.divergences else "divergence"
    return payload
