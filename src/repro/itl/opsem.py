"""Operational semantics of the Isla trace language (Fig. 10).

The semantics is a labelled transition system over configurations: either a
pair ⟨t, Σ⟩ of trace and machine state, or the final configurations ⊤
(success / execution discarded) and ⊥ (failure).  It is *non-deterministic*:
``DeclareConst`` picks an arbitrary value of the right type, ``Cases`` picks
a subtrace, and those picks are later *restricted* by ``ReadReg`` /
``Assert`` events — picks that violate them end in ⊤ and need not be
considered (step-read-reg-neq, step-assert-false).

:class:`Runner` executes the semantics concretely.  It resolves the
non-determinism *angelically but mechanically*:

- a symbolic constant stays unbound until the first constraining event
  (``ReadReg``/``ReadMem``) pins it — exactly the executions that survive
  (all other picks reach ⊤ immediately, so omitting them is faithful);
- ``Cases`` is resolved by speculative execution with rollback: subtraces
  whose ``Assert`` fails end in ⊤ and are discarded;
- reads from unmapped memory consult a *device* oracle and emit the visible
  label R(a, v), writes emit W(a, v)  (step-read/write-mem-event);
- falling off the instruction map emits E(a) and stops (step-nil-end).

Reaching ⊥ (a violated ``Assume``/``AssumeReg``, a partially-mapped access,
or a stuck expression) raises :class:`Failure` — this is precisely what a
successful Islaris verification rules out (Theorem 1).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable

from ..smt import Term, evaluate
from ..smt.interp import EvalError
from ..smt.sorts import BitVecSort
from . import events as E
from .events import Label, LabelEnd, LabelRead, LabelWrite
from .machine import MachineState
from .trace import Trace


class Failure(Exception):
    """The configuration stepped to ⊥."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


#: Traces that already passed the pre-replay well-formedness check.  Keyed
#: by value (Trace is a frozen dataclass), so structurally equal traces
#: share a verdict; weak so the memo never outlives the traces.
_wf_checked: "weakref.WeakSet[Trace]" = weakref.WeakSet()


def _check_wellformed(trace: Trace) -> None:
    """Reject an ill-formed trace before replaying it (⊥, not a crash).

    The operational semantics only makes sense over well-formed traces; an
    ill-sorted term or SSA violation would otherwise surface as a stuck
    expression deep inside ``evaluate``.  Skipped under ``python -O`` /
    ``REPRO_WF_CHECK=0``, memoised per trace otherwise.
    """
    from ..analysis.wellformed import debug_checks_enabled, is_wellformed

    if not debug_checks_enabled() or trace in _wf_checked:
        return
    if not is_wellformed(trace):
        from ..analysis.wellformed import check_trace

        first = next(iter(check_trace(trace)), None)
        raise Failure(
            "ill-formed trace: " + (first.render() if first else "unknown")
        )
    _wf_checked.add(trace)


class Discarded(Exception):
    """The configuration stepped to ⊤ (internal control flow of the runner)."""


@dataclass
class RunResult:
    """Outcome of running the operational semantics.

    status is one of:
      - ``"end"``: stopped with E(a) after leaving the instruction map,
      - ``"discarded"``: the execution reached ⊤ mid-instruction,
      - ``"fuel"``: the step budget ran out (still running).
    """

    status: str
    labels: list[Label]
    instructions: int
    events: int


DeviceFn = Callable[[int, int], int]


def _default_device(addr: int, nbytes: int) -> int:
    return 0


@dataclass
class Runner:
    """Concrete executor for ITL machine configurations."""

    state: MachineState
    device: DeviceFn = _default_device
    labels: list[Label] = field(default_factory=list)
    instructions: int = 0
    events: int = 0

    # -- top level ----------------------------------------------------------

    def run(self, max_instructions: int = 10_000) -> RunResult:
        """Run ⟨[], Σ⟩ —*→ until E(a), ⊤, or the fuel runs out."""
        while self.instructions < max_instructions:
            pc = self.state.read_reg(self.state.pc_reg)
            if pc is None:
                raise Failure("PC register unmapped")
            trace = self.state.instr_at(pc)
            if trace is None:
                self.labels.append(LabelEnd(pc))  # step-nil-end
                return self._result("end")
            self.instructions += 1
            try:
                self.run_trace(trace)
            except Discarded:
                return self._result("discarded")
        return self._result("fuel")

    def _result(self, status: str) -> RunResult:
        return RunResult(status, list(self.labels), self.instructions, self.events)

    # -- one trace -------------------------------------------------------------

    def run_trace(self, trace: Trace, env: dict[Term, object] | None = None) -> None:
        """Execute one instruction trace to completion (⟨t,Σ⟩ —*→ ⟨[],Σ'⟩).

        Raises :class:`Failure` for ⊥ and :class:`Discarded` for ⊤.
        """
        if env is None:
            # Top-level entry (sub-case replays share their parent's env
            # and were covered by the parent's check).
            _check_wellformed(trace)
            env = {}
        for idx, event in enumerate(trace.events):
            self.events += 1
            self._step(event, env)
        if trace.cases is not None:
            self._run_cases(trace.cases, env)

    def _run_cases(self, cases: tuple[Trace, ...], env: dict[Term, object]) -> None:
        # step-cases: try subtraces in order; ⊤ outcomes are discarded and the
        # next subtrace is tried (they are unreachable executions).  ⊥
        # propagates: the verification must rule it out on *every* branch.
        for sub in cases:
            saved_state = self.state.copy()
            saved_labels = list(self.labels)
            saved_env = dict(env)
            try:
                self.run_trace(sub, env)
                return
            except Discarded:
                self.state = saved_state
                self.labels = saved_labels
                env.clear()
                env.update(saved_env)
        raise Discarded  # every subtrace ended in ⊤

    # -- single events ------------------------------------------------------------

    def _step(self, event: E.Event, env: dict[Term, object]) -> None:
        if isinstance(event, E.DeclareConst):
            # step-declare-const: value chosen lazily (see module docstring).
            return
        if isinstance(event, E.DefineConst):
            env[event.var] = self._eval(event.expr, env)
            return
        if isinstance(event, E.ReadReg):
            actual = self.state.read_reg(event.reg)
            if actual is None:
                raise Failure(f"read of unmapped register {event.reg}")
            self._constrain(event.value, actual, env, f"ReadReg {event.reg}")
            return
        if isinstance(event, E.WriteReg):
            self.state.write_reg(event.reg, self._eval(event.value, env))
            return
        if isinstance(event, E.AssumeReg):
            actual = self.state.read_reg(event.reg)
            expected = self._eval(event.value, env)
            if actual is None or actual != expected:
                # step-fail: AssumeReg only steps when R[r] = v.
                raise Failure(
                    f"AssumeReg {event.reg}: machine has {actual!r}, "
                    f"Isla assumed {expected!r}"
                )
            return
        if isinstance(event, E.Assert):
            value = self._eval(event.expr, env)
            if not value:
                raise Discarded  # step-assert-false -> ⊤
            return
        if isinstance(event, E.Assume):
            value = self._eval(event.expr, env)
            if not value:
                raise Failure("Assume violated")  # step-fail -> ⊥
            return
        if isinstance(event, E.ReadMem):
            addr = self._eval(event.addr, env)
            n = event.nbytes
            if self.state.mem_mapped(addr, n):
                actual = self.state.read_mem(addr, n)
                self._constrain(event.data, actual, env, f"ReadMem 0x{addr:x}")
            elif self.state.mem_unmapped(addr, n):
                data = self.device(addr, n) & ((1 << (8 * n)) - 1)
                self._constrain(event.data, data, env, f"MMIO read 0x{addr:x}")
                self.labels.append(LabelRead(addr, data, n))
            else:
                raise Failure(f"partially mapped read at 0x{addr:x}")
            return
        if isinstance(event, E.WriteMem):
            addr = self._eval(event.addr, env)
            data = self._eval(event.data, env)
            n = event.nbytes
            if self.state.mem_mapped(addr, n):
                self.state.write_mem(addr, data, n)
            elif self.state.mem_unmapped(addr, n):
                self.labels.append(LabelWrite(addr, data, n))
            else:
                raise Failure(f"partially mapped write at 0x{addr:x}")
            return
        raise Failure(f"unknown event {event!r}")

    # -- helpers --------------------------------------------------------------------

    def _eval(self, expr: Term, env: dict[Term, object]):
        try:
            return evaluate(expr, env)
        except EvalError as exc:
            raise Failure(f"stuck expression: {exc}") from exc

    def _constrain(self, value_term: Term, actual, env: dict[Term, object], what: str):
        """Impose ``value_term = actual``.

        If the term is an unbound variable, bind it (the surviving pick of
        step-declare-const); otherwise evaluate and compare — a mismatch is
        step-read-*-neq, i.e. ⊤.
        """
        if value_term.is_var() and value_term not in env:
            if isinstance(value_term.sort, BitVecSort):
                actual_int = int(actual)
                env[value_term] = actual_int & ((1 << value_term.sort.width) - 1)
            else:
                env[value_term] = bool(actual)
            return
        try:
            expected = evaluate(value_term, env)
        except EvalError:
            # A compound term with unbound vars: the general semantics would
            # solve for them; Isla traces constrain fresh vars directly, so
            # reaching this means the trace is malformed for concrete runs.
            raise Failure(f"{what}: cannot resolve {value_term!r}") from None
        if expected != actual:
            raise Discarded  # step-read-*-neq -> ⊤
