"""Concrete syntax for ITL traces, matching the paper's Fig. 3 / Fig. 6.

Example output for ``add sp, sp, 64``::

    (trace
      (assume-reg |PSTATE| ((_ field |EL|)) #b10)
      (declare-const v38 (_ BitVec 64))
      (read-reg |SP_EL2| nil v38)
      (define-const v61 (bvadd v38 #x0000000000000040))
      (write-reg |SP_EL2| nil v61)
      ...)
"""

from __future__ import annotations

from ..smt.smtlib import term_to_sexpr
from ..smt.sorts import BitVecSort, Sort
from . import events as E
from .events import Reg
from .trace import Trace


def reg_to_sexpr(reg: Reg) -> str:
    if reg.field is None:
        return f"|{reg.base}| nil"
    return f"|{reg.base}| ((_ field |{reg.field}|))"


def sort_to_sexpr(sort: Sort) -> str:
    if isinstance(sort, BitVecSort):
        return f"(_ BitVec {sort.width})"
    return "Bool"


def event_to_sexpr(event: E.Event) -> str:
    if isinstance(event, E.ReadReg):
        return f"(read-reg {reg_to_sexpr(event.reg)} {term_to_sexpr(event.value)})"
    if isinstance(event, E.WriteReg):
        return f"(write-reg {reg_to_sexpr(event.reg)} {term_to_sexpr(event.value)})"
    if isinstance(event, E.AssumeReg):
        return f"(assume-reg {reg_to_sexpr(event.reg)} {term_to_sexpr(event.value)})"
    if isinstance(event, E.ReadMem):
        return (
            f"(read-mem {term_to_sexpr(event.data)} {term_to_sexpr(event.addr)}"
            f" {event.nbytes})"
        )
    if isinstance(event, E.WriteMem):
        return (
            f"(write-mem {term_to_sexpr(event.addr)} {term_to_sexpr(event.data)}"
            f" {event.nbytes})"
        )
    if isinstance(event, E.DeclareConst):
        return f"(declare-const {event.var.name} {sort_to_sexpr(event.sort)})"
    if isinstance(event, E.DefineConst):
        return f"(define-const {event.var.name} {term_to_sexpr(event.expr)})"
    if isinstance(event, E.Assert):
        return f"(assert {term_to_sexpr(event.expr)})"
    if isinstance(event, E.Assume):
        return f"(assume {term_to_sexpr(event.expr)})"
    raise TypeError(f"unknown event {event!r}")


def trace_to_sexpr(trace: Trace, indent: int = 0) -> str:
    pad = "  " * indent
    lines = [f"{pad}(trace"]
    body = _body_lines(trace, indent + 1)
    if body:
        lines.extend(body)
        lines[-1] += ")"
    else:
        lines[-1] += ")"
    return "\n".join(lines)


def _body_lines(trace: Trace, indent: int) -> list[str]:
    pad = "  " * indent
    lines = [f"{pad}{event_to_sexpr(j)}" for j in trace.events]
    if trace.cases is not None:
        lines.append(f"{pad}(cases")
        for sub in trace.cases:
            lines.append(trace_to_sexpr(sub, indent + 1))
        lines[-1] += ")"
    return lines
