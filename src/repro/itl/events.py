"""Events of the Isla trace language (Fig. 4 of the paper).

..  code-block:: text

    j ::= ReadReg(r, v) | WriteReg(r, v)
        | ReadMem(vd, va, n) | WriteMem(va, vd, n)
        | AssumeReg(r, v) | DeclareConst(x, τ)
        | DefineConst(x, e) | Assert(e) | Assume(e)

Register names ``r`` are either a plain register ``ρ`` or a field access
``ρ.f`` (used for PSTATE fields on Arm).  Values and expressions are SMT
terms from :mod:`repro.smt`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smt import Term
from ..smt.sorts import Sort


@dataclass(frozen=True, slots=True)
class Reg:
    """A register name, optionally with a struct field (``PSTATE.EL``)."""

    base: str
    field: str | None = None

    def __str__(self) -> str:
        return self.base if self.field is None else f"{self.base}.{self.field}"

    @staticmethod
    def parse(text: str) -> "Reg":
        base, _, f = text.partition(".")
        return Reg(base, f or None)


class Event:
    """Base class for ITL events."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class ReadReg(Event):
    """``ReadReg(r, v)``: the value of ``r`` was observed to be ``v``.

    In the operational semantics this *constrains* ``v`` (the read refuses to
    proceed when the machine's value differs), reflecting the constraint-based
    nature of Isla traces.
    """

    reg: Reg
    value: Term


@dataclass(frozen=True, slots=True)
class WriteReg(Event):
    """``WriteReg(r, v)``: register ``r`` is updated to ``v``."""

    reg: Reg
    value: Term


@dataclass(frozen=True, slots=True)
class ReadMem(Event):
    """``ReadMem(vd, va, n)``: an ``n``-byte read at address ``va`` observed
    data ``vd`` (little-endian)."""

    data: Term
    addr: Term
    nbytes: int


@dataclass(frozen=True, slots=True)
class WriteMem(Event):
    """``WriteMem(va, vd, n)``: an ``n``-byte write of ``vd`` at ``va``."""

    addr: Term
    data: Term
    nbytes: int


@dataclass(frozen=True, slots=True)
class AssumeReg(Event):
    """``AssumeReg(r, v)``: Isla assumed ``r = v`` while pruning the model.

    The verification must *prove* this (the opsem goes to ⊥ otherwise).
    """

    reg: Reg
    value: Term


@dataclass(frozen=True, slots=True)
class DeclareConst(Event):
    """``DeclareConst(x, τ)``: introduce a fresh symbolic constant."""

    var: Term  # a VAR term
    sort: Sort


@dataclass(frozen=True, slots=True)
class DefineConst(Event):
    """``DefineConst(x, e)``: name the value of expression ``e``."""

    var: Term  # a VAR term
    expr: Term


@dataclass(frozen=True, slots=True)
class Assert(Event):
    """``Assert(e)``: proven by Isla during symbolic execution, an
    *assumption* for the verifier (⊤ when false)."""

    expr: Term


@dataclass(frozen=True, slots=True)
class Assume(Event):
    """``Assume(e)``: assumed by Isla, an *obligation* for the verifier
    (⊥ when false)."""

    expr: Term


# Externally visible labels κ (Fig. 10): MMIO reads/writes and termination.


@dataclass(frozen=True, slots=True)
class LabelRead:
    """κ = R(a, v): read of ``v`` from unmapped (device) memory at ``a``."""

    addr: int
    data: int
    nbytes: int

    def __str__(self) -> str:
        return f"R(0x{self.addr:x}, 0x{self.data:x}, {self.nbytes})"


@dataclass(frozen=True, slots=True)
class LabelWrite:
    """κ = W(a, v): write of ``v`` to unmapped (device) memory at ``a``."""

    addr: int
    data: int
    nbytes: int

    def __str__(self) -> str:
        return f"W(0x{self.addr:x}, 0x{self.data:x}, {self.nbytes})"


@dataclass(frozen=True, slots=True)
class LabelEnd:
    """κ = E(a): execution left the instruction map at address ``a``."""

    addr: int

    def __str__(self) -> str:
        return f"E(0x{self.addr:x})"


Label = LabelRead | LabelWrite | LabelEnd
