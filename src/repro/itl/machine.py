"""Machine configurations for the ITL operational semantics.

A machine state Σ is a triple ``(R, I, M)`` of finite partial maps (Fig. 10):

- ``R : Reg ⇀ Val`` — register values (concrete ints/bools here),
- ``I : Addr ⇀ Trace`` — the *instruction map*, assigning an ITL trace to
  each address holding an instruction,
- ``M : Addr ⇀ Byte`` — byte memory.

Addresses are 64-bit integers.  Reads/writes of unmapped memory are visible
events (memory-mapped IO), so ``M`` deliberately stays partial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import Reg
from .trace import Trace

ADDR_BITS = 64
ADDR_MASK = (1 << ADDR_BITS) - 1


@dataclass
class MachineState:
    """Σ = (R, I, M) with concrete values."""

    regs: dict[Reg, object] = field(default_factory=dict)
    instrs: dict[int, Trace] = field(default_factory=dict)
    mem: dict[int, int] = field(default_factory=dict)
    pc_reg: Reg = field(default_factory=lambda: Reg("_PC"))

    # -- registers -----------------------------------------------------------

    def read_reg(self, reg: Reg):
        """R[r], or None when unmapped."""
        return self.regs.get(reg)

    def write_reg(self, reg: Reg, value) -> None:
        self.regs[reg] = value

    # -- memory ----------------------------------------------------------------

    def mem_mapped(self, addr: int, nbytes: int) -> bool:
        """Is the whole range [addr, addr+nbytes) backed by M?"""
        return all(((addr + i) & ADDR_MASK) in self.mem for i in range(nbytes))

    def mem_unmapped(self, addr: int, nbytes: int) -> bool:
        """Is the whole range outside M?  (Partial overlap is a fault.)"""
        return all(((addr + i) & ADDR_MASK) not in self.mem for i in range(nbytes))

    def read_mem(self, addr: int, nbytes: int) -> int:
        """Little-endian read of a mapped range (Σ[a..a+n])."""
        value = 0
        for i in range(nbytes):
            value |= self.mem[(addr + i) & ADDR_MASK] << (8 * i)
        return value

    def write_mem(self, addr: int, value: int, nbytes: int) -> None:
        """Little-endian write (enc(b) in the paper)."""
        for i in range(nbytes):
            self.mem[(addr + i) & ADDR_MASK] = (value >> (8 * i)) & 0xFF

    def load_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.mem[(addr + i) & ADDR_MASK] = byte

    # -- instruction map ----------------------------------------------------------

    def instr_at(self, addr: int) -> Trace | None:
        return self.instrs.get(addr & ADDR_MASK)

    def set_instr(self, addr: int, trace: Trace) -> None:
        self.instrs[addr & ADDR_MASK] = trace

    def copy(self) -> "MachineState":
        return MachineState(
            dict(self.regs), dict(self.instrs), dict(self.mem), self.pc_reg
        )
