"""Traces: trees of ITL events.

..  code-block:: text

    t ::= [] | j :: t | Cases(t1, ..., tn)

A :class:`Trace` is a (possibly empty) sequence of events, optionally ending
in a :class:`Cases` branch node whose children are themselves traces.  This
mirrors the paper's grammar exactly: ``Cases`` can only appear in tail
position, which is how Isla emits intra-instruction branching (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..smt import Term, substitute
from . import events as E
from .events import Event


@dataclass(frozen=True)
class Trace:
    """A linear spine of events with an optional Cases tail."""

    events: tuple[Event, ...] = ()
    cases: tuple["Trace", ...] | None = None

    def __post_init__(self) -> None:
        if self.cases is not None and len(self.cases) == 0:
            raise ValueError("Cases must have at least one subtrace")

    # -- construction -------------------------------------------------------

    @staticmethod
    def lin(*events: Event) -> "Trace":
        """A linear trace of the given events."""
        return Trace(tuple(events))

    @staticmethod
    def branch(*subtraces: "Trace") -> "Trace":
        """A bare ``Cases`` node."""
        return Trace((), tuple(subtraces))

    def then_cases(self, *subtraces: "Trace") -> "Trace":
        if self.cases is not None:
            raise ValueError("trace already ends in Cases")
        return Trace(self.events, tuple(subtraces))

    def prepend(self, *events: Event) -> "Trace":
        return Trace(tuple(events) + self.events, self.cases)

    def concat(self, other: "Trace") -> "Trace":
        """Append ``other`` after this trace (distributes over Cases)."""
        if self.cases is None:
            return Trace(self.events + other.events, other.cases)
        return Trace(self.events, tuple(c.concat(other) for c in self.cases))

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events and self.cases is None

    def num_events(self) -> int:
        """Total number of events in the tree (the paper's 'ITL size')."""
        n = len(self.events)
        if self.cases is not None:
            n += sum(c.num_events() for c in self.cases)
        return n

    def num_paths(self) -> int:
        if self.cases is None:
            return 1
        return sum(c.num_paths() for c in self.cases)

    def linear_paths(self) -> Iterator[tuple[Event, ...]]:
        """All root-to-leaf event sequences."""
        if self.cases is None:
            yield self.events
        else:
            for c in self.cases:
                for path in c.linear_paths():
                    yield self.events + path

    def iter_events(self) -> Iterator[Event]:
        yield from self.events
        if self.cases is not None:
            for c in self.cases:
                yield from c.iter_events()

    def declared_vars(self) -> set[Term]:
        out: set[Term] = set()
        for j in self.iter_events():
            if isinstance(j, (E.DeclareConst, E.DefineConst)):
                out.add(j.var)
        return out

    # -- substitution ------------------------------------------------------------

    def substitute(self, mapping: dict[Term, Term]) -> "Trace":
        """Substitute variables throughout the trace (``t[v/x]``)."""
        if not mapping:
            return self
        events = tuple(substitute_event(j, mapping) for j in self.events)
        cases = (
            None
            if self.cases is None
            else tuple(c.substitute(mapping) for c in self.cases)
        )
        return Trace(events, cases)

    def __repr__(self) -> str:
        from .printer import trace_to_sexpr

        return trace_to_sexpr(self)


def substitute_event(j: Event, mapping: dict[Term, Term]) -> Event:
    """Apply a variable substitution to one event."""
    if isinstance(j, E.ReadReg):
        return E.ReadReg(j.reg, substitute(j.value, mapping))
    if isinstance(j, E.WriteReg):
        return E.WriteReg(j.reg, substitute(j.value, mapping))
    if isinstance(j, E.ReadMem):
        return E.ReadMem(
            substitute(j.data, mapping), substitute(j.addr, mapping), j.nbytes
        )
    if isinstance(j, E.WriteMem):
        return E.WriteMem(
            substitute(j.addr, mapping), substitute(j.data, mapping), j.nbytes
        )
    if isinstance(j, E.AssumeReg):
        return E.AssumeReg(j.reg, substitute(j.value, mapping))
    if isinstance(j, E.DeclareConst):
        return j
    if isinstance(j, E.DefineConst):
        return E.DefineConst(j.var, substitute(j.expr, mapping))
    if isinstance(j, E.Assert):
        return E.Assert(substitute(j.expr, mapping))
    if isinstance(j, E.Assume):
        return E.Assume(substitute(j.expr, mapping))
    raise TypeError(f"unknown event {j!r}")
