"""Parser for the ITL s-expression concrete syntax.

Reads the format produced by :mod:`repro.itl.printer` (the paper's Fig. 3 /
Fig. 6 notation), so traces can be stored in files, diffed, and reloaded —
the same role Isla's textual trace output plays for the paper's frontend.

The grammar, informally::

    trace  ::= '(' 'trace' event* cases? ')'
    cases  ::= '(' 'cases' trace+ ')'
    event  ::= '(' 'read-reg' reg smt ')' | '(' 'write-reg' reg smt ')'
             | '(' 'assume-reg' reg smt ')'
             | '(' 'read-mem' smt smt int ')' | '(' 'write-mem' smt smt int ')'
             | '(' 'declare-const' name sort ')'
             | '(' 'define-const' name smt ')'
             | '(' 'assert' smt ')' | '(' 'assume' smt ')'
    reg    ::= '|' name '|' 'nil' | '|' name '|' '((_ field |' name '|))'

SMT expressions use SMT-LIB syntax with the operators of
:mod:`repro.smt.terms`.
"""

from __future__ import annotations

from ..smt import builder as B
from ..smt.sorts import BOOL, Sort, bv_sort
from ..smt.terms import Term
from . import events as E
from .events import Reg
from .trace import Trace


class ParseError(Exception):
    """Malformed trace text."""


# ---------------------------------------------------------------------------
# S-expression tokenisation and reading.
# ---------------------------------------------------------------------------


def tokenize(text: str) -> list[str]:
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            out.append(ch)
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "|":
            j = text.find("|", i + 1)
            if j < 0:
                raise ParseError("unterminated |name|")
            out.append(text[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in "()":
                j += 1
            out.append(text[i:j])
            i = j
    return out


def read_sexpr(tokens: list[str], pos: int) -> tuple[object, int]:
    """Read one s-expression; returns (tree, next position).  Atoms are
    strings, lists are Python lists."""
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = read_sexpr(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, pos + 1
    if tok == ")":
        raise ParseError("unexpected ')'")
    return tok, pos + 1


# ---------------------------------------------------------------------------
# SMT term parsing.
# ---------------------------------------------------------------------------

_BINOPS = {
    "bvadd": B.bvadd, "bvsub": B.bvsub, "bvmul": B.bvmul, "bvand": B.bvand,
    "bvor": B.bvor, "bvxor": B.bvxor, "bvshl": B.bvshl, "bvlshr": B.bvlshr,
    "bvashr": B.bvashr, "bvudiv": B.bvudiv, "bvurem": B.bvurem,
    "bvult": B.bvult, "bvule": B.bvule, "bvslt": B.bvslt, "bvsle": B.bvsle,
    "concat": B.concat, "xor": B.xor, "=": B.eq,
}


class TermParser:
    """Parses SMT-LIB expressions with an environment of typed variables."""

    def __init__(self, env: dict[str, Term] | None = None):
        self.env: dict[str, Term] = dict(env or {})

    def bind(self, name: str, term: Term) -> None:
        self.env[name] = term

    def parse(self, tree) -> Term:
        if isinstance(tree, str):
            return self._atom(tree)
        if not tree:
            raise ParseError("empty expression")
        head = tree[0]
        if isinstance(head, list):
            # ((_ extract hi lo) e) and friends
            return self._indexed(head, tree[1:])
        if head == "not":
            return B.not_(self.parse(tree[1]))
        if head == "and":
            return B.and_(*(self.parse(t) for t in tree[1:]))
        if head == "or":
            return B.or_(*(self.parse(t) for t in tree[1:]))
        if head == "ite":
            return B.ite(self.parse(tree[1]), self.parse(tree[2]), self.parse(tree[3]))
        if head == "bvnot":
            return B.bvnot(self.parse(tree[1]))
        if head == "bvneg":
            return B.bvneg(self.parse(tree[1]))
        if head in _BINOPS:
            if len(tree) != 3:
                raise ParseError(f"{head} expects two operands")
            return _BINOPS[head](self.parse(tree[1]), self.parse(tree[2]))
        raise ParseError(f"unknown operator {head!r}")

    def _atom(self, tok: str) -> Term:
        if tok == "true":
            return B.true()
        if tok == "false":
            return B.false()
        if tok.startswith("#x"):
            return B.bv(int(tok[2:], 16), 4 * len(tok[2:]))
        if tok.startswith("#b"):
            return B.bv(int(tok[2:], 2), len(tok) - 2)
        term = self.env.get(tok)
        if term is None:
            raise ParseError(f"unbound variable {tok!r}")
        return term

    def _indexed(self, head, args) -> Term:
        # head like ['_', 'extract', '63', '0'] or ['_', 'zero_extend', '64']
        if not head or head[0] != "_":
            raise ParseError(f"bad indexed operator {head!r}")
        kind = head[1]
        operand = self.parse(args[0])
        if kind == "extract":
            return B.extract(int(head[2]), int(head[3]), operand)
        if kind == "zero_extend":
            return B.zero_extend(int(head[2]), operand)
        if kind == "sign_extend":
            return B.sign_extend(int(head[2]), operand)
        raise ParseError(f"unknown indexed operator {kind!r}")


def parse_sort(tree) -> Sort:
    if tree == "Bool":
        return BOOL
    if isinstance(tree, list) and len(tree) == 3 and tree[0] == "_" and tree[1] == "BitVec":
        return bv_sort(int(tree[2]))
    raise ParseError(f"unknown sort {tree!r}")


# ---------------------------------------------------------------------------
# Trace parsing.
# ---------------------------------------------------------------------------


def _parse_reg(items: list) -> tuple[Reg, int]:
    """Parse ``|base| nil`` or ``|base| ((_ field |f|))``; returns (reg,
    tokens consumed)."""
    base_tok = items[0]
    if not (isinstance(base_tok, str) and base_tok.startswith("|")):
        raise ParseError(f"expected |register|, got {base_tok!r}")
    base = base_tok.strip("|")
    accessor = items[1]
    if accessor == "nil":
        return Reg(base), 2
    if isinstance(accessor, list):
        # ((_ field |F|))
        inner = accessor[0]
        if (
            isinstance(inner, list)
            and len(inner) == 3
            and inner[0] == "_"
            and inner[1] == "field"
        ):
            return Reg(base, inner[2].strip("|")), 2
    raise ParseError(f"bad register accessor {accessor!r}")


def parse_trace(text: str, env: dict[str, Term] | None = None) -> Trace:
    """Parse a printed trace back into a :class:`Trace`.

    ``env`` pre-binds *external* variables — symbols the trace mentions but
    never declares (symbolic opcode bits, say) — to typed terms.  Without
    it, such a trace fails with an unbound-variable :class:`ParseError`.
    """
    tokens = tokenize(text)
    tree, pos = read_sexpr(tokens, 0)
    if pos != len(tokens):
        raise ParseError("trailing tokens after trace")
    return _parse_trace_tree(tree, TermParser(env))


def _parse_trace_tree(tree, terms: TermParser) -> Trace:
    if not isinstance(tree, list) or not tree or tree[0] != "trace":
        raise ParseError("expected (trace ...)")
    events: list[E.Event] = []
    cases = None
    for item in tree[1:]:
        if not isinstance(item, list) or not item:
            raise ParseError(f"bad trace item {item!r}")
        head = item[0]
        if head == "cases":
            sub_parser_env = dict(terms.env)
            cases = tuple(
                _parse_trace_tree(sub, TermParser(sub_parser_env))
                for sub in item[1:]
            )
            break
        events.append(_parse_event(item, terms))
    return Trace(tuple(events), cases)


def _parse_event(item: list, terms: TermParser) -> E.Event:
    head = item[0]
    if head == "declare-const":
        name, sort = item[1], parse_sort(item[2])
        var = B.var(name, sort)
        terms.bind(name, var)
        return E.DeclareConst(var, sort)
    if head == "define-const":
        name = item[1]
        expr = terms.parse(item[2])
        var = B.var(name, expr.sort)
        terms.bind(name, var)
        return E.DefineConst(var, expr)
    if head in ("read-reg", "write-reg", "assume-reg"):
        reg, used = _parse_reg(item[1:])
        value = terms.parse(item[1 + used])
        ctor = {
            "read-reg": E.ReadReg, "write-reg": E.WriteReg,
            "assume-reg": E.AssumeReg,
        }[head]
        return ctor(reg, value)
    if head == "read-mem":
        return E.ReadMem(terms.parse(item[1]), terms.parse(item[2]), int(item[3]))
    if head == "write-mem":
        return E.WriteMem(terms.parse(item[1]), terms.parse(item[2]), int(item[3]))
    if head == "assert":
        return E.Assert(terms.parse(item[1]))
    if head == "assume":
        return E.Assume(terms.parse(item[1]))
    raise ParseError(f"unknown event {head!r}")
