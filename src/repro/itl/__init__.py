"""``repro.itl`` — the Isla trace language.

Syntax (events and traces, Fig. 4), operational semantics (Fig. 10), machine
configurations, and the s-expression concrete syntax of traces (Fig. 3).
"""

from . import events
from .events import (
    Assert,
    Assume,
    AssumeReg,
    DeclareConst,
    DefineConst,
    Event,
    Label,
    LabelEnd,
    LabelRead,
    LabelWrite,
    ReadMem,
    ReadReg,
    Reg,
    WriteMem,
    WriteReg,
)
from .machine import MachineState
from .opsem import Discarded, Failure, Runner, RunResult
from .printer import event_to_sexpr, trace_to_sexpr
from .trace import Trace, substitute_event

__all__ = [
    "Assert", "Assume", "AssumeReg", "DeclareConst", "DefineConst",
    "Discarded", "Event", "Failure", "Label", "LabelEnd", "LabelRead",
    "LabelWrite", "MachineState", "ReadMem", "ReadReg", "Reg", "RunResult",
    "Runner", "Trace", "WriteMem", "WriteReg", "event_to_sexpr",
    "events", "substitute_event", "trace_to_sexpr",
]
