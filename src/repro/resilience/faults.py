"""Deterministic fault injection.

The fail-safe property of the pipeline — injected faults may downgrade an
outcome but can never manufacture a spurious ``verified`` — is proved by a
seeded test harness, which needs faults that are *deterministic*: the same
seed must produce the same fault schedule regardless of timing, dict
ordering or process restarts.  Decisions are therefore pure functions of
``(seed, site, per-site counter)`` via a cryptographic hash, not of a
shared PRNG stream whose consumption order would couple unrelated sites.

Injection sites (each a cheap no-op when no injector is active):

- ``solver.check``  — force a query result to ``unknown``;
- ``solver.cache``  — drop the cached entry for the queried key (forced miss);
- ``sat.solve``     — make the CDCL core give up as if its conflict budget hit;
- ``bitblast``      — raise a :class:`TransientFault` while encoding to CNF;
- ``executor.fork`` — pretend a decidable branch is undecided (fork both
  ways), or raise a :class:`TransientFault` mid-path.

Every kind is downgrade-only by construction: ``unknown`` where the truth
is SAT/UNSAT weakens what callers may conclude, a cache drop forces a
recomputation of the same answer, and transients either retry to the same
result or surface as ``unknown``.

The **service-layer** sites extend the same machinery to the verification
fleet (:mod:`repro.service.fleet`):

- ``service.conn``      — drop or half-close a client connection
  (consulted inside :class:`~repro.service.client.ServiceClient`, so every
  retry/failover path is reachable deterministically);
- ``service.shard``     — kill a backend shard abruptly mid-job;
- ``service.heartbeat`` — delay a supervisor heartbeat so it counts as a
  miss;
- ``service.journal``   — corrupt the tail record of the job journal
  (exercising truncate-on-open recovery).

Pipeline sites keep their strict schedule-determinism guarantee (pure
function of ``(seed, site, counter)``).  Service sites are decided by the
same arithmetic, but their per-site counters advance on wall-clock-driven
events (heartbeats, connection attempts), so two runs of the same seed
share the fault *distribution* rather than an identical schedule; the
chaos harness therefore asserts invariants (every job terminates,
certificates byte-identical to serial, no double execution), never exact
event orders.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass


class TransientFault(Exception):
    """An injected (or genuinely transient) error that callers may retry a
    bounded number of times before degrading to ``unknown``."""


#: site -> fault kinds it can produce
SITE_KINDS: dict[str, tuple[str, ...]] = {
    "solver.check": ("unknown",),
    "solver.cache": ("drop",),
    "sat.solve": ("unknown",),
    "bitblast": ("transient",),
    "executor.fork": ("unknown", "transient"),
    # Service layer (the fleet chaos harness).
    "service.conn": ("drop", "halfclose"),
    "service.shard": ("kill",),
    "service.heartbeat": ("delay",),
    "service.journal": ("truncate", "garbage"),
}

#: The service-layer subset: chaos harnesses restrict their injectors to
#: these so the *pipeline* stays fault-free and certificates stay
#: byte-identical to a serial run.
SERVICE_SITES = tuple(s for s in SITE_KINDS if s.startswith("service."))

SITES = tuple(SITE_KINDS)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    site: str
    kind: str
    index: int  # per-site decision counter at fire time


class FaultInjector:
    """Seeded, deterministic fault schedule.

    ``rate`` is the per-decision firing probability (hash-derived, so the
    schedule is a pure function of the seed).  ``sites`` restricts firing
    to a subset of sites; decisions are still *counted* at every site so
    restricting the site set never perturbs the schedule at other sites.
    ``max_faults`` bounds the total number of injected faults.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.05,
        sites: tuple[str, ...] | None = None,
        max_faults: int | None = None,
    ) -> None:
        for site in sites or ():
            if site not in SITE_KINDS:
                raise ValueError(f"unknown fault site {site!r}")
        self.seed = seed
        self.rate = rate
        self.sites = tuple(sites) if sites is not None else None
        self.max_faults = max_faults
        self.counters: dict[str, int] = {}
        self.log: list[FaultEvent] = []

    def _digest(self, site: str, index: int) -> bytes:
        payload = f"{self.seed}:{site}:{index}".encode()
        return hashlib.sha256(payload).digest()

    def decide(self, site: str) -> str | None:
        """Should a fault fire at this site now?  Returns the fault kind or
        ``None``; advances the site's decision counter either way."""
        if site not in SITE_KINDS:
            raise ValueError(f"unknown fault site {site!r}")
        index = self.counters.get(site, 0)
        self.counters[site] = index + 1
        if self.sites is not None and site not in self.sites:
            return None
        if self.max_faults is not None and len(self.log) >= self.max_faults:
            return None
        digest = self._digest(site, index)
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if draw >= self.rate:
            return None
        kinds = SITE_KINDS[site]
        kind = kinds[digest[8] % len(kinds)]
        self.log.append(FaultEvent(site, kind, index))
        return kind

    def summary(self) -> str:
        if not self.log:
            return "no faults injected"
        per_site: dict[str, int] = {}
        for event in self.log:
            key = f"{event.site}:{event.kind}"
            per_site[key] = per_site.get(key, 0) + 1
        parts = ", ".join(f"{k}×{v}" for k, v in sorted(per_site.items()))
        return f"{len(self.log)} faults injected [{parts}]"


_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def fault_at(site: str) -> str | None:
    """The injection-point hook: ask the active injector (if any) whether a
    fault fires at ``site``.  Inlined into hot paths, so the inactive case
    is a single global read."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.decide(site)


@contextmanager
def inject(injector: FaultInjector):
    """Activate ``injector`` for the duration of the block (re-entrant:
    restores whatever was active before)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
