"""Cooperative resource budgets.

A :class:`Budget` is threaded through the solver façade, the Isla executor
and the proof engine.  Each layer *charges* the resources it consumes and
*asks* before starting expensive work; exhaustion surfaces as the typed
:class:`BudgetExhausted` exception (or, for layers that can degrade in
place, as an ``exhausted`` marker on their result), never as a bare
``RuntimeError`` from deep inside a search loop.

The budget is deliberately cooperative rather than preemptive: the SAT
core checks its conflict allowance at conflict granularity and the
executor checks the deadline between paths, so a single pathological query
can overshoot slightly — the invariant is *bounded* overshoot, the same
contract Z3's resource limits give the paper's pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class BudgetExhausted(Exception):
    """A resource allowance ran out.

    ``resource`` names the lattice coordinate that was exhausted:
    ``"deadline"``, ``"conflicts"``, ``"paths"`` or ``"cache"``.  Reports
    surface it verbatim so a degraded run always names its bottleneck.
    """

    def __init__(self, resource: str, detail: str = "") -> None:
        self.resource = resource
        self.detail = detail
        message = f"budget exhausted: {resource}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass(frozen=True)
class BudgetSpec:
    """Immutable allowance configuration.

    ``None`` means unlimited for every field.  The conflict ladder starts
    at ``base_conflicts`` and escalates by ``escalation_factor`` per rung,
    capped at ``query_conflicts`` — bounded exponential escalation, so a
    query that the first rung decides stays cheap while a hard one still
    gets the full allowance before degrading.
    """

    deadline_s: float | None = None  # wall clock for the whole run
    conflict_allowance: int | None = None  # total SAT conflicts across the run
    query_conflicts: int = 60_000  # hard cap for any single query
    base_conflicts: int = 4_000  # first ladder rung
    escalation_factor: int = 4
    escalation_rungs: int = 3
    path_allowance: int | None = 64  # symbolic paths per opcode
    cache_entries: int | None = 16_384  # solver result-cache cap
    transient_retries: int = 2  # retries of injected/transient errors

    def partition(self, shares: int) -> list["BudgetSpec"]:
        """Split this spec into ``shares`` worker allowances.

        Partitioning rules (documented in DESIGN.md):

        - ``conflict_allowance`` is *divided*: conflicts are a consumable
          resource, so the run-wide pool is split evenly with the remainder
          going to the earliest shares (deterministic: share ``i``'s
          allowance depends only on ``(allowance, shares, i)``);
        - ``deadline_s`` is *replicated*: workers run concurrently against
          the same wall clock, so each inherits the full deadline;
        - per-query knobs (``query_conflicts``, the escalation ladder,
          ``path_allowance``, retries) are *replicated*: they bound single
          queries/opcodes, not run totals.
        """
        if shares <= 0:
            raise ValueError("shares must be positive")
        from dataclasses import replace

        if self.conflict_allowance is None:
            return [self] * shares
        base, remainder = divmod(self.conflict_allowance, shares)
        return [
            replace(self, conflict_allowance=base + (1 if i < remainder else 0))
            for i in range(shares)
        ]

    def conflict_schedule(self) -> list[int]:
        """The per-query conflict budgets the ladder will try, in order."""
        schedule: list[int] = []
        rung = self.base_conflicts
        for _ in range(max(1, self.escalation_rungs)):
            schedule.append(min(rung, self.query_conflicts))
            if rung >= self.query_conflicts:
                break
            rung *= max(2, self.escalation_factor)
        if schedule[-1] < self.query_conflicts:
            schedule.append(self.query_conflicts)
        return schedule


@dataclass
class Budget:
    """Live, mutable consumption state against a :class:`BudgetSpec`.

    The ``clock`` hook exists so tests can drive deadlines
    deterministically; production code uses ``time.monotonic``.
    """

    spec: BudgetSpec = field(default_factory=BudgetSpec)
    clock: object = time.monotonic

    def __post_init__(self) -> None:
        self._t0 = self.clock()
        self.conflicts_used = 0
        self.paths_used = 0
        #: First resource that ran out (sticky) — reports name it.
        self.exhausted: str | None = None

    # -- wall clock ---------------------------------------------------------

    def elapsed(self) -> float:
        return self.clock() - self._t0

    def check_deadline(self) -> None:
        limit = self.spec.deadline_s
        if limit is not None and self.elapsed() > limit:
            self.exhaust("deadline", f"{self.elapsed():.2f}s > {limit:.2f}s")

    # -- SAT conflicts ------------------------------------------------------

    def remaining_conflicts(self) -> int | None:
        allowance = self.spec.conflict_allowance
        if allowance is None:
            return None
        return max(0, allowance - self.conflicts_used)

    def clip_conflicts(self, requested: int | None) -> int | None:
        """Clip a per-query conflict budget to the remaining allowance;
        raises when the allowance is already gone."""
        remaining = self.remaining_conflicts()
        if remaining is None:
            return requested
        if remaining <= 0:
            self.exhaust(
                "conflicts", f"allowance {self.spec.conflict_allowance} spent"
            )
        if requested is None:
            return remaining
        return min(requested, remaining)

    def charge_conflicts(self, n: int) -> None:
        self.conflicts_used += n

    # -- symbolic paths -----------------------------------------------------

    def path_limit(self, default: int) -> int:
        allowance = self.spec.path_allowance
        return default if allowance is None else min(default, allowance)

    def charge_paths(self, n: int = 1) -> None:
        self.paths_used += n

    # -- shared -------------------------------------------------------------

    def conflict_schedule(self) -> list[int]:
        return self.spec.conflict_schedule()

    def exhaust(self, resource: str, detail: str = "") -> None:
        """Record exhaustion (sticky, first one wins) and raise."""
        if self.exhausted is None:
            self.exhausted = resource
        raise BudgetExhausted(resource, detail)

    def absorb(self, snapshot: dict) -> None:
        """Fold a worker budget's :meth:`snapshot` into this (run-wide)
        budget: usage adds up; exhaustion is sticky, first report wins.

        Callers merging several workers must absorb in a deterministic
        order (block-address order) so the recorded ``exhausted`` resource
        does not depend on scheduling.
        """
        self.conflicts_used += int(snapshot.get("conflicts_used", 0))
        self.paths_used += int(snapshot.get("paths_used", 0))
        if self.exhausted is None and snapshot.get("exhausted"):
            self.exhausted = snapshot["exhausted"]

    def snapshot(self) -> dict[str, object]:
        return {
            "elapsed_s": round(self.elapsed(), 3),
            "conflicts_used": self.conflicts_used,
            "paths_used": self.paths_used,
            "exhausted": self.exhausted,
        }
