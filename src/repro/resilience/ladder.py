"""The degradation ladder.

When a query comes back ``unknown`` the governed solver does not give up
immediately: it climbs a ladder of escalating per-query conflict budgets
(bounded exponential escalation, see :meth:`BudgetSpec.conflict_schedule`),
and bounded retries absorb transient faults between rungs.  Only when the
top rung is still undecided does the caller convert the query into a
residual obligation — the structural analogue of the paper's automation
falling back to manual hints instead of guessing.

The ladder is generic over the attempt function so it carries no
dependency on the SMT layer: ``attempt(max_conflicts)`` returns a
``(status, payload)`` pair where ``status`` is one of the solver's
``"sat" | "unsat" | "unknown"`` strings.
"""

from __future__ import annotations

from typing import Callable

from .faults import TransientFault

_UNKNOWN = "unknown"


class DegradationLadder:
    """Run an attempt function over an escalating budget schedule.

    Exposes counters (``escalations``, ``transients``) so callers can fold
    them into their statistics, and ``gave_up_reason`` naming why the final
    result was ``unknown`` (``"conflict-limit"`` after the last rung,
    ``"fault:transient"`` when retries ran out).
    """

    def __init__(self, schedule: list[int | None], transient_retries: int = 2) -> None:
        if not schedule:
            raise ValueError("ladder needs at least one rung")
        self.schedule = list(schedule)
        self.transient_retries = transient_retries
        self.escalations = 0
        self.transients = 0
        self.gave_up_reason: str | None = None

    def run(self, attempt: Callable[[int | None], tuple[str, object]]) -> tuple[str, object]:
        result: tuple[str, object] = (_UNKNOWN, None)
        for rung, conflicts in enumerate(self.schedule):
            retries = self.transient_retries
            while True:
                try:
                    result = attempt(conflicts)
                except TransientFault:
                    self.transients += 1
                    if retries <= 0:
                        self.gave_up_reason = "fault:transient"
                        return _UNKNOWN, None
                    retries -= 1
                    continue
                break
            if result[0] != _UNKNOWN:
                return result
            if rung + 1 < len(self.schedule):
                self.escalations += 1
        self.gave_up_reason = "conflict-limit"
        return result
