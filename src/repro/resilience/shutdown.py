"""Cooperative graceful shutdown.

SIGINT/SIGTERM must never leave a governed run as a traceback: the
contract (same as budget exhaustion) is a *partial* :class:`RunReport`
whose unfinished blocks land on the ``unknown`` rung, with caches flushed
on the way out.  The mechanism is a process-wide :class:`threading.Event`
that every driver loop polls at block granularity:

- :func:`request_shutdown` sets the event (signal handlers, the daemon's
  drain sequence, and tests call it directly);
- :func:`shutdown_requested` is the cheap poll used by
  ``ProofEngine.verify_all_governed`` between blocks and by the parallel
  scheduler between dispatch and merge;
- :func:`handle_signals` is a context manager installing SIGINT/SIGTERM
  handlers for the dynamic extent of a CLI run.  The *first* signal only
  sets the event (cooperative drain); a *second* SIGINT falls back to the
  default ``KeyboardInterrupt`` so a wedged run can still be killed.

The event is process-wide rather than context-scoped on purpose: a signal
is delivered to the process, and every concurrent run in it should drain.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

_EVENT = threading.Event()

#: Reason string stamped on blocks abandoned by a drain; reports and tests
#: match on it, so keep it stable.
SHUTDOWN_REASON = "shutdown requested"


def shutdown_requested() -> bool:
    """True once a drain has been requested (sticky until reset)."""
    return _EVENT.is_set()


def request_shutdown() -> None:
    """Ask every governed loop in the process to drain at the next block."""
    _EVENT.set()


def reset_shutdown() -> None:
    """Clear the drain flag (test harnesses; the daemon between restarts)."""
    _EVENT.clear()


@contextmanager
def handle_signals(signals=(signal.SIGINT, signal.SIGTERM)):
    """Install cooperative-drain handlers for a CLI run.

    Only the main thread may install signal handlers; anywhere else this
    degrades to a no-op context (the event can still be set manually).
    Handlers are restored on exit and the event is cleared, so nested or
    sequential runs start fresh.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        if _EVENT.is_set() and signum == signal.SIGINT:
            # Second Ctrl-C: the user means it.
            raise KeyboardInterrupt
        _EVENT.set()

    previous = {}
    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, _handler)
    except (ValueError, OSError):
        # Exotic embedding (no signal support): cooperative mode only.
        pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass
        _EVENT.clear()
