"""``repro.resilience`` — resource governance and fail-safe degradation.

The verification pipeline must never report a spurious proof: when a
resource runs out (wall clock, SAT conflicts, symbolic paths, cache
memory) or the solver answers ``unknown``, the outcome *degrades* — it
never silently upgrades.  This package provides the pieces that make that
discipline uniform across the SMT façade, the Isla executor and the proof
engine:

- :mod:`~repro.resilience.budget` — a cooperative :class:`Budget` threaded
  through every layer, replacing scattered magic constants and hard raises;
- :mod:`~repro.resilience.outcome` — the outcome lattice
  ``verified > degraded > unknown > failed``, residual obligations, and the
  per-block :class:`RunReport`;
- :mod:`~repro.resilience.ladder` — the degradation ladder that retries
  undecided queries with escalating conflict budgets before giving up;
- :mod:`~repro.resilience.faults` — a deterministic, seeded fault injector
  used by the test harness to prove the fail-safe invariant: injected
  faults may downgrade outcomes but can never flip a result to a spurious
  ``verified``.
"""

from .budget import Budget, BudgetExhausted, BudgetSpec
from .faults import (
    FaultEvent,
    FaultInjector,
    TransientFault,
    active_injector,
    fault_at,
    inject,
)
from .ladder import DegradationLadder
from .shutdown import (
    SHUTDOWN_REASON,
    handle_signals,
    request_shutdown,
    reset_shutdown,
    shutdown_requested,
)
from .outcome import (
    DEGRADED,
    FAILED,
    OUTCOMES,
    UNKNOWN,
    VERIFIED,
    BlockOutcome,
    ResidualObligation,
    RunReport,
    worst,
)

__all__ = [
    "Budget", "BudgetExhausted", "BudgetSpec", "BlockOutcome", "DEGRADED",
    "DegradationLadder", "FAILED", "FaultEvent", "FaultInjector", "OUTCOMES",
    "ResidualObligation", "RunReport", "SHUTDOWN_REASON", "TransientFault",
    "UNKNOWN", "VERIFIED", "active_injector", "fault_at", "handle_signals",
    "inject", "request_shutdown", "reset_shutdown", "shutdown_requested",
    "worst",
]
