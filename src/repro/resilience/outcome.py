"""The verification outcome lattice and per-run reports.

Outcomes are ordered ``verified > degraded > unknown > failed``; every
governance mechanism (budgets, the degradation ladder, fault handling) may
only move a result *down* this order — the fail-safe invariant.  A
``degraded`` block has a complete proof skeleton but carries residual
obligations (side conditions the solver could not decide); an ``unknown``
block's proof could not be completed at all within budget; a ``failed``
block has a genuine refutation or structural proof error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

VERIFIED = "verified"
DEGRADED = "degraded"
UNKNOWN = "unknown"
FAILED = "failed"

OUTCOMES = (VERIFIED, DEGRADED, UNKNOWN, FAILED)

_RANK = {VERIFIED: 3, DEGRADED: 2, UNKNOWN: 1, FAILED: 0}


def worst(*outcomes: str) -> str:
    """The meet of the given outcomes (``verified`` if none given)."""
    result = VERIFIED
    for outcome in outcomes:
        if outcome not in _RANK:
            raise ValueError(f"unknown outcome {outcome!r}")
        if _RANK[outcome] < _RANK[result]:
            result = outcome
    return result


@dataclass(frozen=True)
class ResidualObligation:
    """A side condition the automation could not discharge.

    Instead of guessing (unsound) or crashing (useless), the pipeline
    converts an undecided query into this structured leftover: the goal,
    the pure assumptions it must hold under, and the *reason* it was left
    behind (exhausted budget, injected fault, unsupported operation, or a
    genuinely undecided query).  The independent checker re-attempts each
    residual and fails hard if one is refutable.
    """

    block: int
    description: str
    goal: Any  # smt Term (opaque here to keep this package dependency-free)
    assumptions: tuple  # tuple of smt Terms
    reason: str


@dataclass
class BlockOutcome:
    """Per-block verdict."""

    addr: int
    outcome: str
    reason: str = ""
    residuals: int = 0

    def render(self) -> str:
        extra = []
        if self.residuals:
            extra.append(f"{self.residuals} residual obligations")
        if self.reason:
            extra.append(self.reason)
        suffix = f" — {'; '.join(extra)}" if extra else ""
        return f"0x{self.addr:x}: {self.outcome}{suffix}"


@dataclass
class RunReport:
    """The result of a governed verification run.

    ``verify_program`` returns one of these instead of crashing: per-block
    outcomes, the (possibly partial) proof object, aggregate solver/cache
    statistics, budget consumption, and any injected faults observed.
    """

    blocks: dict[int, BlockOutcome] = field(default_factory=dict)
    proof: Any = None  # logic Proof (opaque to avoid an import cycle)
    budget: Any = None  # resilience Budget
    solver_stats: dict[str, int] = field(default_factory=dict)
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Parametric family-execution counters (``repro.isla.parametric``):
    #: hits/builds/instantiations/guard failures attributable to this run.
    parametric_stats: dict[str, int] = field(default_factory=dict)
    faults: tuple = ()  # tuple[FaultEvent, ...]
    #: Interference grouping used by the parallel driver: a tuple of tuples
    #: of block addresses; blocks in different groups have provably
    #: disjoint footprints.  Empty for serial runs (informational only —
    #: the merge is address-ordered, so grouping never affects results).
    schedule_groups: tuple = ()

    @property
    def outcome(self) -> str:
        return worst(*(b.outcome for b in self.blocks.values()))

    @property
    def ok(self) -> bool:
        return self.outcome == VERIFIED

    @property
    def residual_count(self) -> int:
        return sum(b.residuals for b in self.blocks.values())

    def render(self) -> str:
        lines = [f"outcome: {self.outcome}"]
        for addr in sorted(self.blocks):
            lines.append("  " + self.blocks[addr].render())
        interesting = {
            k: v
            for k, v in self.solver_stats.items()
            if v and k not in ("checks", "sat_results", "unsat_results")
        }
        if interesting:
            stats = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            lines.append(f"  solver: {stats}")
        if self.cache_stats.get("evictions") or self.cache_stats.get("injected_drops"):
            lines.append(
                "  cache: evictions={evictions}, injected_drops={injected_drops}".format(
                    **{
                        "evictions": self.cache_stats.get("evictions", 0),
                        "injected_drops": self.cache_stats.get("injected_drops", 0),
                    }
                )
            )
        if self.budget is not None and getattr(self.budget, "exhausted", None):
            lines.append(f"  budget exhausted: {self.budget.exhausted}")
        if self.faults:
            lines.append(f"  faults: {len(self.faults)} injected")
        return "\n".join(lines)
