"""``repro.frontend`` — program images, instruction-map generation, and
annotated listings."""

from .listing import annotated_listing
from .program import (
    FrontendResult,
    ProgramImage,
    generate_instruction_map,
    install_traces,
    load_image_into_state,
)

__all__ = [
    "FrontendResult", "ProgramImage", "annotated_listing",
    "generate_instruction_map", "install_traces", "load_image_into_state",
]
