"""Annotated listings: the objdump-style view of a program plus its traces.

The paper's tooling "generate[s] the Coq embedding of the Isla traces for
the opcodes in an annotated objdump file"; this module renders the inverse
view for humans — disassembly, per-instruction trace statistics, and
optionally the traces themselves.
"""

from __future__ import annotations

from ..arch import registry
from ..itl.printer import trace_to_sexpr
from ..smt.terms import Term
from .program import FrontendResult, ProgramImage


def _disassemble(arch: str, opcode: int | Term) -> str:
    if not isinstance(opcode, int):
        if opcode.is_value():
            opcode = opcode.value
        else:
            return f"<symbolic: {opcode!r}>"
    return registry.find(arch).decode().try_disassemble(opcode)


def annotated_listing(
    image: ProgramImage,
    frontend: FrontendResult,
    arch: str = "armv8-a",
    show_traces: bool = False,
) -> str:
    """Render the program with labels, disassembly, and trace statistics."""
    by_addr_labels: dict[int, list[str]] = {}
    for label, addr in image.labels.items():
        by_addr_labels.setdefault(addr, []).append(label)
    lines: list[str] = []
    for addr in sorted(image.opcodes):
        for label in by_addr_labels.get(addr, []):
            lines.append(f"{label}:")
        opcode = image.opcodes[addr]
        text = _disassemble(arch, opcode)
        trace = frontend.traces.get(addr)
        if trace is None:
            stats = ""
        else:
            stats = f"; {trace.num_events()} events, {trace.num_paths()} path(s)"
        raw = f"{opcode:08x}" if isinstance(opcode, int) else "symbolic"
        lines.append(f"  {addr:#10x}: {raw}  {text:<32} {stats}")
        if show_traces and trace is not None:
            for tline in trace_to_sexpr(trace).splitlines():
                lines.append(f"      {tline}")
    return "\n".join(lines)
