"""The Islaris frontend (Fig. 1): machine code + constraints → instruction map.

Feeds each opcode of a program through Isla under per-program default
assumptions (plus optional per-address ones), producing the address → trace
instruction map the proof engine consumes.  This plays the role of the
paper's annotated-objdump tooling that generates the Coq embedding of the
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isla.assumptions import Assumptions
from ..isla.executor import IslaResult, trace_for_opcode
from ..itl.machine import MachineState
from ..itl.trace import Trace
from ..sail.model import IsaModel
from ..smt.terms import Term


@dataclass
class ProgramImage:
    """Machine code laid out at addresses.

    ``opcodes`` maps address → 32-bit opcode; entries may be
    :class:`~repro.smt.Term` for partially symbolic instructions (the pKVM
    relocation patching).  ``labels`` are optional symbolic names.
    """

    opcodes: dict[int, int | Term] = field(default_factory=dict)
    labels: dict[str, int] = field(default_factory=dict)

    def place(self, addr: int, opcodes: list[int | Term], label: str | None = None) -> "ProgramImage":
        if label is not None:
            self.labels[label] = addr
        for i, op in enumerate(opcodes):
            a = addr + 4 * i
            if a in self.opcodes:
                raise ValueError(f"overlapping code at 0x{a:x}")
            self.opcodes[a] = op
        return self

    def __getitem__(self, label: str) -> int:
        return self.labels[label]

    def concrete_bytes(self) -> dict[int, bytes]:
        """Little-endian code bytes (requires all opcodes concrete)."""
        out: dict[int, bytes] = {}
        for addr, op in self.opcodes.items():
            if not isinstance(op, int):
                if op.is_value():
                    op = op.value
                else:
                    raise ValueError(f"symbolic opcode at 0x{addr:x}")
            out[addr] = op.to_bytes(4, "little")
        return out


@dataclass
class FrontendResult:
    """The generated instruction map plus per-instruction Isla metrics."""

    traces: dict[int, Trace]
    results: dict[int, IslaResult]
    #: Parametric family counters attributable to this map's generation
    #: (summed across trace workers on the parallel path).
    parametric_stats: dict[str, int] = field(default_factory=dict)

    @property
    def total_events(self) -> int:
        return sum(t.num_events() for t in self.traces.values())

    @property
    def total_model_steps(self) -> int:
        return sum(r.model_steps for r in self.results.values())

    @property
    def total_paths(self) -> int:
        return sum(r.paths for r in self.results.values())


def generate_instruction_map(
    model: IsaModel,
    image: ProgramImage,
    default_assumptions: Assumptions | None = None,
    per_address: dict[int, Assumptions] | None = None,
    *,
    jobs: int | None = None,
    cache=None,
) -> FrontendResult:
    """Run Isla on every opcode of the image.

    ``jobs`` and ``cache`` default to the ambient
    :class:`~repro.parallel.config.PipelineConfig` (scoped by the driver
    via :func:`~repro.parallel.config.configured`), so the nine case-study
    ``build()`` functions pick up parallelism and on-disk caching without
    signature changes.  With ``jobs > 1`` the per-opcode runs fan out
    across worker processes; the result is identical to the serial path.
    """
    from ..parallel.config import current_config

    config = current_config()
    if jobs is None:
        jobs = config.jobs
    if cache is None:
        cache = config.cache
    if config.batcher is not None:
        from ..resilience.faults import active_injector

        # The daemon's cross-job dedup layer.  Bypassed under fault
        # injection for the same reason the cache is: a shared result would
        # leak one run's fault schedule into another's.
        if active_injector() is None:
            return config.batcher.generate(
                model, image, default_assumptions, per_address
            )
    if jobs > 1 and len(image.opcodes) > 1:
        from ..parallel.scheduler import generate_traces_parallel

        return generate_traces_parallel(
            model,
            image,
            default_assumptions,
            per_address,
            jobs=jobs,
            cache=cache,
            pool=config.pool,
        )
    from ..isla.parametric import engine

    per_address = per_address or {}
    traces: dict[int, Trace] = {}
    results: dict[int, IslaResult] = {}
    parametric_before = engine().stats.snapshot()
    for addr in sorted(image.opcodes):
        opcode = image.opcodes[addr]
        assumptions = (default_assumptions or Assumptions()).merged_with(
            per_address.get(addr)
        )
        result = trace_for_opcode(model, opcode, assumptions, cache=cache)
        traces[addr] = result.trace
        results[addr] = result
    return FrontendResult(
        traces,
        results,
        parametric_stats=engine().stats.delta(
            parametric_before, engine().stats.snapshot()
        ),
    )


def load_image_into_state(image: ProgramImage, state: MachineState) -> None:
    """Install the image's code bytes into a concrete machine state (for
    opsem/adequacy runs and for concrete model execution)."""
    for addr, code in image.concrete_bytes().items():
        state.load_bytes(addr, code)


def install_traces(image_traces: dict[int, Trace], state: MachineState) -> None:
    """Install traces as the instruction map of an ITL machine state."""
    for addr, trace in image_traces.items():
        state.set_instr(addr, trace)
